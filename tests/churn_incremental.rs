//! Churn × incremental × batch: the online duplicate index tracks a
//! live, churning organization and always agrees with the batch
//! pipeline; the events' ground truth surfaces in the reports.

use rolediet::core::incremental::IncrementalDuplicates;
use rolediet::core::{DetectionConfig, Pipeline};
use rolediet::matrix::RowMatrix;
use rolediet::synth::churn::{ChurnConfig, ChurnSimulator, ChurnWeights};

#[test]
fn departed_users_and_decommissioned_assets_are_detected() {
    let mut sim = ChurnSimulator::new(ChurnConfig {
        seed: 3,
        ..ChurnConfig::default()
    });
    sim.run(1_500);
    let report = Pipeline::new(DetectionConfig {
        skip_similarity: true,
        ..DetectionConfig::default()
    })
    .run(sim.graph());
    // Every departed user that is still role-less must be in the report
    // (and the report cannot contain a user that has roles).
    let standalone: std::collections::HashSet<usize> =
        report.standalone_users.iter().copied().collect();
    for &u in sim.departed_users() {
        let has_roles = sim.graph().roles_of_user(u).next().is_some();
        assert_eq!(
            !has_roles,
            standalone.contains(&u.index()),
            "user {u} misclassified"
        );
    }
    // Same for decommissioned permissions.
    let standalone: std::collections::HashSet<usize> =
        report.standalone_permissions.iter().copied().collect();
    for &p in sim.decommissioned_permissions() {
        let granted = sim.graph().roles_of_permission(p).next().is_some();
        assert_eq!(
            !granted,
            standalone.contains(&p.index()),
            "perm {p} misclassified"
        );
    }
}

#[test]
fn incremental_index_tracks_a_churning_ruam() {
    // Rebuild-from-scratch after every burst must equal the incrementally
    // maintained index. Roles are added by churn, so the index is rebuilt
    // when the row count changes and patched cell-wise otherwise.
    let mut sim = ChurnSimulator::new(ChurnConfig {
        seed: 8,
        weights: ChurnWeights {
            // Keep the role set fixed so the index can be patched
            // in place: no create/clone events.
            create_role: 0.0,
            clone_role: 0.0,
            ..ChurnWeights::default()
        },
        ..ChurnConfig::default()
    });
    let ruam0 = sim.graph().ruam_sparse();
    let mut index = IncrementalDuplicates::from_matrix(&ruam0);
    let mut previous = ruam0;
    for burst in 0..20 {
        sim.run(50);
        let current = sim.graph().ruam_sparse();
        assert_eq!(
            current.rows(),
            previous.rows(),
            "role count fixed by weights"
        );
        // Column count can grow (register_permission doesn't touch RUAM;
        // hires add users = RUAM columns). Rebuild on width change,
        // patch otherwise.
        if current.cols() != previous.cols() {
            index = IncrementalDuplicates::from_matrix(&current);
        } else {
            for r in 0..current.rows() {
                let old: std::collections::BTreeSet<usize> =
                    previous.row_indices(r).into_iter().collect();
                let new: std::collections::BTreeSet<usize> =
                    current.row_indices(r).into_iter().collect();
                for &c in old.difference(&new) {
                    index.set(r, c, false);
                }
                for &c in new.difference(&old) {
                    index.set(r, c, true);
                }
            }
        }
        let batch: Vec<Vec<usize>> = rolediet::core::cooccur::same_groups(&current)
            .into_iter()
            .filter(|g| current.row_norm(g[0]) > 0)
            .collect();
        assert_eq!(index.groups(), batch, "burst {burst}");
        previous = current;
    }
}

#[test]
fn clone_heavy_churn_produces_detectable_duplicates() {
    let mut sim = ChurnSimulator::new(ChurnConfig {
        seed: 14,
        weights: ChurnWeights {
            clone_role: 12.0,
            drift_role: 0.5,
            ..ChurnWeights::default()
        },
        ..ChurnConfig::default()
    });
    sim.run(600);
    let report = Pipeline::new(DetectionConfig {
        skip_similarity: true,
        ..DetectionConfig::default()
    })
    .run(sim.graph());
    assert!(
        !sim.clone_events().is_empty()
            && (!report.same_user_groups.is_empty() || !report.same_permission_groups.is_empty()),
        "clone-heavy churn must surface T4 findings"
    );
}
