//! Cross-method agreement: the paper's claim that the custom algorithm
//! "consistently identifies all clusters without fail" means it must
//! agree exactly with exhaustive baselines on arbitrary inputs — checked
//! here property-style over random matrices.

use proptest::collection::vec;
use proptest::prelude::*;

use rolediet::cluster::recall::{groups_to_pairs, pair_stats};
use rolediet::core::strategy::{find_same_groups_with_empty, find_similar_pairs};
use rolediet::core::{Parallelism, SimilarityConfig, Strategy as Method};
use rolediet::matrix::{CsrMatrix, RowMatrix};

/// Random sparse binary matrices with enough row collisions to exercise
/// grouping: indices drawn from a small alphabet.
fn matrix_inputs() -> impl Strategy<Value = (usize, usize, Vec<Vec<usize>>)> {
    (2usize..30, 2usize..20).prop_flat_map(|(rows, cols)| {
        vec(vec(0..cols, 0..=4), rows).prop_map(move |data| (rows, cols, data))
    })
}

fn brute_force_groups(m: &CsrMatrix) -> Vec<Vec<usize>> {
    let n = m.n_rows();
    let mut uf = rolediet::cluster::UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if m.rows_equal(i, j) {
                uf.union(i, j);
            }
        }
    }
    uf.groups_min_size(2)
}

fn brute_force_pairs(m: &CsrMatrix, t: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..m.n_rows() {
        for j in (i + 1)..m.n_rows() {
            let d = m.row_hamming(i, j);
            if d >= 1 && d <= t {
                out.push((i, j));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_methods_equal_brute_force_on_t4((rows, cols, data) in matrix_inputs()) {
        let m = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let truth = brute_force_groups(&m);
        for method in [Method::Custom, Method::ExactDbscan] {
            let groups = find_same_groups_with_empty(&m, &method, Parallelism::Sequential);
            prop_assert_eq!(&groups, &truth, "method {}", method.name());
        }
    }

    #[test]
    fn custom_and_dbscan_equal_brute_force_on_t5(
        (rows, cols, data) in matrix_inputs(),
        threshold in 1usize..4,
    ) {
        let m = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let tr = m.transpose();
        let cfg = SimilarityConfig {
            threshold,
            include_disjoint: true,
            ..SimilarityConfig::default()
        };
        let truth = brute_force_pairs(&m, threshold);
        for method in [Method::Custom, Method::ExactDbscan] {
            let pairs: Vec<(usize, usize)> =
                find_similar_pairs(&m, &tr, &method, &cfg, Parallelism::Sequential)
                    .into_iter()
                    .map(|p| (p.a, p.b))
                    .collect();
            let mut sorted = pairs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &truth, "method {}", method.name());
        }
    }

    #[test]
    fn approximate_methods_never_fabricate((rows, cols, data) in matrix_inputs()) {
        let m = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let tr = m.transpose();
        let cfg = SimilarityConfig::default();
        for method in [Method::hnsw_default(), Method::minhash_default()] {
            for g in find_same_groups_with_empty(&m, &method, Parallelism::Sequential) {
                for w in g.windows(2) {
                    prop_assert!(m.rows_equal(w[0], w[1]), "method {}", method.name());
                }
            }
            for p in find_similar_pairs(&m, &tr, &method, &cfg, Parallelism::Sequential) {
                prop_assert_eq!(m.row_hamming(p.a, p.b), p.distance);
                prop_assert!(p.distance >= 1 && p.distance <= cfg.threshold);
            }
        }
    }

    #[test]
    fn minhash_duplicate_recall_is_perfect((rows, cols, data) in matrix_inputs()) {
        // Identical sets collide in every band, so MinHash LSH cannot
        // miss a duplicate group.
        let m = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let truth = brute_force_groups(&m);
        let got = find_same_groups_with_empty(
            &m,
            &Method::minhash_default(),
            Parallelism::Sequential,
        );
        prop_assert_eq!(got, truth);
    }
}

#[test]
fn hnsw_recall_is_high_on_planted_clusters() {
    // Deterministic (seeded) statistical check rather than a proptest:
    // HNSW recall on paper-shaped data should be near 1 with default
    // parameters.
    let gen =
        rolediet::synth::generate_matrix(rolediet::synth::MatrixGenConfig::paper(800, 400, 31));
    let m = gen.sparse();
    let truth_pairs = groups_to_pairs(&gen.truth.exact_duplicate_groups);
    let groups = find_same_groups_with_empty(&m, &Method::hnsw_default(), Parallelism::Sequential);
    let stats = pair_stats(&truth_pairs, &groups_to_pairs(&groups));
    assert_eq!(stats.precision, 1.0, "approximate methods never fabricate");
    assert!(
        stats.recall >= 0.9,
        "HNSW recall {} unexpectedly low",
        stats.recall
    );
}

#[test]
fn custom_strategy_is_deterministic_across_runs() {
    let gen =
        rolediet::synth::generate_matrix(rolediet::synth::MatrixGenConfig::paper(500, 300, 17));
    let m = gen.sparse();
    let tr = m.transpose();
    let cfg = SimilarityConfig {
        threshold: 2,
        ..SimilarityConfig::default()
    };
    let g1 = find_same_groups_with_empty(&m, &Method::Custom, Parallelism::Sequential);
    let p1 = find_similar_pairs(&m, &tr, &Method::Custom, &cfg, Parallelism::Sequential);
    for _ in 0..3 {
        assert_eq!(
            find_same_groups_with_empty(&m, &Method::Custom, Parallelism::Sequential),
            g1
        );
        assert_eq!(
            find_similar_pairs(&m, &tr, &Method::Custom, &cfg, Parallelism::Threads(4)),
            p1
        );
    }
}
