//! Integration coverage for the extension modules (DESIGN.md
//! "Extensions beyond the paper") through the umbrella API: suggestion
//! engine, periodic convergence, Markdown rendering and snapshot diffing
//! working together on one organization.

use rolediet::core::periodic::simulate_periodic_cleanup;
use rolediet::core::render::{render_markdown, RenderOptions};
use rolediet::core::suggest::{redundant_single_link_roles, subset_pairs};
use rolediet::core::{DetectionConfig, Pipeline};
use rolediet::model::diff::diff;
use rolediet::model::{RbacDataset, UserId};
use rolediet::synth::profiles::small_org;

#[test]
fn audit_consolidate_diff_workflow() {
    let org = rolediet::synth::generate_org(small_org(31));
    let ds = RbacDataset::from_graph(org.graph.clone());

    // 1. Detect and render the audit document.
    let report = Pipeline::new(DetectionConfig::default()).run(ds.graph());
    let md = render_markdown(&report, &ds, &RenderOptions::default());
    assert!(md.contains("T4 — roles sharing the same users"));
    assert!(md.contains("Consolidation estimate"));

    // 2. Periodic cleanup to a duplicate-free fixed point.
    let (trace, cleaned) = simulate_periodic_cleanup(ds.graph(), DetectionConfig::default(), 10);
    assert!(trace.converged);
    assert!(trace.total_removed() > 0);

    // 3. Diff old vs cleaned: roles disappeared, nobody's access moved.
    // (Carry names through the role map of a fresh plan application to
    // keep the diff name-based.)
    let report2 = Pipeline::new(DetectionConfig {
        skip_similarity: true,
        ..DetectionConfig::default()
    })
    .run(ds.graph());
    let plan = rolediet::core::MergePlan::from_report(&report2, ds.graph().n_roles(), true);
    let outcome = plan.apply(ds.graph());
    let merged_ds = ds
        .rebuild_with_role_map(&outcome.role_map, outcome.graph.n_roles())
        .unwrap();
    let d = diff(&ds, &merged_ds);
    assert!(!d.roles_removed.is_empty());
    assert!(d.roles_added.is_empty());
    assert!(
        d.users_with_access_changes.is_empty(),
        "consolidation changed access: {:?}",
        d.users_with_access_changes
    );

    // 4. Suggestions on the cleaned graph still work and are safe.
    let ruam = cleaned.ruam_sparse();
    let _subsets = subset_pairs(&ruam, &ruam.transpose());
    let final_report = Pipeline::new(DetectionConfig::default()).run(&cleaned);
    let redundant = redundant_single_link_roles(&cleaned, &final_report);
    // Deleting every suggested role (greedy order) must preserve access.
    let drop: std::collections::HashSet<usize> = redundant.iter().map(|r| r.role.index()).collect();
    let mut next = 0usize;
    let map: Vec<Option<usize>> = (0..cleaned.n_roles())
        .map(|r| {
            if drop.contains(&r) {
                None
            } else {
                let t = next;
                next += 1;
                Some(t)
            }
        })
        .collect();
    let slimmer = cleaned.rebuild_with_role_map(&map, next).unwrap();
    for u in 0..cleaned.n_users() {
        let uid = UserId::from_index(u);
        assert_eq!(
            cleaned.effective_permissions(uid),
            slimmer.effective_permissions(uid)
        );
    }
}

#[test]
fn full_diet_is_substantial_on_the_ing_profile() {
    // The paper's headline: T4 consolidation alone removes ~10% of roles.
    // Our extension stack (duplicates + standalone + provably redundant
    // single-link roles) strips strictly more, still access-preserving.
    let org = rolediet::synth::profiles::generate_ing_like(0.02, 5);
    let before = org.graph.n_roles();
    let (_, cleaned) = simulate_periodic_cleanup(&org.graph, DetectionConfig::default(), 10);
    let report = Pipeline::new(DetectionConfig::default()).run(&cleaned);
    let redundant = redundant_single_link_roles(&cleaned, &report);
    let after_dup = cleaned.n_roles();
    assert!(after_dup < before, "duplicate diet removed nothing");
    let dup_fraction = (before - after_dup) as f64 / before as f64;
    assert!(
        dup_fraction > 0.03,
        "expected a paper-scale (~10%) reduction, got {dup_fraction}"
    );
    // The redundancy pass finds additional opportunities on top.
    let drop: std::collections::HashSet<usize> = redundant.iter().map(|r| r.role.index()).collect();
    let mut next = 0usize;
    let map: Vec<Option<usize>> = (0..cleaned.n_roles())
        .map(|r| {
            if drop.contains(&r) {
                None
            } else {
                let t = next;
                next += 1;
                Some(t)
            }
        })
        .collect();
    let slimmer = cleaned.rebuild_with_role_map(&map, next).unwrap();
    for u in 0..cleaned.n_users() {
        let uid = UserId::from_index(u);
        assert_eq!(
            cleaned.effective_permissions(uid),
            slimmer.effective_permissions(uid)
        );
    }
}
