//! End-to-end test on the paper's Figure 1 worked example: every
//! inefficiency the paper narrates must be found, the Section III-C
//! co-occurrence matrix must come out exactly, and the consolidation must
//! be verified access-preserving — all through the public umbrella API.

use rolediet::core::consolidate::verify_preserves_access;
use rolediet::core::{DetectionConfig, MergePlan, Pipeline, Side, Strategy};
use rolediet::matrix::ops::gram_matrix;
use rolediet::model::io::{csv, json};
use rolediet::model::{RbacDataset, TripartiteGraph};

#[test]
fn all_paper_findings_on_figure1() {
    let graph = TripartiteGraph::figure1_example();
    let report = Pipeline::new(DetectionConfig::default()).run(&graph);

    // T1: "The P01 permission is an example of such a node."
    assert_eq!(report.standalone_permissions, vec![0]);
    assert!(report.standalone_users.is_empty());
    // T2: "role R02 is not connected to any permission node, and role R03
    //      is not linked to any user node."
    assert_eq!(report.permless_roles, vec![1]);
    assert_eq!(report.userless_roles, vec![2]);
    // T3: "the R01 and R05 roles have a single user assigned."
    assert_eq!(report.single_user_roles, vec![0, 4]);
    // T4: "roles R04 and R05, sharing the same set of permissions, might
    //      be alike, as well as roles R02 and R04, connected to identical
    //      users."
    assert_eq!(report.same_user_groups, vec![vec![1, 3]]);
    assert_eq!(report.same_permission_groups, vec![vec![3, 4]]);
}

#[test]
fn cooccurrence_matrix_matches_section_iii_c() {
    let graph = TripartiteGraph::figure1_example();
    let c = gram_matrix(&graph.ruam_sparse());
    let expected = vec![
        vec![1, 0, 0, 0, 0],
        vec![0, 2, 0, 2, 0],
        vec![0, 0, 0, 0, 0],
        vec![0, 2, 0, 2, 0],
        vec![0, 0, 0, 0, 1],
    ];
    assert_eq!(c, expected, "the exact matrix printed in the paper");
}

#[test]
fn every_strategy_reports_the_same_figure1_groups() {
    let graph = TripartiteGraph::figure1_example();
    for strategy in [
        Strategy::Custom,
        Strategy::ExactDbscan,
        Strategy::hnsw_default(),
        Strategy::minhash_default(),
    ] {
        let report = Pipeline::new(DetectionConfig::with_strategy(strategy)).run(&graph);
        assert_eq!(
            report.same_user_groups,
            vec![vec![1, 3]],
            "{}",
            strategy.name()
        );
        assert_eq!(
            report.same_permission_groups,
            vec![vec![3, 4]],
            "{}",
            strategy.name()
        );
    }
}

#[test]
fn consolidation_of_figure1_is_safe_and_minimal() {
    let graph = TripartiteGraph::figure1_example();
    let report = Pipeline::new(DetectionConfig::default()).run(&graph);
    let plan = MergePlan::from_report(&report, graph.n_roles(), true);
    // R02+R04 merge (same users); R04 then blocks the R04/R05 perm merge.
    assert_eq!(plan.roles_removed(), 1);
    let outcome = plan.apply(&graph);
    assert_eq!(outcome.graph.n_roles(), 4);
    assert!(verify_preserves_access(&graph, &outcome.graph).is_empty());
    assert_eq!(
        report.reducible_roles(Side::User) + report.reducible_roles(Side::Permission),
        2,
        "upper bound before overlap resolution"
    );
}

#[test]
fn figure1_roundtrips_through_csv_and_json() {
    let ds = RbacDataset::figure1_example();
    // CSV: edges only (standalone nodes are not representable in an edge
    // list — that is exactly why they go stale in real exports).
    let mut users_csv = Vec::new();
    csv::write_edges(&mut users_csv, &ds, csv::EdgeKind::UserAssignments).unwrap();
    let mut perms_csv = Vec::new();
    csv::write_edges(&mut perms_csv, &ds, csv::EdgeKind::PermissionGrants).unwrap();
    let mut back = RbacDataset::new();
    csv::read_edges(
        users_csv.as_slice(),
        &mut back,
        csv::EdgeKind::UserAssignments,
    )
    .unwrap();
    csv::read_edges(
        perms_csv.as_slice(),
        &mut back,
        csv::EdgeKind::PermissionGrants,
    )
    .unwrap();
    assert_eq!(
        back.graph().n_user_assignments(),
        ds.graph().n_user_assignments()
    );
    assert_eq!(
        back.graph().n_permission_grants(),
        ds.graph().n_permission_grants()
    );
    // JSON: lossless, including the standalone P01.
    let text = json::to_json_string(&ds).unwrap();
    let back = json::from_json_str(&text).unwrap();
    assert_eq!(back, ds);
    let report = Pipeline::new(DetectionConfig::default()).run(back.graph());
    assert_eq!(report.standalone_permissions, vec![0]);
}

#[test]
fn report_serializes_for_downstream_tools() {
    let graph = TripartiteGraph::figure1_example();
    let report = Pipeline::new(DetectionConfig::default()).run(&graph);
    let json = serde_json::to_string(&report).unwrap();
    let back: rolediet::core::Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}
