//! Generator → detector round trips: everything the generators plant, the
//! pipeline must recover (exactly for degree types and exact strategies;
//! at-least for group types, where coincidental extra duplicates are
//! legitimate findings too).

use rolediet::core::{DetectionConfig, Pipeline, SimilarityConfig};
use rolediet::model::{PermissionId, RoleId, UserId};
use rolediet::synth::profiles::{generate_ing_like, small_org};
use rolediet::synth::{generate_matrix, generate_org, MatrixGenConfig};

#[test]
fn planted_matrix_clusters_recovered_exactly() {
    for seed in [1u64, 2, 3] {
        let gen = generate_matrix(MatrixGenConfig::paper(600, 300, seed));
        let groups = rolediet::core::cooccur::same_groups(&gen.sparse());
        assert_eq!(groups, gen.truth.exact_duplicate_groups, "seed {seed}");
        // Every planted group is inside one detected group.
        for planted in &gen.truth.planted_groups {
            assert!(
                groups.iter().any(|g| planted.iter().all(|m| g.contains(m))),
                "seed {seed}: planted group {planted:?} lost"
            );
        }
    }
}

#[test]
fn planted_similar_pairs_recovered() {
    let gen = generate_matrix(MatrixGenConfig {
        perturbed_per_cluster: 1,
        ..MatrixGenConfig::paper(600, 300, 4)
    });
    let m = gen.sparse();
    let tr = m.transpose();
    let cfg = SimilarityConfig {
        threshold: 1,
        include_disjoint: true,
        ..SimilarityConfig::default()
    };
    let pairs: std::collections::HashSet<(usize, usize)> =
        rolediet::core::cooccur::similar_pairs(&m, &tr, &cfg)
            .into_iter()
            .map(|p| (p.a, p.b))
            .collect();
    assert!(!gen.truth.planted_similar_pairs.is_empty());
    for &(a, b) in &gen.truth.planted_similar_pairs {
        assert!(
            pairs.contains(&(a, b)),
            "planted similar pair ({a},{b}) missed"
        );
    }
}

#[test]
fn org_pipeline_recovers_planted_truth() {
    let org = generate_org(small_org(5));
    let report = Pipeline::new(DetectionConfig::default()).run(&org.graph);

    // Degree types: exact equality, id for id.
    let ids = |v: &[usize]| v.to_vec();
    assert_eq!(
        ids(&report.standalone_users),
        org.truth
            .standalone_users
            .iter()
            .map(|u: &UserId| u.index())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        ids(&report.standalone_permissions),
        org.truth
            .standalone_permissions
            .iter()
            .map(|p: &PermissionId| p.index())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        ids(&report.standalone_roles),
        org.truth
            .standalone_roles
            .iter()
            .map(|r: &RoleId| r.index())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        ids(&report.userless_roles),
        org.truth
            .userless_roles
            .iter()
            .map(|r: &RoleId| r.index())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        ids(&report.permless_roles),
        org.truth
            .permless_roles
            .iter()
            .map(|r: &RoleId| r.index())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        ids(&report.single_user_roles),
        org.truth
            .single_user_roles
            .iter()
            .map(|r: &RoleId| r.index())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        ids(&report.single_permission_roles),
        org.truth
            .single_permission_roles
            .iter()
            .map(|r: &RoleId| r.index())
            .collect::<Vec<_>>()
    );

    // Group types: every planted pair must land in one detected group.
    let covered = |groups: &[Vec<usize>], a: usize, b: usize| {
        groups.iter().any(|g| g.contains(&a) && g.contains(&b))
    };
    for &(a, b) in &org.truth.same_user_pairs {
        assert!(
            covered(&report.same_user_groups, a.index(), b.index()),
            "same-user pair ({a}, {b}) missed"
        );
    }
    for &(a, b) in &org.truth.same_permission_pairs {
        assert!(
            covered(&report.same_permission_groups, a.index(), b.index()),
            "same-permission pair ({a}, {b}) missed"
        );
    }
    // Similar types: planted Hamming-1 pairs must be reported.
    let has_pair = |pairs: &[rolediet::core::SimilarPair], a: usize, b: usize| {
        pairs.iter().any(|p| p.a == a.min(b) && p.b == a.max(b))
    };
    for &(a, b) in &org.truth.similar_user_pairs {
        assert!(
            has_pair(&report.similar_user_pairs, a.index(), b.index()),
            "similar-user pair ({a}, {b}) missed"
        );
    }
    for &(a, b) in &org.truth.similar_permission_pairs {
        assert!(
            has_pair(&report.similar_permission_pairs, a.index(), b.index()),
            "similar-permission pair ({a}, {b}) missed"
        );
    }
}

#[test]
fn ing_profile_detected_counts_match_published_shape() {
    // 2% scale of the Section IV-B organization.
    let org = generate_ing_like(0.02, 9);
    let report = Pipeline::new(DetectionConfig::default()).run(&org.graph);
    // Degree-type counts are exact by construction.
    assert_eq!(
        report.standalone_users.len(),
        org.truth.standalone_users.len()
    );
    assert_eq!(
        report.standalone_permissions.len(),
        org.truth.standalone_permissions.len()
    );
    assert_eq!(report.userless_roles.len(), org.truth.userless_roles.len());
    assert_eq!(report.permless_roles.len(), org.truth.permless_roles.len());
    assert_eq!(
        report.single_user_roles.len(),
        org.truth.single_user_roles.len()
    );
    assert_eq!(
        report.single_permission_roles.len(),
        org.truth.single_permission_roles.len()
    );
    // Published proportions: ~half of permissions standalone; ~10% of
    // roles removable via T4 consolidation.
    let frac = report.standalone_permissions.len() as f64 / org.graph.n_permissions() as f64;
    assert!(
        frac > 0.4 && frac < 0.6,
        "standalone permission fraction {frac}"
    );
    let removable = report.reducible_roles(rolediet::core::Side::User)
        + report.reducible_roles(rolediet::core::Side::Permission);
    let frac = removable as f64 / org.graph.n_roles() as f64;
    assert!(
        frac > 0.03 && frac < 0.2,
        "removable-role fraction {frac} out of the paper's ballpark"
    );
}
