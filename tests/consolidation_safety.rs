//! Consolidation safety, property-style: for arbitrary RBAC graphs, the
//! plan built from a detection report must apply cleanly and never change
//! any user's effective permissions — the invariant the paper's "role
//! diet" rests on.

use proptest::collection::vec;
use proptest::prelude::*;

use rolediet::core::consolidate::verify_preserves_access;
use rolediet::core::{DetectionConfig, MergePlan, Pipeline};
use rolediet::model::{PermissionId, RoleId, TripartiteGraph, UserId};

/// Arbitrary small tripartite graphs, biased toward duplicate rows.
fn graph_inputs() -> impl Strategy<Value = TripartiteGraph> {
    (2usize..10, 2usize..12, 2usize..10).prop_flat_map(|(users, roles, perms)| {
        let user_edges = vec((0..roles, 0..users), 0..roles * 3);
        let perm_edges = vec((0..roles, 0..perms), 0..roles * 3);
        // Duplicate some roles' edge sets to provoke T4 findings.
        let dups = vec((0..roles, 0..roles), 0..3);
        (user_edges, perm_edges, dups).prop_map(move |(ue, pe, dups)| {
            let mut g = TripartiteGraph::with_counts(users, roles, perms);
            for (r, u) in ue {
                g.assign_user(RoleId::from_index(r), UserId::from_index(u))
                    .unwrap();
            }
            for (r, p) in pe {
                g.grant_permission(RoleId::from_index(r), PermissionId::from_index(p))
                    .unwrap();
            }
            for (src, dst) in dups {
                if src != dst {
                    let users: Vec<UserId> = g.users_of(RoleId::from_index(src)).collect();
                    let old: Vec<UserId> = g.users_of(RoleId::from_index(dst)).collect();
                    for u in old {
                        g.revoke_user(RoleId::from_index(dst), u).unwrap();
                    }
                    for u in users {
                        g.assign_user(RoleId::from_index(dst), u).unwrap();
                    }
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn plans_apply_cleanly_and_preserve_access(graph in graph_inputs()) {
        let report = Pipeline::new(DetectionConfig::default()).run(&graph);
        let plan = MergePlan::from_report(&report, graph.n_roles(), true);
        let outcome = plan.apply(&graph);
        outcome.graph.validate().unwrap();
        // Role count drops by exactly the plan's promise.
        prop_assert_eq!(
            graph.n_roles() - outcome.graph.n_roles(),
            plan.roles_removed()
        );
        // The core invariant.
        let violations = verify_preserves_access(&graph, &outcome.graph);
        prop_assert!(violations.is_empty(), "access changed for {violations:?}");
        // The role map is total and consistent with the new graph size.
        prop_assert_eq!(outcome.role_map.len(), graph.n_roles());
        for target in outcome.role_map.iter().flatten() {
            prop_assert!(*target < outcome.graph.n_roles());
        }
    }

    #[test]
    fn consolidation_converges(graph in graph_inputs()) {
        // Repeatedly detect + consolidate: role count is non-increasing
        // and reaches a fixed point within n_roles iterations.
        let mut current = graph.clone();
        let mut last = current.n_roles() + 1;
        let mut rounds = 0usize;
        while current.n_roles() < last {
            last = current.n_roles();
            let report = Pipeline::new(DetectionConfig::default()).run(&current);
            let plan = MergePlan::from_report(&report, current.n_roles(), true);
            if plan.roles_removed() == 0 {
                break;
            }
            let outcome = plan.apply(&current);
            prop_assert!(verify_preserves_access(&current, &outcome.graph).is_empty());
            current = outcome.graph;
            rounds += 1;
            prop_assert!(rounds <= graph.n_roles(), "no convergence");
        }
        // At the fixed point there are no non-empty duplicate groups and
        // no standalone roles left.
        let report = Pipeline::new(DetectionConfig::default()).run(&current);
        prop_assert!(report.same_user_groups.is_empty());
        prop_assert!(report.same_permission_groups.is_empty());
        prop_assert!(report.standalone_roles.is_empty());
        // And the original access is still intact end-to-end.
        for u in 0..graph.n_users() {
            let uid = UserId::from_index(u);
            prop_assert_eq!(
                graph.effective_permissions(uid),
                current.effective_permissions(uid)
            );
        }
    }
}
