//! # rolediet — IAM Role Diet
//!
//! A Rust implementation of *"IAM Role Diet: A Scalable Approach to
//! Detecting RBAC Data Inefficiencies"* (DSN-S 2025): a taxonomy of five
//! RBAC data inefficiency types, linear-time detectors for the cheap ones,
//! and three interchangeable strategies — exact DBSCAN clustering,
//! approximate HNSW search, and the paper's co-occurrence algorithm — for
//! the expensive ones (roles sharing the same or similar users or
//! permissions).
//!
//! This umbrella crate re-exports the workspace so downstream users depend
//! on one crate:
//!
//! * [`model`] — tripartite user–role–permission graph, ids, I/O.
//! * [`matrix`] — RUAM/RPAM bit-matrix substrate (dense and sparse).
//! * [`cluster`] — DBSCAN, HNSW, MinHash LSH, metrics, union-find.
//! * [`synth`] — synthetic workload generators with planted ground truth.
//! * [`core`] — the detection framework: taxonomy, detectors, pipeline,
//!   reports and consolidation planning.
//! * [`mining`] — bottom-up role-mining baselines for contrasting
//!   regeneration against the role diet's refinement.
//!
//! # Quickstart
//!
//! ```
//! use rolediet::core::{DetectionConfig, Pipeline};
//! use rolediet::model::RbacDataset;
//!
//! // The worked example of Figure 1 of the paper.
//! let ds = RbacDataset::figure1_example();
//! let report = Pipeline::new(DetectionConfig::default()).run(ds.graph());
//! // R02/R04 share users, R04/R05 share permissions, …
//! assert!(report.total_findings() > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use rolediet_cluster as cluster;
pub use rolediet_core as core;
pub use rolediet_matrix as matrix;
pub use rolediet_mining as mining;
pub use rolediet_model as model;
pub use rolediet_synth as synth;
