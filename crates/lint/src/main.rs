//! Driver for `rolediet-lint`.
//!
//! ```text
//! cargo run -p rolediet-lint [-- --root PATH] [--strict] [--explain] [--json]
//!                            [--print-allowlist] [--fix-allowlist] [--quiet]
//! ```
//!
//! Exits non-zero when any violation survives the allowlist (and, under
//! `--strict`, when any allowlist slack/stale warning remains), so
//! `scripts/verify.sh` and CI can gate on it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut print_allowlist = false;
    let mut fix_allowlist = false;
    let mut strict = false;
    let mut explain = false;
    let mut json = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => die("--root needs a path"),
            },
            "--print-allowlist" => print_allowlist = true,
            "--fix-allowlist" => fix_allowlist = true,
            "--strict" => strict = true,
            "--explain" => explain = true,
            "--json" => json = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "rolediet-lint — workspace domain lints (per-file D1–D5, interprocedural D6–D8)\n\
                     \n\
                     \x20 --root PATH         workspace root (default: inferred)\n\
                     \x20 --strict            promote allowlist slack/stale warnings to errors\n\
                     \x20 --explain           print the call chain under each D6/D7 finding\n\
                     \x20 --json              machine-readable output (rule, file, fn, chain)\n\
                     \x20 --print-allowlist   emit allowlist entries for current findings\n\
                     \x20 --fix-allowlist     rewrite allowlist.txt with tightened ratchets\n\
                     \x20 --quiet             suppress the summary line"
                );
                return;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let started = Instant::now();

    if print_allowlist {
        match rolediet_lint::scan_workspace(&root) {
            Ok(raw) => print!("{}", rolediet_lint::suggested_allowlist(&raw)),
            Err(e) => die(&e),
        }
        return;
    }

    if fix_allowlist {
        let allow_path = root.join("crates/lint/allowlist.txt");
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => die(&format!("cannot read {}: {e}", allow_path.display())),
        };
        let boundaries = match rolediet_lint::allowlist::parse(&text) {
            Ok(allow) => allow.boundaries,
            Err(e) => die(&e),
        };
        let raw = match rolediet_lint::analyze(&root, &boundaries) {
            Ok(a) => a.raw,
            Err(e) => die(&e),
        };
        let counts = rolediet_lint::allowlist::group_counts(&raw);
        let tightened = rolediet_lint::allowlist::tighten(&text, &counts);
        if tightened == text {
            eprintln!("rolediet-lint: allowlist already tight");
        } else if let Err(e) = std::fs::write(&allow_path, &tightened) {
            die(&format!("cannot write {}: {e}", allow_path.display()));
        } else {
            eprintln!("rolediet-lint: tightened {}", allow_path.display());
        }
        return;
    }

    match rolediet_lint::run(&root) {
        Ok(outcome) => {
            let failed = !outcome.violations.is_empty() || (strict && !outcome.warnings.is_empty());
            if json {
                print!("{}", rolediet_lint::render_json(&outcome));
            } else {
                let warn_tag = if strict { "error (strict)" } else { "warning" };
                for w in &outcome.warnings {
                    eprintln!("{warn_tag}: {w}");
                }
                for v in &outcome.violations {
                    println!("{v}");
                    if explain && !v.chain.is_empty() {
                        for (depth, hop) in v.chain.iter().enumerate() {
                            println!("    {}{hop}", "  ".repeat(depth));
                        }
                    }
                }
                if !quiet {
                    eprintln!(
                        "rolediet-lint: {} files scanned, {} fns / {} call edges indexed, \
                         {} raw findings, {} allowlisted, {} actionable in {} ms",
                        outcome.files_scanned,
                        outcome.fns_indexed,
                        outcome.call_edges,
                        outcome.raw_count,
                        outcome.raw_count - outcome.violations.len(),
                        outcome.violations.len(),
                        started.elapsed().as_millis(),
                    );
                }
            }
            if failed {
                std::process::exit(1);
            }
        }
        Err(e) => die(&e),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("rolediet-lint: {msg}");
    std::process::exit(2)
}

/// The workspace root: two levels above this crate's manifest, which
/// holds both when run via `cargo run` from any directory and when the
/// binary is invoked directly from a checkout.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}
