//! Driver for `rolediet-lint`.
//!
//! ```text
//! cargo run -p rolediet-lint [-- --root PATH] [--print-allowlist] [--quiet]
//! ```
//!
//! Exits non-zero when any violation survives the allowlist, so
//! `scripts/verify.sh` and CI can gate on it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut print_allowlist = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => die("--root needs a path"),
            },
            "--print-allowlist" => print_allowlist = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "rolediet-lint — workspace domain lints (D1–D5)\n\
                     \n\
                     \x20 --root PATH         workspace root (default: inferred)\n\
                     \x20 --print-allowlist   emit allowlist entries for current findings\n\
                     \x20 --quiet             suppress the summary line"
                );
                return;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    if print_allowlist {
        match rolediet_lint::scan_workspace(&root) {
            Ok(raw) => print!("{}", rolediet_lint::suggested_allowlist(&raw)),
            Err(e) => die(&e),
        }
        return;
    }

    match rolediet_lint::run(&root) {
        Ok(outcome) => {
            for w in &outcome.warnings {
                eprintln!("warning: {w}");
            }
            for v in &outcome.violations {
                println!("{v}");
            }
            if !quiet {
                eprintln!(
                    "rolediet-lint: {} files scanned, {} raw findings, {} allowlisted, {} actionable",
                    outcome.files_scanned,
                    outcome.raw_count,
                    outcome.raw_count - outcome.violations.len(),
                    outcome.violations.len()
                );
            }
            if !outcome.violations.is_empty() {
                std::process::exit(1);
            }
        }
        Err(e) => die(&e),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("rolediet-lint: {msg}");
    std::process::exit(2)
}

/// The workspace root: two levels above this crate's manifest, which
/// holds both when run via `cargo run` from any directory and when the
/// binary is invoked directly from a checkout.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}
