//! `rolediet-lint` — domain lints for the rolediet workspace.
//!
//! The workspace's central claim is that every parallel stage is
//! bit-identical to its sequential oracle at every thread count. The
//! proptests pin that dynamically; this crate prevents the *next* change
//! from breaking it statically, with five hand-rolled lints (see
//! [`rules`] for the table) enforced by a dependency-free token scanner
//! over the workspace's own sources.
//!
//! Audited exceptions live in `crates/lint/allowlist.txt` as per-file,
//! per-rule allowances with a ratchet: the violation count may shrink
//! but never grow (see [`allowlist`]).
//!
//! Run it as `cargo run -p rolediet-lint` (wired into
//! `scripts/verify.sh` and CI), or `--print-allowlist` to emit entries
//! for the current findings when auditing new debt.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

use rules::Violation;

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Actionable violations (allowlist already applied). Non-empty
    /// means the run failed.
    pub violations: Vec<Violation>,
    /// Non-fatal notes (allowlist slack, stale entries).
    pub warnings: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Raw violation count before the allowlist was applied.
    pub raw_count: usize,
}

/// Lints the workspace rooted at `root` with the checked-in allowlist.
///
/// # Errors
///
/// Returns a message when the workspace cannot be walked or the
/// allowlist is malformed — infrastructure failures, distinct from lint
/// violations, which are reported in the [`Outcome`].
pub fn run(root: &Path) -> Result<Outcome, String> {
    let allow_path = root.join("crates/lint/allowlist.txt");
    let entries = match std::fs::read_to_string(&allow_path) {
        Ok(text) => allowlist::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", allow_path.display())),
    };
    let raw = scan_workspace(root)?;
    let files_scanned = walk::workspace_files(root)?
        .iter()
        .filter(|rel| rules::classify(rel).is_some())
        .count();
    let raw_count = raw.len();
    let filtered = allowlist::apply(raw, &entries);
    Ok(Outcome {
        violations: filtered.violations,
        warnings: filtered.warnings,
        files_scanned,
        raw_count,
    })
}

/// Scans every lintable workspace file, with no allowlist applied.
///
/// # Errors
///
/// Returns a message when a file or directory cannot be read.
pub fn scan_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let mut out = Vec::new();
    for rel in walk::workspace_files(root)? {
        let Some(class) = rules::classify(&rel) else {
            continue;
        };
        let path = root.join(&rel);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        out.extend(rules::scan_file(&class, &src));
    }
    Ok(out)
}

/// Renders `violations` as allowlist entries (one per `(rule, path)`
/// group, allowance = current count) for `--print-allowlist`.
pub fn suggested_allowlist(violations: &[Violation]) -> String {
    let mut counts: std::collections::BTreeMap<(&str, &str), usize> =
        std::collections::BTreeMap::new();
    for v in violations {
        *counts.entry((v.rule, v.path.as_str())).or_default() += 1;
    }
    let mut out = String::new();
    for ((rule, path), n) in counts {
        out.push_str(&format!("{rule} {path} {n}  # TODO: justify\n"));
    }
    out
}
