//! `rolediet-lint` — domain lints for the rolediet workspace.
//!
//! The workspace's central claim is that every parallel stage is
//! bit-identical to its sequential oracle at every thread count. The
//! proptests pin that dynamically; this crate prevents the *next* change
//! from breaking it statically:
//!
//! * **D1–D5** — per-file token lints (see [`rules`] for the table),
//!   a dependency-free scanner over the workspace's own sources;
//! * **D6–D8** — interprocedural rules (see [`interproc`]) over a
//!   conservative workspace call graph: determinism-taint reachability
//!   from the pipeline entry points, a ratcheted per-crate panic
//!   surface, and a capture audit for parallel closures. The graph is
//!   recovered by a lightweight item parser ([`parse`]) and linked by
//!   [`graph`]; resolution over-approximates, so a deny verdict is
//!   sound even where static resolution is ambiguous.
//!
//! Audited exceptions live in `crates/lint/allowlist.txt` as per-file,
//! per-rule allowances with a ratchet: the violation count may shrink
//! but never grow (see [`allowlist`]). D6 taint boundaries are declared
//! there too, each with a mandatory written justification.
//!
//! Run it as `cargo run -p rolediet-lint` (wired into
//! `scripts/verify.sh` and CI; `--strict` there), `--print-allowlist`
//! to emit entries for the current findings when auditing new debt, or
//! `--fix-allowlist` to tighten ratchets in place.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod allowlist;
pub mod graph;
pub mod interproc;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod walk;

use std::path::Path;

use rules::{FileKind, Violation};

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Actionable violations (allowlist already applied). Non-empty
    /// means the run failed.
    pub violations: Vec<Violation>,
    /// Non-fatal notes (allowlist slack, stale entries). Hard errors
    /// under `--strict`.
    pub warnings: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Raw violation count before the allowlist was applied.
    pub raw_count: usize,
    /// Fns indexed in the workspace call graph.
    pub fns_indexed: usize,
    /// Resolved call edges in the workspace call graph.
    pub call_edges: usize,
}

/// Raw analysis results: every finding before the allowlist, plus the
/// call-graph size for reporting.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All violations, D1–D8, unfiltered.
    pub raw: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Fns indexed in the call graph.
    pub fns_indexed: usize,
    /// Resolved call edges.
    pub call_edges: usize,
}

/// Reads and parses `crates/lint/allowlist.txt` under `root` (an absent
/// file is an empty allowlist).
///
/// # Errors
///
/// Returns a message when the file exists but cannot be read or parsed.
pub fn load_allowlist(root: &Path) -> Result<allowlist::Allowlist, String> {
    let allow_path = root.join("crates/lint/allowlist.txt");
    match std::fs::read_to_string(&allow_path) {
        Ok(text) => allowlist::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(allowlist::Allowlist::default()),
        Err(e) => Err(format!("cannot read {}: {e}", allow_path.display())),
    }
}

/// Scans every lintable workspace file (D1–D5), builds the call graph
/// over library and binary sources, and runs D6–D8 with the given
/// taint `boundaries`. No allowlist filtering is applied.
///
/// # Errors
///
/// Returns a message when a file or directory cannot be read.
pub fn analyze(root: &Path, boundaries: &[allowlist::Boundary]) -> Result<Analysis, String> {
    let mut raw = Vec::new();
    let mut files_scanned = 0usize;
    let mut graph_sources: Vec<(rules::FileClass, String)> = Vec::new();
    for rel in walk::workspace_files(root)? {
        let Some(class) = rules::classify(&rel) else {
            continue;
        };
        let path = root.join(&rel);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files_scanned += 1;
        raw.extend(rules::scan_file(&class, &src));
        if matches!(class.kind, FileKind::LibSrc | FileKind::BinSrc) {
            graph_sources.push((class, src));
        }
    }
    let graph = graph::Workspace::build(graph_sources);
    raw.extend(interproc::scan(&graph, boundaries));
    Ok(Analysis {
        raw,
        files_scanned,
        fns_indexed: graph.fns.len(),
        call_edges: graph.edge_count,
    })
}

/// Lints the workspace rooted at `root` with the checked-in allowlist.
///
/// # Errors
///
/// Returns a message when the workspace cannot be walked or the
/// allowlist is malformed — infrastructure failures, distinct from lint
/// violations, which are reported in the [`Outcome`].
pub fn run(root: &Path) -> Result<Outcome, String> {
    let allow = load_allowlist(root)?;
    let analysis = analyze(root, &allow.boundaries)?;
    let raw_count = analysis.raw.len();
    let filtered = allowlist::apply(analysis.raw, &allow.entries);
    Ok(Outcome {
        violations: filtered.violations,
        warnings: filtered.warnings,
        files_scanned: analysis.files_scanned,
        raw_count,
        fns_indexed: analysis.fns_indexed,
        call_edges: analysis.call_edges,
    })
}

/// Scans the whole workspace (D1–D8) with no allowlist filtering,
/// using the checked-in boundaries when the allowlist parses.
///
/// # Errors
///
/// Returns a message when the workspace cannot be walked or read.
pub fn scan_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let boundaries = load_allowlist(root)
        .map(|a| a.boundaries)
        .unwrap_or_default();
    Ok(analyze(root, &boundaries)?.raw)
}

/// Renders `violations` as allowlist entries (one per `(rule, path)`
/// group, allowance = current count) for `--print-allowlist`.
pub fn suggested_allowlist(violations: &[Violation]) -> String {
    let mut out = String::new();
    for ((rule, path), n) in allowlist::group_counts(violations) {
        out.push_str(&format!("{rule} {path} {n}  # TODO: justify\n"));
    }
    out
}

/// Renders the outcome as machine-readable JSON for `--json`:
/// violations carry rule, file, line, enclosing fn, and call chain.
pub fn render_json(outcome: &Outcome) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn str_list(items: &[String]) -> String {
        let parts: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
        format!("[{}]", parts.join(","))
    }
    let mut vs = Vec::new();
    for v in &outcome.violations {
        let func = match &v.func {
            Some(f) => format!("\"{}\"", esc(f)),
            None => "null".to_owned(),
        };
        vs.push(format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"fn\":{},\"msg\":\"{}\",\"chain\":{}}}",
            v.rule,
            esc(&v.path),
            v.line,
            func,
            esc(&v.msg),
            str_list(&v.chain),
        ));
    }
    format!(
        "{{\"files_scanned\":{},\"fns_indexed\":{},\"call_edges\":{},\"raw_count\":{},\
         \"violations\":[{}],\"warnings\":{}}}\n",
        outcome.files_scanned,
        outcome.fns_indexed,
        outcome.call_edges,
        outcome.raw_count,
        vs.join(","),
        str_list(&outcome.warnings),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_structures() {
        let outcome = Outcome {
            violations: vec![Violation {
                rule: "D6",
                path: "crates/x/src/a.rs".to_owned(),
                line: 3,
                msg: "a \"quoted\" msg".to_owned(),
                func: Some("T::f".to_owned()),
                chain: vec!["entry (a.rs:1)".to_owned(), "T::f (a.rs:3)".to_owned()],
            }],
            warnings: vec!["slack".to_owned()],
            files_scanned: 2,
            raw_count: 1,
            fns_indexed: 5,
            call_edges: 7,
        };
        let json = render_json(&outcome);
        assert!(json.contains("\"rule\":\"D6\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"fn\":\"T::f\""));
        assert!(json.contains("\"chain\":[\"entry (a.rs:1)\",\"T::f (a.rs:3)\"]"));
        assert!(json.contains("\"fns_indexed\":5"));
        // Exactly one line, parseable shape.
        assert_eq!(json.lines().count(), 1);
    }
}
