//! The domain lint rules (D1–D5) and the per-file scanner.
//!
//! | Rule | Contract it guards |
//! |------|--------------------|
//! | D1 | All parallelism rides the substrate: no `thread::spawn`/`thread::scope` outside `crates/matrix/src/parallel.rs`. |
//! | D2 | No order-dependent output: no `HashMap`/`HashSet` in non-test library code of `matrix`/`cluster`/`core` — use `BTreeMap`/`BTreeSet` or sort before exposure (audited exceptions go in the allowlist). |
//! | D3 | Crate roots carry `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`; no `unsafe` token anywhere (including keyword-adjacent `unsafe_` bindings, which read as `unsafe` in diffs). |
//! | D4 | No `.unwrap()`/`.expect(..)` in non-test library code (invariant-backed uses are audited in the allowlist). |
//! | D5 | No wall-clock reads (`Instant`/`SystemTime`) outside the `Report::timings` plumbing (`crates/core/src/pipeline.rs`) and the bench crate. |
//!
//! The interprocedural rules D6–D8 (determinism taint, panic surface,
//! parallel-closure capture audit) live in [`crate::interproc`]; they run
//! over the workspace call graph rather than one file at a time.

use crate::lexer::{tokenize, Token};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule code, `"D1"`..`"D8"`.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators (for the per-crate
    /// D7 ratchet, the crate directory, e.g. `crates/matrix`).
    pub path: String,
    /// 1-based line (0 for whole-file findings such as missing attributes).
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
    /// Enclosing fn (interprocedural rules only), `Type::name` form.
    pub func: Option<String>,
    /// Call chain from the analyzed entry point to the finding
    /// (interprocedural rules only); printed by `--explain`/`--json`.
    pub chain: Vec<String>,
}

impl Violation {
    /// A plain (per-file) finding with no call-chain context.
    pub fn new(rule: &'static str, path: &str, line: u32, msg: String) -> Violation {
        Violation {
            rule,
            path: path.to_owned(),
            line,
            msg,
            func: None,
            chain: Vec::new(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{} {}: {}", self.rule, self.path, self.msg)
        } else {
            write!(f, "{} {}:{}: {}", self.rule, self.path, self.line, self.msg)
        }
    }
}

/// What kind of target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of a library crate (or the workspace root crate).
    LibSrc,
    /// `src/main.rs` or `src/bin/*.rs`.
    BinSrc,
    /// An integration-test file under `tests/`.
    TestsDir,
    /// A benchmark under `benches/`.
    BenchesDir,
}

/// Where a file sits in the workspace, as far as rule scoping cares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Crate directory name (`matrix`, `core`, ...; the root crate is
    /// `rolediet`).
    pub crate_name: String,
    /// Target kind.
    pub kind: FileKind,
    /// Whether this file is a crate root (`lib.rs`, `main.rs`, `bin/*.rs`).
    pub crate_root: bool,
}

/// Classifies a workspace-relative path; `None` means the file is out of
/// scope (vendored code, lint fixtures, non-Rust files).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs")
        || rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.starts_with("crates/lint/tests/fixtures/")
    {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest) = match parts.as_slice() {
        ["crates", name, rest @ ..] => ((*name).to_owned(), rest.to_vec()),
        ["src", rest @ ..] => {
            let mut v = vec!["src"];
            v.extend(rest);
            ("rolediet".to_owned(), v)
        }
        _ => return None,
    };
    let (kind, crate_root) = match rest.as_slice() {
        ["src", "lib.rs"] => (FileKind::LibSrc, true),
        ["src", "main.rs"] => (FileKind::BinSrc, true),
        ["src", "bin", _] => (FileKind::BinSrc, true),
        ["src", ..] => (FileKind::LibSrc, false),
        ["tests", ..] => (FileKind::TestsDir, false),
        ["benches", ..] => (FileKind::BenchesDir, false),
        _ => return None,
    };
    Some(FileClass {
        rel: rel.to_owned(),
        crate_name,
        kind,
        crate_root,
    })
}

/// The one file allowed to touch `std::thread` directly.
const SUBSTRATE: &str = "crates/matrix/src/parallel.rs";
/// The one file allowed to read wall clocks outside the bench crate.
const TIMINGS_PLUMBING: &str = "crates/core/src/pipeline.rs";
/// Crates whose non-test library code must not use hash collections (D2).
const ORDER_SENSITIVE_CRATES: &[&str] = &["matrix", "cluster", "core", "mining"];
/// Crates whose non-test library code must not unwrap/expect (D4).
const LIBRARY_CRATES: &[&str] = &[
    "matrix", "model", "cluster", "synth", "core", "mining", "lint", "rolediet",
];

/// Scans one classified file and returns its violations.
pub fn scan_file(class: &FileClass, src: &str) -> Vec<Violation> {
    let tokens = tokenize(src);
    let mut out = Vec::new();
    d1_substrate_only(class, &tokens, &mut out);
    d2_no_hash_collections(class, &tokens, &mut out);
    d3_unsafe_hygiene(class, src, &tokens, &mut out);
    d4_no_unwrap(class, &tokens, &mut out);
    d5_no_wall_clock(class, &tokens, &mut out);
    out
}

fn push(out: &mut Vec<Violation>, rule: &'static str, class: &FileClass, line: u32, msg: String) {
    out.push(Violation::new(rule, &class.rel, line, msg));
}

/// D1: `thread::spawn` / `thread::scope` only inside the substrate.
fn d1_substrate_only(class: &FileClass, tokens: &[Token], out: &mut Vec<Violation>) {
    if class.rel == SUBSTRATE {
        return;
    }
    for w in tokens.windows(4) {
        let [a, c1, c2, b] = w else { continue };
        if a.ident
            && a.text == "thread"
            && c1.text == ":"
            && c2.text == ":"
            && b.ident
            && matches!(b.text.as_str(), "spawn" | "scope")
        {
            push(
                out,
                "D1",
                class,
                b.line,
                format!(
                    "`thread::{}` outside the parallel substrate ({SUBSTRATE}); \
                     use rolediet_matrix::parallel instead",
                    b.text
                ),
            );
        }
    }
}

/// D2: no `HashMap`/`HashSet` in non-test library code of the
/// order-sensitive crates.
fn d2_no_hash_collections(class: &FileClass, tokens: &[Token], out: &mut Vec<Violation>) {
    if class.kind != FileKind::LibSrc
        || !ORDER_SENSITIVE_CRATES.contains(&class.crate_name.as_str())
    {
        return;
    }
    for t in tokens {
        if t.ident && !t.in_test && matches!(t.text.as_str(), "HashMap" | "HashSet") {
            push(
                out,
                "D2",
                class,
                t.line,
                format!(
                    "`{}` in non-test code of an order-sensitive crate: iteration order \
                     can leak into output; use BTreeMap/BTreeSet or allowlist the audited use",
                    t.text
                ),
            );
        }
    }
}

/// D3: crate-root hygiene attributes plus a textual `unsafe` scan.
fn d3_unsafe_hygiene(class: &FileClass, src: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    if class.crate_root {
        // Whitespace-insensitive search over the raw source; the lexer
        // has no attribute AST, and these attributes are head-of-file
        // boilerplate that comments have no business faking.
        let compact: String = src.chars().filter(|c| !c.is_whitespace()).collect();
        for needle in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
            let compact_needle: String = needle.chars().filter(|c| !c.is_whitespace()).collect();
            if !compact.contains(&compact_needle) {
                push(
                    out,
                    "D3",
                    class,
                    0,
                    format!("crate root is missing `{needle}`"),
                );
            }
        }
    }
    for t in tokens {
        if t.ident && matches!(t.text.as_str(), "unsafe" | "unsafe_") {
            push(
                out,
                "D3",
                class,
                t.line,
                format!(
                    "`{}` token: unsafe code is forbidden workspace-wide, and \
                     keyword-adjacent `unsafe_` bindings read as unsafe in diffs",
                    t.text
                ),
            );
        }
    }
}

/// D4: no `.unwrap()` / `.expect(..)` in non-test library code.
fn d4_no_unwrap(class: &FileClass, tokens: &[Token], out: &mut Vec<Violation>) {
    if class.kind != FileKind::LibSrc || !LIBRARY_CRATES.contains(&class.crate_name.as_str()) {
        return;
    }
    for w in tokens.windows(3) {
        let [dot, name, paren] = w else { continue };
        if dot.text == "."
            && !dot.ident
            && name.ident
            && !name.in_test
            && matches!(name.text.as_str(), "unwrap" | "expect")
            && paren.text == "("
        {
            push(
                out,
                "D4",
                class,
                name.line,
                format!(
                    "`.{}(..)` in library code: return an error or prove the \
                     invariant and allowlist the audited call site",
                    name.text
                ),
            );
        }
    }
}

/// D5: wall-clock reads only in the timings plumbing and the bench crate.
fn d5_no_wall_clock(class: &FileClass, tokens: &[Token], out: &mut Vec<Violation>) {
    if class.rel == TIMINGS_PLUMBING || class.crate_name == "bench" {
        return;
    }
    for t in tokens {
        if t.ident && !t.in_test && matches!(t.text.as_str(), "Instant" | "SystemTime") {
            push(
                out,
                "D5",
                class,
                t.line,
                format!(
                    "`{}` outside the Report::timings plumbing ({TIMINGS_PLUMBING}): \
                     wall-clock reads make output depend on when it ran",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_class(rel: &str) -> FileClass {
        classify(rel).expect("classifiable")
    }

    #[test]
    fn classify_maps_layouts() {
        let c = lib_class("crates/matrix/src/sparse.rs");
        assert_eq!(c.crate_name, "matrix");
        assert_eq!(c.kind, FileKind::LibSrc);
        assert!(!c.crate_root);
        assert!(lib_class("crates/cli/src/main.rs").crate_root);
        assert!(lib_class("crates/bench/src/bin/repro.rs").crate_root);
        assert_eq!(lib_class("src/lib.rs").crate_name, "rolediet");
        assert_eq!(
            lib_class("crates/model/tests/properties.rs").kind,
            FileKind::TestsDir
        );
        assert!(classify("vendor/rand/src/lib.rs").is_none());
        assert!(classify("crates/lint/tests/fixtures/d1.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn d1_flags_spawn_everywhere_but_substrate() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let hits = scan_file(&lib_class("crates/core/src/pipeline.rs"), src);
        assert!(hits.iter().any(|v| v.rule == "D1"), "{hits:?}");
        let none = scan_file(&lib_class("crates/matrix/src/parallel.rs"), src);
        assert!(none.iter().all(|v| v.rule != "D1"));
    }

    #[test]
    fn d2_respects_test_regions_and_crate_scope() {
        let src = "#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        let c = lib_class("crates/cluster/src/minhash.rs");
        assert!(scan_file(&c, src).iter().all(|v| v.rule != "D2"));
        let live = "use std::collections::HashMap;\n";
        assert!(scan_file(&c, live).iter().any(|v| v.rule == "D2"));
        // Out-of-scope crate: model may use hash collections.
        let m = lib_class("crates/model/src/graph.rs");
        assert!(scan_file(&m, live).iter().all(|v| v.rule != "D2"));
    }

    #[test]
    fn d3_requires_root_attrs_and_flags_unsafe_adjacent_names() {
        let c = lib_class("crates/cli/src/main.rs");
        let hits = scan_file(&c, "fn main() {}");
        assert_eq!(hits.iter().filter(|v| v.rule == "D3").count(), 2);
        let clean = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\nfn main() {}";
        assert!(scan_file(&c, clean).iter().all(|v| v.rule != "D3"));
        let shadow = "fn main() { let unsafe_ = 1; }";
        assert!(scan_file(&c, shadow).iter().any(|v| v.rule == "D3"));
        // `unsafe_similar_merges` is a distinct identifier, not flagged.
        let ok = "fn main() { unsafe_similar_merges(); }";
        assert!(scan_file(&c, ok)
            .iter()
            .all(|v| v.rule != "D3" || v.line == 0));
    }

    #[test]
    fn d4_only_library_nontest_code() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); }";
        let c = lib_class("crates/model/src/graph.rs");
        assert_eq!(
            scan_file(&c, src).iter().filter(|v| v.rule == "D4").count(),
            2
        );
        // unwrap_or_else is a different identifier.
        let ok = "fn f() { x.unwrap_or_else(|| 3); }";
        assert!(scan_file(&c, ok).iter().all(|v| v.rule != "D4"));
        // Integration tests may unwrap freely.
        let t = lib_class("crates/model/tests/properties.rs");
        assert!(scan_file(&t, src).iter().all(|v| v.rule != "D4"));
        // The CLI is a bin target, out of D4 scope.
        let cli = lib_class("crates/cli/src/main.rs");
        assert!(scan_file(&cli, src).iter().all(|v| v.rule != "D4"));
    }

    #[test]
    fn d5_exempts_plumbing_and_bench() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let c = lib_class("crates/cluster/src/dbscan.rs");
        assert!(scan_file(&c, src).iter().any(|v| v.rule == "D5"));
        let plumbing = lib_class("crates/core/src/pipeline.rs");
        assert!(scan_file(&plumbing, src).iter().all(|v| v.rule != "D5"));
        let bench = lib_class("crates/bench/src/bin/repro.rs");
        assert!(scan_file(&bench, src).iter().all(|v| v.rule != "D5"));
    }
}
