//! The audited-exception allowlist.
//!
//! Format (one entry per line, `#` comments):
//!
//! ```text
//! RULE  PATH  MAX  # why this is sound
//! D2    crates/matrix/src/signature.rs  2  # buckets sorted before exposure
//! boundary  crates/matrix/src/parallel.rs  par_map_rows  # join order proven deterministic
//! ```
//!
//! `MAX` is a ratchet: the file may carry at most that many violations
//! of the rule. Growing past the allowance fails the lint, so audited
//! debt can shrink but never silently grow. Entries with slack (fewer
//! violations than allowed) are reported as warnings so the allowance
//! can be tightened — or promoted to hard errors under `--strict`.
//!
//! `boundary PATH FN` lines declare audited determinism boundaries for
//! the D6 taint analysis: reachability stops at the named fn, on the
//! strength of the written justification (mandatory, like every
//! D6–D8 allowance — the interprocedural rules are new enough that no
//! unexplained debt is grandfathered in).

use std::collections::BTreeMap;

use crate::rules::Violation;

/// One parsed allowance entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule code (`D1`..`D8`).
    pub rule: String,
    /// Workspace-relative path the allowance applies to (for D7, the
    /// per-crate ratchet path, e.g. `crates/matrix`).
    pub path: String,
    /// Maximum violations of `rule` allowed in `path`.
    pub max: usize,
}

/// One audited D6 boundary: taint reachability stops at this fn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Boundary {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// The fn's identifier (unqualified).
    pub func: String,
}

/// The parsed allowlist: ratchet entries plus taint boundaries.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Allowlist {
    /// Per-`(rule, path)` ratchet allowances.
    pub entries: Vec<Entry>,
    /// Audited D6 determinism boundaries.
    pub boundaries: Vec<Boundary>,
}

/// Rules whose allowances (and boundaries) must carry a written audit
/// justification on the same line.
const JUSTIFIED_RULES: &[&str] = &["D6", "D7", "D8"];

/// Parses allowlist text.
///
/// # Errors
///
/// Returns a message naming the first malformed line — including a
/// D6–D8 allowance or a boundary with no `# why` justification.
pub fn parse(text: &str) -> Result<Allowlist, String> {
    let mut out = Allowlist::default();
    for (idx, raw) in text.lines().enumerate() {
        let (line, comment) = match raw.split_once('#') {
            Some((l, c)) => (l.trim(), c.trim()),
            None => (raw.trim(), ""),
        };
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.first() == Some(&"boundary") {
            let [_, path, func] = fields.as_slice() else {
                return Err(format!(
                    "allowlist line {}: expected `boundary PATH FN  # why`, got {raw:?}",
                    idx + 1
                ));
            };
            if comment.is_empty() {
                return Err(format!(
                    "allowlist line {}: boundary {func} needs a written audit \
                     justification (`# why the join is deterministic`)",
                    idx + 1
                ));
            }
            out.boundaries.push(Boundary {
                path: (*path).to_owned(),
                func: (*func).to_owned(),
            });
            continue;
        }
        let [rule, path, max] = fields.as_slice() else {
            return Err(format!(
                "allowlist line {}: expected `RULE PATH MAX`, got {raw:?}",
                idx + 1
            ));
        };
        if !matches!(*rule, "D1" | "D2" | "D3" | "D4" | "D5" | "D6" | "D7" | "D8") {
            return Err(format!("allowlist line {}: unknown rule {rule:?}", idx + 1));
        }
        if JUSTIFIED_RULES.contains(rule) && comment.is_empty() {
            return Err(format!(
                "allowlist line {}: {rule} allowances need a written audit \
                 justification (`# why this is sound`)",
                idx + 1
            ));
        }
        let max: usize = max
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count {max:?}", idx + 1))?;
        out.entries.push(Entry {
            rule: (*rule).to_owned(),
            path: (*path).to_owned(),
            max,
        });
    }
    Ok(out)
}

/// Result of filtering violations through the allowlist.
#[derive(Debug, Default)]
pub struct Filtered {
    /// Violations that remain actionable (not covered by an allowance,
    /// or in excess of one).
    pub violations: Vec<Violation>,
    /// Non-fatal notes: slack or stale allowances worth tightening.
    pub warnings: Vec<String>,
}

/// Applies the allowlist: groups violations by `(rule, path)` and
/// suppresses groups whose count fits the allowance.
pub fn apply(violations: Vec<Violation>, entries: &[Entry]) -> Filtered {
    let mut allowance: BTreeMap<(String, String), usize> = BTreeMap::new();
    for e in entries {
        allowance.insert((e.rule.clone(), e.path.clone()), e.max);
    }
    let counts = group_counts(&violations);
    let mut out = Filtered::default();
    for v in violations {
        let key = (v.rule.to_owned(), v.path.clone());
        let found = counts[&key];
        match allowance.get(&key) {
            Some(&max) if found <= max => {} // audited, within ratchet
            Some(&max) => {
                out.violations.push(Violation {
                    msg: format!(
                        "{} [{found} found, allowance is {max} — the ratchet only goes down]",
                        v.msg
                    ),
                    ..v
                });
            }
            None => out.violations.push(v),
        }
    }
    for (key @ (rule, path), &max) in &allowance {
        let found = counts.get(key).copied().unwrap_or(0);
        if found == 0 {
            out.warnings.push(format!(
                "allowlist: stale entry {rule} {path} (no violations left; remove it)"
            ));
        } else if found < max {
            out.warnings.push(format!(
                "allowlist: slack for {rule} {path} ({found} found < {max} allowed; tighten to {found})"
            ));
        }
    }
    out
}

/// Raw violation counts per `(rule, path)` group.
pub fn group_counts(violations: &[Violation]) -> BTreeMap<(String, String), usize> {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in violations {
        *counts
            .entry((v.rule.to_owned(), v.path.clone()))
            .or_default() += 1;
    }
    counts
}

/// Rewrites allowlist text with ratchets tightened to the raw `counts`
/// actually found (`--fix-allowlist`).
///
/// The rewrite is line-preserving: comments, blank lines, boundary
/// declarations, and entry justifications survive verbatim. Only the
/// MAX field changes — down to the found count when there is slack —
/// and entries whose count reached zero are dropped entirely. Counts
/// *above* the allowance are never written: growth must be audited by
/// hand, not laundered through the fixer.
pub fn tighten(text: &str, counts: &BTreeMap<(String, String), usize>) -> String {
    let mut out = String::new();
    for raw in text.lines() {
        let (line, _comment) = match raw.split_once('#') {
            Some((l, c)) => (l.trim(), c.trim()),
            None => (raw.trim(), ""),
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        let entry = match fields.as_slice() {
            [rule, path, max] if *rule != "boundary" && max.parse::<usize>().is_ok() => {
                Some(((*rule).to_owned(), (*path).to_owned()))
            }
            _ => None,
        };
        let Some(key) = entry else {
            out.push_str(raw);
            out.push('\n');
            continue;
        };
        let found = counts.get(&key).copied().unwrap_or(0);
        let max: usize = fields[2].parse().unwrap_or(0);
        if found == 0 {
            continue; // stale entry: drop the line
        }
        if found >= max {
            out.push_str(raw);
            out.push('\n');
            continue;
        }
        // Replace the MAX field in place, preserving everything else.
        let mut rebuilt = String::new();
        let mut replaced = false;
        let mut rest = raw;
        for (fi, field) in fields.iter().enumerate() {
            let at = rest.find(field).unwrap_or(0);
            rebuilt.push_str(&rest[..at]);
            if fi == 2 && !replaced {
                rebuilt.push_str(&found.to_string());
                replaced = true;
            } else {
                rebuilt.push_str(field);
            }
            rest = &rest[at + field.len()..];
        }
        rebuilt.push_str(rest);
        out.push_str(&rebuilt);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, line: u32) -> Violation {
        Violation::new(rule, path, line, "m".to_owned())
    }

    #[test]
    fn parse_accepts_comments_and_rejects_junk() {
        let allow = parse("# header\nD4 crates/x/src/a.rs 3 # audited\n\n").unwrap();
        assert_eq!(allow.entries.len(), 1);
        assert_eq!(allow.entries[0].max, 3);
        assert!(parse("D9 p 1").is_err());
        assert!(parse("D4 p notanumber").is_err());
        assert!(parse("D4 p").is_err());
    }

    #[test]
    fn parse_boundaries_and_justification_requirements() {
        let allow = parse(
            "boundary crates/matrix/src/parallel.rs par_map_rows # deterministic join\n\
             D6 crates/core/src/pipeline.rs 17 # timings only\n",
        )
        .unwrap();
        assert_eq!(allow.boundaries.len(), 1);
        assert_eq!(allow.boundaries[0].func, "par_map_rows");
        assert_eq!(allow.entries[0].rule, "D6");
        // D6–D8 allowances and boundaries without a justification fail.
        assert!(parse("D6 crates/core/src/pipeline.rs 17").is_err());
        assert!(parse("D7 crates/matrix 40").is_err());
        assert!(parse("D8 crates/core/src/x.rs 1").is_err());
        assert!(parse("boundary p f").is_err());
        assert!(parse("boundary p").is_err());
        // D1–D5 entries keep working without (legacy ratchet format).
        assert!(parse("D4 p 1").is_ok());
    }

    #[test]
    fn apply_ratchets() {
        let allow = parse("D4 a.rs 2\nD2 b.rs 1\nD5 stale.rs 4").unwrap();
        let vs = vec![
            v("D4", "a.rs", 1),
            v("D4", "a.rs", 9),
            v("D2", "b.rs", 3),
            v("D2", "b.rs", 7), // exceeds allowance of 1
            v("D1", "c.rs", 2), // no entry
        ];
        let filtered = apply(vs, &allow.entries);
        // a.rs fits; b.rs exceeds (both reported); c.rs unlisted.
        assert_eq!(filtered.violations.len(), 3);
        assert!(filtered.violations.iter().any(|x| x.path == "c.rs"));
        assert!(filtered
            .violations
            .iter()
            .filter(|x| x.path == "b.rs")
            .all(|x| x.msg.contains("ratchet")));
        assert!(filtered.warnings.iter().any(|w| w.contains("stale")));
    }

    #[test]
    fn tighten_preserves_structure_and_ratchets_down() {
        let text = "# header comment\n\
                    D4 a.rs 5  # five audited sites\n\
                    D4 gone.rs 2  # all fixed now\n\
                    D2 b.rs 1  # exact\n\
                    boundary p.rs f  # audited join\n";
        let vs = vec![v("D4", "a.rs", 1), v("D4", "a.rs", 2), v("D2", "b.rs", 3)];
        let got = tighten(text, &group_counts(&vs));
        assert!(got.contains("# header comment"));
        assert!(got.contains("D4 a.rs 2  # five audited sites"));
        assert!(!got.contains("gone.rs"), "stale entry dropped: {got}");
        assert!(got.contains("D2 b.rs 1  # exact"));
        assert!(got.contains("boundary p.rs f  # audited join"));
        // Over-allowance counts are never written by the fixer.
        let over = tighten(
            "D2 b.rs 1\n",
            &group_counts(&[v("D2", "b.rs", 1), v("D2", "b.rs", 2)]),
        );
        assert!(over.contains("D2 b.rs 1"));
    }
}
