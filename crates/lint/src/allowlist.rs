//! The audited-exception allowlist.
//!
//! Format (one entry per line, `#` comments):
//!
//! ```text
//! RULE  PATH  MAX  # why this is sound
//! D2    crates/matrix/src/signature.rs  2  # buckets sorted before exposure
//! ```
//!
//! `MAX` is a ratchet: the file may carry at most that many violations
//! of the rule. Growing past the allowance fails the lint, so audited
//! debt can shrink but never silently grow. Entries with slack (fewer
//! violations than allowed) are reported as warnings so the allowance
//! can be tightened.

use std::collections::BTreeMap;

use crate::rules::Violation;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule code (`D1`..`D5`).
    pub rule: String,
    /// Workspace-relative path the allowance applies to.
    pub path: String,
    /// Maximum violations of `rule` allowed in `path`.
    pub max: usize,
}

/// Parses allowlist text.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [rule, path, max] = fields.as_slice() else {
            return Err(format!(
                "allowlist line {}: expected `RULE PATH MAX`, got {raw:?}",
                idx + 1
            ));
        };
        if !matches!(*rule, "D1" | "D2" | "D3" | "D4" | "D5") {
            return Err(format!("allowlist line {}: unknown rule {rule:?}", idx + 1));
        }
        let max: usize = max
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count {max:?}", idx + 1))?;
        entries.push(Entry {
            rule: (*rule).to_owned(),
            path: (*path).to_owned(),
            max,
        });
    }
    Ok(entries)
}

/// Result of filtering violations through the allowlist.
#[derive(Debug, Default)]
pub struct Filtered {
    /// Violations that remain actionable (not covered by an allowance,
    /// or in excess of one).
    pub violations: Vec<Violation>,
    /// Non-fatal notes: slack or stale allowances worth tightening.
    pub warnings: Vec<String>,
}

/// Applies the allowlist: groups violations by `(rule, path)` and
/// suppresses groups whose count fits the allowance.
pub fn apply(violations: Vec<Violation>, entries: &[Entry]) -> Filtered {
    let mut allowance: BTreeMap<(String, String), usize> = BTreeMap::new();
    for e in entries {
        allowance.insert((e.rule.clone(), e.path.clone()), e.max);
    }
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in &violations {
        *counts
            .entry((v.rule.to_owned(), v.path.clone()))
            .or_default() += 1;
    }
    let mut out = Filtered::default();
    for v in violations {
        let key = (v.rule.to_owned(), v.path.clone());
        let found = counts[&key];
        match allowance.get(&key) {
            Some(&max) if found <= max => {} // audited, within ratchet
            Some(&max) => {
                out.violations.push(Violation {
                    msg: format!(
                        "{} [{found} found, allowance is {max} — the ratchet only goes down]",
                        v.msg
                    ),
                    ..v
                });
            }
            None => out.violations.push(v),
        }
    }
    for (key @ (rule, path), &max) in &allowance {
        let found = counts.get(key).copied().unwrap_or(0);
        if found == 0 {
            out.warnings.push(format!(
                "allowlist: stale entry {rule} {path} (no violations left; remove it)"
            ));
        } else if found < max {
            out.warnings.push(format!(
                "allowlist: slack for {rule} {path} ({found} found < {max} allowed; tighten to {found})"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, line: u32) -> Violation {
        Violation {
            rule,
            path: path.to_owned(),
            line,
            msg: "m".to_owned(),
        }
    }

    #[test]
    fn parse_accepts_comments_and_rejects_junk() {
        let entries = parse("# header\nD4 crates/x/src/a.rs 3 # audited\n\n").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].max, 3);
        assert!(parse("D9 p 1").is_err());
        assert!(parse("D4 p notanumber").is_err());
        assert!(parse("D4 p").is_err());
    }

    #[test]
    fn apply_ratchets() {
        let entries = parse("D4 a.rs 2\nD2 b.rs 1\nD5 stale.rs 4").unwrap();
        let vs = vec![
            v("D4", "a.rs", 1),
            v("D4", "a.rs", 9),
            v("D2", "b.rs", 3),
            v("D2", "b.rs", 7), // exceeds allowance of 1
            v("D1", "c.rs", 2), // no entry
        ];
        let filtered = apply(vs, &entries);
        // a.rs fits; b.rs exceeds (both reported); c.rs unlisted.
        assert_eq!(filtered.violations.len(), 3);
        assert!(filtered.violations.iter().any(|x| x.path == "c.rs"));
        assert!(filtered
            .violations
            .iter()
            .filter(|x| x.path == "b.rs")
            .all(|x| x.msg.contains("ratchet")));
        assert!(filtered.warnings.iter().any(|w| w.contains("stale")));
    }
}
