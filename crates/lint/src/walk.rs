//! Deterministic workspace file discovery.

use std::fs;
use std::path::{Path, PathBuf};

/// Collects every lintable `.rs` file under the workspace root, as
/// sorted workspace-relative paths with `/` separators.
///
/// Scope: the root crate's `src/`, and each `crates/*/{src,tests,benches}`.
/// Vendored crates and the lint self-test fixtures are excluded (the
/// classifier in [`crate::rules::classify`] re-checks this, so a stray
/// file cannot sneak in through either layer alone).
///
/// # Errors
///
/// Returns a message naming the directory that could not be read.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    if root.join("src").is_dir() {
        dirs.push(root.join("src"));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in read_dir_sorted(&crates_dir)? {
            if entry.is_dir() {
                for sub in ["src", "tests", "benches"] {
                    let d = entry.join(sub);
                    if d.is_dir() {
                        dirs.push(d);
                    }
                }
            }
        }
    }
    let mut files = Vec::new();
    for dir in dirs {
        collect_rs(&dir, &mut files)?;
    }
    let mut rels: Vec<String> = files
        .into_iter()
        .filter_map(|p| {
            let rel = p.strip_prefix(root).ok()?;
            let rel: Vec<String> = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect();
            Some(rel.join("/"))
        })
        .filter(|rel| !rel.starts_with("crates/lint/tests/fixtures/"))
        .collect();
    rels.sort();
    Ok(rels)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
