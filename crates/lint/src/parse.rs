//! A lightweight item parser over the token stream of [`crate::lexer`].
//!
//! Recovers the item structure the interprocedural rules need — `mod`
//! nesting, `use` imports, type aliases, `static` items, `impl`/`trait`
//! blocks, and `fn` items with their body token ranges — without parsing
//! Rust for real. The contract mirrors the lexer's: *sound for the
//! workspace's own sources*, conservative everywhere else. Constructs
//! the parser does not model (macro definitions, exotic type paths)
//! degrade into over-approximation in [`crate::graph`], never silence.
//!
//! Two deliberate simplifications:
//!
//! * fn bodies are treated as opaque token ranges — nested `fn` items
//!   and closures stay part of the enclosing body, so any call they
//!   make is attributed to the enclosing fn (an over-approximation of
//!   "may call", which is the sound direction for deny-lints);
//! * visibility is binary: `pub` with no restriction is public,
//!   everything else (`pub(crate)`, `pub(super)`, private) is not.

use crate::lexer::Token;

/// One `fn` item (free fn, inherent/trait method, or trait default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The fn's identifier.
    pub name: String,
    /// Enclosing `impl`/`trait` type name (last path segment), or
    /// `None` for free fns.
    pub self_type: Option<String>,
    /// `pub` with no restriction.
    pub is_pub: bool,
    /// Inside a `#[test]`/`#[cfg(test)]`-marked region.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body including its braces, or `None`
    /// for bodiless trait method declarations.
    pub body: Option<(usize, usize)>,
}

/// One flattened `use` binding: `alias` is the local name, `path` the
/// full segment list (globs are recorded with a final `*` segment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// The name this import binds locally.
    pub alias: String,
    /// Full path segments, e.g. `["std", "collections", "HashMap"]`.
    pub path: Vec<String>,
}

/// A `type Alias = Target;` item (generics stripped, target reduced to
/// its last path segment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeAlias {
    /// The alias name.
    pub alias: String,
    /// Last segment of the aliased type path.
    pub target: String,
}

/// Everything the parser recovers from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// All fn items, in source order (including nested-in-nothing
    /// trait declarations; bodies of nested fns belong to their
    /// enclosing fn).
    pub fns: Vec<FnItem>,
    /// Flattened `use` imports.
    pub uses: Vec<UseImport>,
    /// `type` aliases (item-level and associated).
    pub aliases: Vec<TypeAlias>,
    /// Names with an `impl` block in this file.
    pub impl_types: Vec<String>,
    /// Names declared as `trait` in this file.
    pub traits: Vec<String>,
    /// Names of `static` items (mutable global state candidates).
    pub statics: Vec<String>,
}

/// Keywords that can sit between a visibility modifier and `fn`.
const FN_MODIFIERS: &[&str] = &["const", "async", "unsafe", "extern"];

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "union"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

/// Is `s` a keyword that can never be a call/fn name? (Re-exported for
/// the call scanner in [`crate::graph`].)
pub fn reserved_word(s: &str) -> bool {
    is_keyword(s)
}

/// Returns the index just past the delimiter-balanced region opening at
/// `open` (which must hold the opening token). Balances only the given
/// pair, so it is safe for `<...>` generics where each `>` is a
/// separate token.
fn skip_balanced(tokens: &[Token], open: usize, open_ch: &str, close_ch: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if !t.ident {
            if t.text == open_ch {
                depth += 1;
            } else if t.text == close_ch {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        }
        i += 1;
    }
    i
}

/// One entry of the parser's scope stack: a named block (impl, trait)
/// whose closing brace restores the previous self-type context.
struct Scope {
    /// Brace depth *after* this scope's opening `{`.
    open_depth: usize,
    /// `impl`/`trait` type name, or `None` for `mod` blocks.
    self_type: Option<String>,
}

/// Parses one file's token stream.
pub fn parse_file(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if !t.ident {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    if scopes.last().is_some_and(|s| s.open_depth == depth) {
                        scopes.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        // Macro definition or invocation at item position: skip the
        // whole delimited body so its tokens can't fake items.
        if tokens.get(i + 1).is_some_and(|n| !n.ident && n.text == "!") {
            i = skip_macro(tokens, i);
            continue;
        }
        match t.text.as_str() {
            "fn" => i = parse_fn(tokens, i, &mut out, &scopes),
            "impl" => {
                let (next, name) = parse_impl_header(tokens, i);
                if let Some(name) = name {
                    if !out.impl_types.contains(&name) {
                        out.impl_types.push(name.clone());
                    }
                    // `next` points at the opening `{` (or past a
                    // degenerate header); register the scope the brace
                    // will open.
                    scopes.push(Scope {
                        open_depth: depth + 1,
                        self_type: Some(name),
                    });
                }
                i = next;
            }
            "trait" => {
                if let Some(name_tok) = tokens.get(i + 1).filter(|n| n.ident) {
                    let name = name_tok.text.clone();
                    if !out.traits.contains(&name) {
                        out.traits.push(name.clone());
                    }
                    scopes.push(Scope {
                        open_depth: depth + 1,
                        self_type: Some(name),
                    });
                    i = seek_brace(tokens, i + 2);
                } else {
                    i += 1;
                }
            }
            "use" => {
                let (next, mut imports) = parse_use(tokens, i + 1);
                out.uses.append(&mut imports);
                i = next;
            }
            "type" => {
                i = parse_type_alias(tokens, i, &mut out);
            }
            "static" => {
                // `static NAME: Ty = ...;` (skip an optional `mut`,
                // which D3 forbids anyway but the parser stays honest).
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|n| n.ident && n.text == "mut") {
                    j += 1;
                }
                if let Some(name_tok) = tokens.get(j).filter(|n| n.ident) {
                    out.statics.push(name_tok.text.clone());
                }
                i = j + 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Skips a macro definition/invocation starting at the macro name;
/// returns the index after its delimited body (or after `!` when no
/// delimiter follows, e.g. `assert!` inside an expression context we
/// were never meant to see here).
fn skip_macro(tokens: &[Token], name_idx: usize) -> usize {
    // `macro_rules! name { ... }` has one extra ident before the body.
    let mut j = name_idx + 2;
    if tokens[name_idx].text == "macro_rules" && tokens.get(j).is_some_and(|n| n.ident) {
        j += 1;
    }
    match tokens.get(j).map(|n| n.text.as_str()) {
        Some("{") => skip_balanced(tokens, j, "{", "}"),
        Some("(") => skip_balanced(tokens, j, "(", ")"),
        Some("[") => skip_balanced(tokens, j, "[", "]"),
        _ => j,
    }
}

/// Advances to just past the next `{` at the current nesting level
/// (entering the block), used for trait/impl headers with bounds and
/// `where` clauses. Parens and brackets are balanced over.
fn seek_brace(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len() {
        let t = &tokens[i];
        if !t.ident {
            match t.text.as_str() {
                "{" => return i, // caller's main loop will push depth
                "(" => {
                    i = skip_balanced(tokens, i, "(", ")");
                    continue;
                }
                "[" => {
                    i = skip_balanced(tokens, i, "[", "]");
                    continue;
                }
                ";" => return i + 1, // bodiless (e.g. `impl Foo;` never, but stay safe)
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses an `impl` header starting at the `impl` token. Returns
/// `(index of the opening brace, self-type name)`.
fn parse_impl_header(tokens: &[Token], impl_idx: usize) -> (usize, Option<String>) {
    let mut i = impl_idx + 1;
    // Generic parameters.
    if tokens.get(i).is_some_and(|t| !t.ident && t.text == "<") {
        i = skip_balanced(tokens, i, "<", ">");
    }
    // First type path (the trait in `impl Trait for Type`, or the type).
    let (next, first) = parse_type_path(tokens, i);
    i = next;
    let mut name = first;
    if tokens.get(i).is_some_and(|t| t.ident && t.text == "for") {
        let (next, second) = parse_type_path(tokens, i + 1);
        i = next;
        name = second;
    }
    (seek_brace(tokens, i), name)
}

/// Parses a type path (`a::b::Name<...>` with leading `&`/`mut`/`dyn`),
/// returning the index after it and the last ident segment.
fn parse_type_path(tokens: &[Token], mut i: usize) -> (usize, Option<String>) {
    let mut last: Option<String> = None;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.ident {
            match t.text.as_str() {
                "for" | "where" => break,
                "mut" | "dyn" => i += 1,
                _ => {
                    last = Some(t.text.clone());
                    i += 1;
                }
            }
        } else {
            match t.text.as_str() {
                ":" | "&" => i += 1,
                "<" => i = skip_balanced(tokens, i, "<", ">"),
                "(" => i = skip_balanced(tokens, i, "(", ")"), // fn-pointer / tuple types
                _ => break,
            }
        }
    }
    (i, last)
}

/// Parses one `fn` item starting at the `fn` keyword; records it and
/// returns the index just past its body (or its `;`).
fn parse_fn(tokens: &[Token], fn_idx: usize, out: &mut ParsedFile, scopes: &[Scope]) -> usize {
    let Some(name_tok) = tokens.get(fn_idx + 1).filter(|n| n.ident) else {
        return fn_idx + 1;
    };
    // Visibility: walk back over fn modifiers to an unrestricted `pub`.
    let mut j = fn_idx;
    while j > 0 && FN_MODIFIERS.contains(&tokens[j - 1].text.as_str()) {
        j -= 1;
    }
    let is_pub = j > 0
        && tokens[j - 1].ident
        && tokens[j - 1].text == "pub"
        && tokens.get(j).is_some_and(|t| t.text != "(");
    // Signature: scan to the body `{` or a bodiless `;`, balancing
    // parens/brackets (generics hold no braces; `where` clauses hold no
    // parens at depth 0 that matter).
    let mut i = fn_idx + 2;
    let mut body = None;
    while i < tokens.len() {
        let t = &tokens[i];
        if !t.ident {
            match t.text.as_str() {
                "(" => {
                    i = skip_balanced(tokens, i, "(", ")");
                    continue;
                }
                "{" => {
                    let end = skip_balanced(tokens, i, "{", "}");
                    body = Some((i, end));
                    i = end;
                    break;
                }
                ";" => {
                    i += 1;
                    break;
                }
                _ => {}
            }
        }
        i += 1;
    }
    let self_type = scopes.iter().rev().find_map(|s| s.self_type.clone());
    out.fns.push(FnItem {
        name: name_tok.text.clone(),
        self_type,
        is_pub,
        is_test: tokens[fn_idx].in_test,
        line: tokens[fn_idx].line,
        body,
    });
    i
}

/// Parses a `type Alias<..> = Target;` item starting at `type`.
fn parse_type_alias(tokens: &[Token], type_idx: usize, out: &mut ParsedFile) -> usize {
    let Some(name_tok) = tokens.get(type_idx + 1).filter(|n| n.ident) else {
        return type_idx + 1;
    };
    let mut i = type_idx + 2;
    if tokens.get(i).is_some_and(|t| !t.ident && t.text == "<") {
        i = skip_balanced(tokens, i, "<", ">");
    }
    if !tokens.get(i).is_some_and(|t| !t.ident && t.text == "=") {
        // Associated type declaration (`type Item;`) or bounds: skip to `;`.
        while i < tokens.len() && tokens[i].text != ";" {
            i += 1;
        }
        return i + 1;
    }
    let (next, target) = parse_type_path(tokens, i + 1);
    if let Some(target) = target {
        out.aliases.push(TypeAlias {
            alias: name_tok.text.clone(),
            target,
        });
    }
    // To `;`.
    let mut i = next;
    while i < tokens.len() && tokens[i].text != ";" {
        i += 1;
    }
    i + 1
}

/// Parses a use tree after the `use` keyword; returns the index after
/// the terminating `;` and the flattened imports.
fn parse_use(tokens: &[Token], start: usize) -> (usize, Vec<UseImport>) {
    let mut imports = Vec::new();
    let end = parse_use_tree(tokens, start, &mut Vec::new(), &mut imports);
    // Consume a trailing `;` if present.
    let end = if tokens.get(end).is_some_and(|t| t.text == ";") {
        end + 1
    } else {
        end
    };
    (end, imports)
}

/// Recursive use-tree walk, accumulating the current path prefix.
fn parse_use_tree(
    tokens: &[Token],
    mut i: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseImport>,
) -> usize {
    let base_len = prefix.len();
    while i < tokens.len() {
        let t = &tokens[i];
        if t.ident {
            if t.text == "as" {
                // `path as alias`
                if let Some(alias) = tokens.get(i + 1).filter(|n| n.ident) {
                    out.push(UseImport {
                        alias: alias.text.clone(),
                        path: prefix.clone(),
                    });
                    prefix.truncate(base_len);
                    i += 2;
                    // The segment was emitted under its alias; eat a
                    // separator if the caller is a group.
                    continue;
                }
                i += 1;
                continue;
            }
            prefix.push(t.text.clone());
            i += 1;
            continue;
        }
        match t.text.as_str() {
            ":" => i += 1,
            "*" => {
                prefix.push("*".to_owned());
                emit_leaf(prefix, out, base_len);
                i += 1;
            }
            "{" => {
                i += 1;
                loop {
                    i = parse_use_tree(tokens, i, prefix, out);
                    match tokens.get(i).map(|t| t.text.as_str()) {
                        Some(",") => i += 1,
                        Some("}") => {
                            i += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                prefix.truncate(base_len);
                return i;
            }
            "," | "}" | ";" => {
                emit_leaf(prefix, out, base_len);
                return i;
            }
            _ => i += 1,
        }
    }
    emit_leaf(prefix, out, base_len);
    i
}

/// Emits the accumulated path as an import named after its last
/// segment, then restores the prefix for the caller.
fn emit_leaf(prefix: &mut Vec<String>, out: &mut Vec<UseImport>, base_len: usize) {
    if prefix.len() > base_len {
        if let Some(last) = prefix.last().filter(|s| s.as_str() != "*") {
            out.push(UseImport {
                alias: last.clone(),
                path: prefix.clone(),
            });
        }
        prefix.truncate(base_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&tokenize(src))
    }

    #[test]
    fn free_and_method_fns() {
        let p = parse(
            "pub fn free(x: u32) -> u32 { x }\n\
             struct S;\n\
             impl S { pub fn m(&self) {} fn private(&self) {} }\n\
             impl Clone for S { fn clone(&self) -> S { S } }",
        );
        assert_eq!(p.fns.len(), 4);
        assert_eq!(p.fns[0].name, "free");
        assert!(p.fns[0].is_pub);
        assert_eq!(p.fns[0].self_type, None);
        assert_eq!(p.fns[1].self_type.as_deref(), Some("S"));
        assert!(p.fns[1].is_pub);
        assert!(!p.fns[2].is_pub);
        // `impl Clone for S` attributes methods to S.
        assert_eq!(p.fns[3].self_type.as_deref(), Some("S"));
        assert_eq!(p.impl_types, ["S"]);
    }

    #[test]
    fn pub_crate_is_not_public() {
        let p = parse("pub(crate) fn a() {} pub const fn b() {} pub async fn c() {}");
        assert!(!p.fns[0].is_pub);
        assert!(p.fns[1].is_pub);
        assert!(p.fns[2].is_pub);
    }

    #[test]
    fn bodies_are_token_ranges() {
        let src = "fn outer() { inner(); helper(1, 2); }";
        let toks = tokenize(src);
        let p = parse_file(&toks);
        let (a, b) = p.fns[0].body.expect("has body");
        let names: Vec<&str> = toks[a..b]
            .iter()
            .filter(|t| t.ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, ["inner", "helper"]);
    }

    #[test]
    fn generics_and_impl_trait_do_not_confuse_body_detection() {
        let p = parse(
            "fn f<T: Iterator<Item = u32>>(it: T) -> impl Iterator<Item = u32> where T: Clone { it }\n\
             fn g() {}",
        );
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].body.is_some());
        assert_eq!(p.fns[1].name, "g");
    }

    #[test]
    fn trait_decls_and_defaults() {
        let p = parse("trait T { fn decl(&self); fn dflt(&self) { self.decl() } }");
        assert_eq!(p.traits, ["T"]);
        assert_eq!(p.fns[0].body, None);
        assert!(p.fns[1].body.is_some());
        assert_eq!(p.fns[0].self_type.as_deref(), Some("T"));
    }

    #[test]
    fn impl_generic_header() {
        let p = parse("impl<'a, T: Clone> Wrapper<'a, T> { fn get(&self) {} }");
        assert_eq!(p.impl_types, ["Wrapper"]);
        assert_eq!(p.fns[0].self_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn use_imports_flatten_groups_and_aliases() {
        let p = parse(
            "use std::collections::{BTreeMap, HashMap as Map};\n\
             use crate::graph::CallGraph;\n\
             use rolediet_matrix::parallel::*;",
        );
        let find = |alias: &str| {
            p.uses
                .iter()
                .find(|u| u.alias == alias)
                .unwrap_or_else(|| panic!("alias {alias} in {:?}", p.uses))
        };
        assert_eq!(find("BTreeMap").path, ["std", "collections", "BTreeMap"]);
        assert_eq!(find("Map").path, ["std", "collections", "HashMap"]);
        assert_eq!(find("CallGraph").path, ["crate", "graph", "CallGraph"]);
    }

    #[test]
    fn type_aliases_and_statics() {
        let p = parse(
            "type Rows = crate::sparse::CsrMatrix;\n\
             static TABLE: [u32; 4] = [0; 4];\n\
             fn f() {}",
        );
        assert_eq!(p.aliases[0].alias, "Rows");
        assert_eq!(p.aliases[0].target, "CsrMatrix");
        assert_eq!(p.statics, ["TABLE"]);
    }

    #[test]
    fn macro_rules_bodies_cannot_fake_items() {
        let p = parse(
            "macro_rules! fake { () => { fn not_an_item() {} }; }\n\
             fn real() {}",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn test_attributes_mark_fns() {
        let p = parse("#[cfg(test)]\nmod tests { fn helper() {} }\nfn live() {}");
        assert!(p.fns[0].is_test);
        assert!(!p.fns[1].is_test);
    }

    #[test]
    fn raw_string_bodies_cannot_fake_items() {
        let p = parse("fn real() { let s = r#\"fn fake() {}\"#; }");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn nested_fn_stays_inside_enclosing_body() {
        let src = "fn outer() { fn inner() { probe(); } inner(); }";
        let toks = tokenize(src);
        let p = parse_file(&toks);
        // The nested fn is not a separate item; its tokens belong to
        // outer's body (over-approximation documented in the module).
        assert_eq!(p.fns.len(), 1);
        let (a, b) = p.fns[0].body.expect("body");
        assert!(toks[a..b].iter().any(|t| t.text == "probe"));
    }
}
