//! A minimal Rust lexer for lint scanning.
//!
//! Produces identifier and punctuation tokens with line numbers, after
//! discarding comments (line, nested block), string literals (plain,
//! raw, byte), character literals, and lifetimes. A post-pass marks
//! tokens that belong to test-only items — any item under an outer
//! attribute whose tokens mention `test` outside a `not(..)`, which
//! covers `#[test]`, `#[cfg(test)]`, and `#[cfg(any(test, ...))]` — so
//! rules can exempt test code without parsing Rust for real.
//!
//! This is deliberately not a full lexer: it only needs to be sound for
//! the token patterns the rules in [`crate::rules`] look for, on the
//! workspace's own sources.

/// One scanned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Identifier text, or a single punctuation character.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// `true` for identifiers and keywords, `false` for punctuation.
    pub ident: bool,
    /// `true` when the token sits inside a test-marked item.
    pub in_test: bool,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Consumes until after the terminator of a plain string/char literal.
    fn eat_quoted(&mut self, quote: char) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                c if c == quote => return,
                _ => {}
            }
        }
    }

    /// Consumes a raw string body: `"` already seen, `hashes` trailing
    /// `#`s close it.
    fn eat_raw_string(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0;
                while seen < hashes && self.peek() == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
        }
    }

    /// Consumes a (possibly nested) block comment, `/*` already seen.
    fn eat_block_comment(&mut self) {
        let mut depth = 1usize;
        while let Some(c) = self.bump() {
            if c == '*' && self.peek() == Some('/') {
                self.bump();
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else if c == '/' && self.peek() == Some('*') {
                self.bump();
                depth += 1;
            }
        }
    }
}

/// Lexes `src` into tokens; comments, literals, and lifetimes are gone.
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let line = cur.line;
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' {
            cur.bump();
            match cur.peek() {
                Some('/') => {
                    while let Some(n) = cur.peek() {
                        if n == '\n' {
                            break;
                        }
                        cur.bump();
                    }
                }
                Some('*') => {
                    cur.bump();
                    cur.eat_block_comment();
                }
                _ => out.push(punct('/', line)),
            }
            continue;
        }
        if c == '"' {
            cur.bump();
            cur.eat_quoted('"');
            continue;
        }
        if c == '\'' {
            cur.bump();
            // Lifetime (`'a`) or char literal (`'a'`, `'\n'`). A
            // lifetime is an identifier not followed by a closing quote.
            match cur.peek() {
                Some(n) if is_ident_start(n) => {
                    let mut name = String::new();
                    while let Some(k) = cur.peek() {
                        if is_ident_continue(k) {
                            name.push(k);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    if name.chars().count() == 1 && cur.peek() == Some('\'') {
                        cur.bump(); // char literal like 'a'
                    }
                }
                _ => cur.eat_quoted('\''),
            }
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(n) = cur.peek() {
                if is_ident_continue(n) {
                    text.push(n);
                    cur.bump();
                } else {
                    break;
                }
            }
            // Raw/byte string prefixes swallow the literal that follows.
            if matches!(text.as_str(), "r" | "br") {
                let mut hashes = 0usize;
                while cur.peek() == Some('#') {
                    cur.bump();
                    hashes += 1;
                }
                if cur.peek() == Some('"') {
                    cur.bump();
                    cur.eat_raw_string(hashes);
                    continue;
                }
                // `r#ident` raw identifier: emit the identifier itself.
                if hashes == 1 {
                    if let Some(n) = cur.peek() {
                        if is_ident_start(n) {
                            continue; // next loop turn lexes the identifier
                        }
                    }
                }
                if hashes > 0 {
                    // Lone `#`s we consumed; they cannot matter to rules.
                    continue;
                }
            }
            if text == "b" && cur.peek() == Some('"') {
                cur.bump();
                cur.eat_quoted('"');
                continue;
            }
            out.push(Token {
                text,
                line,
                ident: true,
                in_test: false,
            });
            continue;
        }
        cur.bump();
        out.push(punct(c, line));
    }
    mark_test_regions(&mut out);
    out
}

fn punct(c: char, line: u32) -> Token {
    Token {
        text: c.to_string(),
        line,
        ident: false,
        in_test: false,
    }
}

/// Marks tokens of items guarded by test-only outer attributes.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0;
    let mut pending_test = false;
    while i < tokens.len() {
        if tokens[i].text == "#" && !tokens[i].ident {
            // Inner attribute `#![..]`: skip without test inference.
            let inner = tokens.get(i + 1).is_some_and(|t| t.text == "!");
            let open = if inner { i + 2 } else { i + 1 };
            if tokens.get(open).is_some_and(|t| t.text == "[") {
                let (end, is_test) = scan_attribute(tokens, open);
                if !inner && is_test {
                    pending_test = true;
                }
                i = end;
                continue;
            }
            i += 1;
            continue;
        }
        if pending_test {
            i = mark_item(tokens, i);
            pending_test = false;
            continue;
        }
        i += 1;
    }
}

/// Scans a bracket-balanced attribute starting at the `[` at `open`.
/// Returns (index after the closing `]`, whether it marks test code).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.text.as_str() {
            "[" if !t.ident => depth += 1,
            "]" if !t.ident => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, has_test && !has_not);
                }
            }
            "test" if t.ident => has_test = true,
            "not" if t.ident => has_not = true,
            _ => {}
        }
        j += 1;
    }
    (j, false)
}

/// Marks one item starting at `start` as test code; returns the index
/// just past it. An item ends at a top-level `;` (no body) or at the
/// close of its first top-level brace block.
fn mark_item(tokens: &mut [Token], start: usize) -> usize {
    let mut brace_depth = 0usize;
    let mut bracket_depth = 0usize;
    let mut saw_brace = false;
    let mut j = start;
    while j < tokens.len() {
        tokens[j].in_test = true;
        let text = tokens[j].text.clone();
        let ident = tokens[j].ident;
        if !ident {
            match text.as_str() {
                "{" => {
                    brace_depth += 1;
                    saw_brace = true;
                }
                "}" => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if brace_depth == 0 && saw_brace {
                        return j + 1;
                    }
                }
                "[" | "(" => bracket_depth += 1,
                "]" | ")" => bracket_depth = bracket_depth.saturating_sub(1),
                ";" if brace_depth == 0 && bracket_depth == 0 && !saw_brace => {
                    return j + 1;
                }
                _ => {}
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter(|t| t.ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let toks = tokenize(
            "// HashMap in a comment\nlet x = \"HashMap\"; /* HashSet */ let y = r#\"Instant\"#;",
        );
        let ids = idents(&toks);
        assert!(ids.contains(&"let"));
        assert!(!ids.contains(&"HashMap"));
        assert!(!ids.contains(&"HashSet"));
        assert!(!ids.contains(&"Instant"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> Vec<Token> { unwrap() }");
        let ids = idents(&toks);
        assert!(ids.contains(&"unwrap"));
        assert!(!ids.contains(&"a"));
    }

    #[test]
    fn char_literals_with_escapes() {
        let toks = tokenize("let q = '\\''; let b = '{'; spawn()");
        assert!(idents(&toks).contains(&"spawn"));
        assert!(!toks.iter().any(|t| t.text == "{"));
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src =
            "fn lib() { a(); }\n#[cfg(test)]\nmod tests { fn t() { b(); } }\nfn tail() { c(); }";
        let toks = tokenize(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).expect(name);
        assert!(!find("a").in_test);
        assert!(find("b").in_test);
        assert!(!find("c").in_test);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let toks = tokenize("#[cfg(not(test))]\nfn live() { hot(); }");
        assert!(!toks.iter().find(|t| t.text == "hot").unwrap().in_test);
    }

    #[test]
    fn test_attribute_skips_semicolon_items() {
        let toks = tokenize("#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { go(); }");
        assert!(toks.iter().find(|t| t.text == "HashMap").unwrap().in_test);
        assert!(!toks.iter().find(|t| t.text == "go").unwrap().in_test);
    }

    #[test]
    fn stacked_attributes_keep_pending() {
        let toks = tokenize("#[test]\n#[ignore]\nfn t() { probe(); }");
        assert!(toks.iter().find(|t| t.text == "probe").unwrap().in_test);
    }

    #[test]
    fn any_test_feature_is_marked() {
        let toks = tokenize("#[cfg(any(test, feature = \"audit\"))]\nfn gated() { g(); }");
        assert!(toks.iter().find(|t| t.text == "g").unwrap().in_test);
    }

    #[test]
    fn raw_identifier_is_lexed() {
        let toks = tokenize("let r#type = 1; thread()");
        assert!(idents(&toks).contains(&"type"));
        assert!(idents(&toks).contains(&"thread"));
    }
}
