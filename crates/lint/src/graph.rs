//! Workspace symbol table and conservative call graph.
//!
//! Built from the per-file output of [`crate::parse`], the graph
//! resolves three call shapes, all *over-approximating* — a call site
//! may gain edges to fns it can never reach, but a real workspace
//! callee is never dropped (the property the fixture tests pin):
//!
//! * **free calls** `foo(..)` and bare fn references `map(foo)` — every
//!   free fn named `foo` anywhere in the workspace;
//! * **path calls** `Type::method(..)` / `Trait::method(..)` and path
//!   references `map(Type::method)` — exact `(type, method)` matches
//!   when the qualifier names a workspace type, every method named
//!   `method` when the qualifier is a workspace trait or a
//!   single-letter generic parameter, and nothing when the qualifier is
//!   an external (std/vendored) type;
//! * **receiver calls** `.method(..)` — every method named `method` on
//!   any workspace type (name-based, the big over-approximation).
//!
//! `use`-aliases and `type` aliases are resolved per file before the
//! qualifier is classified, and `Self::` resolves to the enclosing
//! impl's type. Closures and nested fns are part of the enclosing fn's
//! body (see [`crate::parse`]), so their calls are attributed to the
//! enclosing fn — again the sound direction for reachability lints.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{tokenize, Token};
use crate::parse::{parse_file, reserved_word, ParsedFile};
use crate::rules::FileClass;

/// One analyzed file: classification, token stream, parsed items.
#[derive(Debug)]
pub struct FileUnit {
    /// Where the file sits in the workspace.
    pub class: FileClass,
    /// Its token stream (comments/strings already stripped).
    pub tokens: Vec<Token>,
    /// Parsed item structure.
    pub parsed: ParsedFile,
}

/// One fn node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// The fn's identifier.
    pub name: String,
    /// Enclosing impl/trait type, or `None` for free fns.
    pub self_type: Option<String>,
    /// `pub` with no restriction.
    pub is_pub: bool,
    /// Defined inside a test-marked region.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range in the defining file's stream.
    pub body: Option<(usize, usize)>,
}

/// Builder namespace for assembling a [`CallGraph`] from raw sources.
pub struct Workspace;

impl Workspace {
    /// Tokenizes, parses, and links `sources` (workspace-relative
    /// class + file contents) into a call graph.
    pub fn build(sources: Vec<(FileClass, String)>) -> CallGraph {
        let files: Vec<FileUnit> = sources
            .into_iter()
            .map(|(class, src)| {
                let tokens = tokenize(&src);
                let parsed = parse_file(&tokens);
                FileUnit {
                    class,
                    tokens,
                    parsed,
                }
            })
            .collect();
        CallGraph::link(files)
    }
}

/// The linked call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All analyzed files.
    pub files: Vec<FileUnit>,
    /// All fn nodes; ids are indices into this vec.
    pub fns: Vec<FnNode>,
    /// Adjacency: `edges[f]` is the sorted, deduped callee list of `f`.
    pub edges: Vec<Vec<usize>>,
    /// Total edge count (sum of adjacency lengths).
    pub edge_count: usize,
}

impl CallGraph {
    /// Builds nodes and resolves call edges over parsed `files`.
    pub fn link(files: Vec<FileUnit>) -> CallGraph {
        let mut fns: Vec<FnNode> = Vec::new();
        for (fi, unit) in files.iter().enumerate() {
            for item in &unit.parsed.fns {
                fns.push(FnNode {
                    file: fi,
                    name: item.name.clone(),
                    self_type: item.self_type.clone(),
                    is_pub: item.is_pub,
                    is_test: item.is_test,
                    line: item.line,
                    body: item.body,
                });
            }
        }
        // Resolution indices.
        let mut impl_types: BTreeSet<&str> = BTreeSet::new();
        let mut traits: BTreeSet<&str> = BTreeSet::new();
        for unit in &files {
            impl_types.extend(unit.parsed.impl_types.iter().map(String::as_str));
            traits.extend(unit.parsed.traits.iter().map(String::as_str));
        }
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut type_methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut trait_methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            match &f.self_type {
                None => free.entry(f.name.as_str()).or_default().push(id),
                Some(t) => {
                    methods.entry(f.name.as_str()).or_default().push(id);
                    type_methods
                        .entry((t.as_str(), f.name.as_str()))
                        .or_default()
                        .push(id);
                    if traits.contains(t.as_str()) {
                        trait_methods.entry(f.name.as_str()).or_default().push(id);
                    }
                }
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (id, node) in fns.iter().enumerate() {
            let Some((lo, hi)) = node.body else { continue };
            let unit = &files[node.file];
            // Per-file alias map: `use .. as alias` plus `type X = Y;`.
            let mut aliases: BTreeMap<&str, &str> = BTreeMap::new();
            for u in &unit.parsed.uses {
                if let Some(last) = u.path.last() {
                    if u.alias != *last {
                        aliases.insert(u.alias.as_str(), last.as_str());
                    }
                }
            }
            for a in &unit.parsed.aliases {
                aliases.insert(a.alias.as_str(), a.target.as_str());
            }
            let mut callees: BTreeSet<usize> = BTreeSet::new();
            let index = Index {
                free: &free,
                methods: &methods,
                type_methods: &type_methods,
                trait_methods: &trait_methods,
                impl_types: &impl_types,
                traits: &traits,
            };
            scan_body(
                &unit.tokens,
                (lo, hi),
                node.self_type.as_deref(),
                &aliases,
                &index,
                &mut callees,
            );
            edges[id] = callees.into_iter().collect();
        }
        let edge_count = edges.iter().map(Vec::len).sum();
        CallGraph {
            files,
            fns,
            edges,
            edge_count,
        }
    }

    /// `"Type::name"` / `"name"` — the display name of fn `id`.
    pub fn qualified(&self, id: usize) -> String {
        match &self.fns[id].self_type {
            Some(t) => format!("{t}::{}", self.fns[id].name),
            None => self.fns[id].name.clone(),
        }
    }

    /// Workspace-relative path of the file defining fn `id`.
    pub fn rel(&self, id: usize) -> &str {
        &self.files[self.fns[id].file].class.rel
    }

    /// BFS over call edges from `starts`, never entering a node for
    /// which `blocked` returns true. Returns the reached set and a
    /// parent map for chain reconstruction (`usize::MAX` = root/unset).
    pub fn reach<F: Fn(usize) -> bool>(&self, starts: &[usize], blocked: F) -> ReachSet {
        let mut reached = vec![false; self.fns.len()];
        let mut parent = vec![usize::MAX; self.fns.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in starts {
            if !blocked(s) && !reached[s] {
                reached[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &g in &self.edges[f] {
                if !reached[g] && !blocked(g) {
                    reached[g] = true;
                    parent[g] = f;
                    queue.push_back(g);
                }
            }
        }
        ReachSet { reached, parent }
    }

    /// Fixed point of "has a panic site or calls a fn that does":
    /// `seeds[f]` marks fns with a *direct* site; the result marks every
    /// fn from which some seed is reachable.
    pub fn can_reach_seed(&self, seeds: &[bool]) -> Vec<bool> {
        // Reverse worklist propagation.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (f, out) in self.edges.iter().enumerate() {
            for &g in out {
                rev[g].push(f);
            }
        }
        let mut can = seeds.to_vec();
        let mut queue: VecDeque<usize> = (0..self.fns.len()).filter(|&f| can[f]).collect();
        while let Some(g) = queue.pop_front() {
            for &f in &rev[g] {
                if !can[f] {
                    can[f] = true;
                    queue.push_back(f);
                }
            }
        }
        can
    }

    /// Shortest forward call chain from `from` to any fn marked in
    /// `targets`, as fn ids (`from` first). Empty when unreachable.
    pub fn chain_to(&self, from: usize, targets: &[bool]) -> Vec<usize> {
        if targets[from] {
            return vec![from];
        }
        let mut parent = vec![usize::MAX; self.fns.len()];
        let mut seen = vec![false; self.fns.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        seen[from] = true;
        queue.push_back(from);
        while let Some(f) = queue.pop_front() {
            for &g in &self.edges[f] {
                if seen[g] {
                    continue;
                }
                seen[g] = true;
                parent[g] = f;
                if targets[g] {
                    let mut chain = vec![g];
                    let mut cur = g;
                    while parent[cur] != usize::MAX {
                        cur = parent[cur];
                        chain.push(cur);
                    }
                    chain.reverse();
                    return chain;
                }
                queue.push_back(g);
            }
        }
        Vec::new()
    }
}

/// Result of a forward reachability pass.
pub struct ReachSet {
    /// `reached[f]` — fn `f` is reachable from the start set.
    pub reached: Vec<bool>,
    /// BFS parent of each reached fn (`usize::MAX` for roots).
    pub parent: Vec<usize>,
}

impl ReachSet {
    /// Root-to-`id` chain of fn ids using the parent map.
    pub fn chain(&self, id: usize) -> Vec<usize> {
        let mut chain = vec![id];
        let mut cur = id;
        while self.parent[cur] != usize::MAX {
            cur = self.parent[cur];
            chain.push(cur);
        }
        chain.reverse();
        chain
    }
}

/// Tokens that end a bare-identifier *reference* interpretation: after
/// these, an ident is a declaration or a field, not a fn value.
const NON_REF_PREV: &[&str] = &[
    "fn", "let", "mod", "struct", "enum", "trait", "impl", "use", "type", "mut", "static", "union",
    "for", "as", "crate", "dyn", "ref", "break", "continue", "'",
];

/// The workspace resolution tables, borrowed for one linking pass.
struct Index<'a> {
    /// Free fns by name.
    free: &'a BTreeMap<&'a str, Vec<usize>>,
    /// All methods by name (any self type).
    methods: &'a BTreeMap<&'a str, Vec<usize>>,
    /// Methods by exact `(self type, name)`.
    type_methods: &'a BTreeMap<(&'a str, &'a str), Vec<usize>>,
    /// Trait-block methods (declarations with defaults) by name.
    trait_methods: &'a BTreeMap<&'a str, Vec<usize>>,
    /// Every type with a workspace impl block.
    impl_types: &'a BTreeSet<&'a str>,
    /// Every workspace-declared trait.
    traits: &'a BTreeSet<&'a str>,
}

/// Scans one fn body for call sites and resolves them into `callees`.
fn scan_body(
    tokens: &[Token],
    (lo, hi): (usize, usize),
    self_type: Option<&str>,
    aliases: &BTreeMap<&str, &str>,
    index: &Index<'_>,
    callees: &mut BTreeSet<usize>,
) {
    let hi = hi.min(tokens.len());
    for i in lo..hi {
        let t = &tokens[i];
        if !t.ident || reserved_word(&t.text) {
            continue;
        }
        let name = t.text.as_str();
        let next = tokens.get(i + 1).map(|n| n.text.as_str());
        let next_ident = tokens.get(i + 1).is_some_and(|n| n.ident);
        let prev = if i > 0 {
            tokens[i - 1].text.as_str()
        } else {
            ""
        };
        let prev_ident = i > 0 && tokens[i - 1].ident;
        if next == Some("!") {
            continue; // macro invocation, not a fn call
        }
        let is_call = next == Some("(") && !next_ident;
        // Path segment? (`::name`, and not followed by another `::`).
        let in_path = !prev_ident && prev == ":" && i >= 2 && tokens[i - 2].text == ":";
        let path_continues = next == Some(":")
            && tokens.get(i + 2).is_some_and(|n| n.text == ":")
            && tokens.get(i + 3).is_some_and(|n| n.ident);
        if in_path {
            if path_continues {
                continue; // middle segment of a longer path
            }
            // Qualifier is the ident two segments back (`qual::name`),
            // or recovered across a turbofish / qualified-path angle
            // block (`Type::<..>::name`, `<T as Trait>::name`).
            let qual = if i >= 3 && tokens[i - 3].ident {
                Some(tokens[i - 3].text.as_str())
            } else if i >= 3 && tokens[i - 3].text == ">" {
                qualifier_before_angles(tokens, i - 3)
            } else {
                None
            };
            resolve_path(qual, name, self_type, aliases, index, callees);
            continue;
        }
        if path_continues {
            continue; // first segment of a path; the final segment resolves
        }
        // Turbofish right after the name (`name::<..>`): still a call
        // or reference to `name`, not a path to something else.
        let turbofish = next == Some(":")
            && tokens.get(i + 2).is_some_and(|n| n.text == ":")
            && tokens.get(i + 3).is_some_and(|n| n.text == "<");
        if prev == "." && !prev_ident {
            if is_call || turbofish {
                // `.method(..)` / `.method::<..>(..)` — name-based,
                // every workspace method.
                if let Some(ids) = index.methods.get(name) {
                    callees.extend(ids.iter().copied());
                }
            }
            continue; // field access otherwise
        }
        if turbofish {
            // `helper::<T>(..)` — a free fn with explicit generics.
            if let Some(ids) = index.free.get(name) {
                callees.extend(ids.iter().copied());
            }
            continue;
        }
        if is_call {
            // Bare call: a free fn (or a shadowing closure — extra
            // edges are the sound direction).
            if let Some(ids) = index.free.get(name) {
                callees.extend(ids.iter().copied());
            }
            continue;
        }
        // Bare reference (`map(helper)` / `par_map_rows(n, t, work)`):
        // only resolves against free fns, and never in declaration or
        // field positions.
        if NON_REF_PREV.contains(&prev) || next == Some(":") {
            continue;
        }
        if let Some(ids) = index.free.get(name) {
            callees.extend(ids.iter().copied());
        }
    }
}

/// Recovers the path qualifier hidden behind a balanced `<..>` block
/// ending at `close`: the trait of `<T as Trait>` when present, else the
/// ident before a turbofish `qual::<..>`.
fn qualifier_before_angles(tokens: &[Token], close: usize) -> Option<&str> {
    let mut depth = 1usize;
    let mut j = close;
    while depth > 0 {
        j = j.checked_sub(1)?;
        match tokens[j].text.as_str() {
            ">" => depth += 1,
            "<" => depth -= 1,
            _ => {}
        }
    }
    // `<T as Trait>::name` — the trait governs method resolution.
    for k in j + 1..close {
        if tokens[k].text == "as" && tokens.get(k + 1).is_some_and(|n| n.ident) {
            return Some(tokens[k + 1].text.as_str());
        }
    }
    // `qual::<..>::name` — the ident before the turbofish's `::`.
    if j >= 3 && tokens[j - 1].text == ":" && tokens[j - 2].text == ":" && tokens[j - 3].ident {
        return Some(tokens[j - 3].text.as_str());
    }
    None
}

/// Resolves a `qual::name` path call/reference.
fn resolve_path(
    qual: Option<&str>,
    name: &str,
    self_type: Option<&str>,
    aliases: &BTreeMap<&str, &str>,
    index: &Index<'_>,
    callees: &mut BTreeSet<usize>,
) {
    let Some(mut qual) = qual else {
        // Leading `::name` (crate-absolute path): a free fn by name.
        // `<T as Trait>::name` resolves through the recovered trait
        // qualifier before reaching here.
        if let Some(ids) = index.free.get(name) {
            callees.extend(ids.iter().copied());
        }
        return;
    };
    if qual == "Self" {
        match self_type {
            Some(t) => qual = t,
            None => return,
        }
    }
    if let Some(&target) = aliases.get(qual) {
        qual = target;
    }
    let starts_upper = qual.chars().next().is_some_and(char::is_uppercase);
    if !starts_upper {
        // Module qualifier (`parallel::par_map_rows`): a free fn.
        if let Some(ids) = index.free.get(name) {
            callees.extend(ids.iter().copied());
        }
        return;
    }
    if index.traits.contains(qual) {
        // Trait-qualified call dispatches to any impl: name-based.
        if let Some(ids) = index.methods.get(name) {
            callees.extend(ids.iter().copied());
        }
        return;
    }
    if index.impl_types.contains(qual) {
        if let Some(ids) = index.type_methods.get(&(qual, name)) {
            callees.extend(ids.iter().copied());
        } else if let Some(ids) = index.trait_methods.get(name) {
            // Known type but no inherent method of that name: a trait
            // default inherited from a workspace trait. Resolve against
            // trait-block methods only — NOT all methods, or a workspace
            // impl on a std container (`impl From<..> for Vec<..>`)
            // would make `Vec::new()` an edge to every workspace `new`.
            callees.extend(ids.iter().copied());
        }
        return;
    }
    if qual.chars().count() == 1 {
        // Single-letter qualifier: a generic parameter (`T::method`),
        // which may instantiate to any workspace type.
        if let Some(ids) = index.methods.get(name) {
            callees.extend(ids.iter().copied());
        }
    }
    // Multi-letter unknown type (std/vendored): external, no edge. A
    // `use` alias shadowing a workspace type resolves above; plain
    // re-exports keep their own name and resolve via `impl_types`.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::classify;

    fn build(files: &[(&str, &str)]) -> CallGraph {
        Workspace::build(
            files
                .iter()
                .map(|(rel, src)| {
                    (
                        classify(rel).unwrap_or_else(|| panic!("{rel} classifies")),
                        (*src).to_owned(),
                    )
                })
                .collect(),
        )
    }

    fn id(g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| g.qualified(f_id(g, f)) == name || f.name == name)
            .unwrap_or_else(|| panic!("fn {name} in graph"))
    }

    fn f_id(g: &CallGraph, f: &FnNode) -> usize {
        g.fns
            .iter()
            .position(|x| std::ptr::eq(x, f))
            .expect("node in graph")
    }

    fn calls(g: &CallGraph, from: &str, to: &str) -> bool {
        g.edges[id(g, from)].contains(&id(g, to))
    }

    #[test]
    fn free_call_and_cross_file_resolution() {
        let g = build(&[
            (
                "crates/core/src/a.rs",
                "pub fn caller() { helper(); other::helper2(); }",
            ),
            (
                "crates/core/src/b.rs",
                "pub fn helper() {} pub fn helper2() {}",
            ),
        ]);
        assert!(calls(&g, "caller", "helper"));
        assert!(calls(&g, "caller", "helper2"));
    }

    #[test]
    fn type_and_receiver_method_resolution() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "struct A; impl A { pub fn go(&self) { self.step(); } fn step(&self) {} }\n\
             struct B; impl B { fn step(&self) {} }\n\
             fn direct() { A::go(&A); }",
        )]);
        // `.step()` is name-based: both impls are callees.
        let go = id(&g, "A::go");
        let a_step = g
            .fns
            .iter()
            .position(|f| f.name == "step" && f.self_type.as_deref() == Some("A"))
            .expect("A::step");
        let b_step = g
            .fns
            .iter()
            .position(|f| f.name == "step" && f.self_type.as_deref() == Some("B"))
            .expect("B::step");
        assert!(g.edges[go].contains(&a_step));
        assert!(g.edges[go].contains(&b_step));
        // `A::go(..)` resolves exactly.
        assert!(calls(&g, "direct", "A::go"));
    }

    #[test]
    fn self_and_alias_qualifiers() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "use crate::x::Engine as E;\n\
             struct Engine; impl Engine { pub fn probe() {} }\n\
             struct S; impl S { fn f(&self) { Self::g(); E::probe(); } fn g() {} }",
        )]);
        assert!(calls(&g, "S::f", "S::g"));
        assert!(calls(&g, "S::f", "Engine::probe"));
    }

    #[test]
    fn bare_fn_reference_is_an_edge() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "fn work(r: usize) -> usize { r }\n\
             fn driver() { run_with(3, work); }\n\
             fn run_with(n: usize, f: fn(usize) -> usize) { f(n); }",
        )]);
        assert!(calls(&g, "driver", "work"));
        assert!(calls(&g, "driver", "run_with"));
    }

    #[test]
    fn external_types_produce_no_edges() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "struct S; impl S { fn new() {} }\n\
             fn f() { let v = Vec::new(); let m = std::collections::BTreeMap::<u32, u32>::new(); }",
        )]);
        let f = id(&g, "f");
        assert!(
            g.edges[f].is_empty(),
            "Vec::new must not resolve to S::new: {:?}",
            g.edges[f]
        );
    }

    #[test]
    fn generic_qualifier_over_approximates() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "struct S; impl S { fn make() {} }\n\
             fn f<T>() { T::make(); }",
        )]);
        assert!(calls(&g, "f", "S::make"));
    }

    #[test]
    fn reach_and_chain() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { mid(); } fn mid() { sink(); } fn sink() {} fn island() {}",
        )]);
        let r = g.reach(&[id(&g, "entry")], |_| false);
        assert!(r.reached[id(&g, "sink")]);
        assert!(!r.reached[id(&g, "island")]);
        let chain: Vec<String> = r
            .chain(id(&g, "sink"))
            .into_iter()
            .map(|f| g.qualified(f))
            .collect();
        assert_eq!(chain, ["entry", "mid", "sink"]);
    }

    #[test]
    fn blocked_fns_cut_reachability() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { boundary(); } fn boundary() { sink(); } fn sink() {}",
        )]);
        let b = id(&g, "boundary");
        let r = g.reach(&[id(&g, "entry")], |f| f == b);
        assert!(!r.reached[id(&g, "sink")]);
        assert!(!r.reached[b]);
    }

    #[test]
    fn can_reach_seed_fixed_point() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "pub fn top() { mid(); } fn mid() { deep(); } fn deep() {} fn clean() {}",
        )]);
        let mut seeds = vec![false; g.fns.len()];
        seeds[id(&g, "deep")] = true;
        let can = g.can_reach_seed(&seeds);
        assert!(can[id(&g, "top")] && can[id(&g, "mid")] && can[id(&g, "deep")]);
        assert!(!can[id(&g, "clean")]);
        let chain = g.chain_to(id(&g, "top"), &seeds);
        assert_eq!(chain.len(), 3);
    }
}
