//! The interprocedural rules D6–D8, run over the workspace call graph.
//!
//! | Rule | Contract it guards |
//! |------|--------------------|
//! | D6 | Determinism taint: nondeterminism sources (hash-order iteration, `thread::spawn`/`scope`, wall clocks, `std::env` reads, RNG not drawn from a seeded stream) must be unreachable from the report-producing entry points — `Pipeline::run*`, `IncrementalPipeline::apply*`, every pub fn in `core::strategy`, every pub fn of the `mining` crate — except through explicitly audited boundary fns declared in the allowlist. |
//! | D7 | Panic surface: per public API fn of `matrix`/`cluster`/`core`/`mining`, whether any panic site (`unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`) is reachable; the per-crate count is ratcheted in the allowlist and `--explain` prints the offending call chain. |
//! | D8 | Parallel-closure capture audit: arguments to the substrate's `par_map_rows`/`par_map_ranges`/`par_map_reduce_ranges`/`par_fill_by_offsets` must not touch statics or interior-mutability types outside `matrix::parallel` — shared mutation inside a parallel closure is how bit-identity dies quietly. |
//!
//! All three rules inherit the call graph's over-approximation (see
//! [`crate::graph`]): they may flag chains that cannot execute, never
//! miss ones that can. Findings carry the enclosing fn and the
//! entry-to-finding call chain for `--explain` and `--json`.

use std::collections::BTreeSet;

use crate::allowlist::Boundary;
use crate::graph::CallGraph;
use crate::lexer::Token;
use crate::rules::{FileKind, Violation};

/// Where the report-producing pipeline entry points live.
const PIPELINE_FILE: &str = "crates/core/src/pipeline.rs";
/// Where the incremental entry points live.
const INCREMENTAL_FILE: &str = "crates/core/src/incremental.rs";
/// Every pub fn here is a strategy backend and thus an entry point.
const STRATEGY_FILE: &str = "crates/core/src/strategy.rs";
/// Every pub fn of the mining crate is a result-producing entry point
/// (the lazy/eager engines and candidate generation are proptested
/// bit-identical across thread counts, so their whole callee set must
/// be deterministic).
const MINING_DIR: &str = "crates/mining/src/";
/// The parallel substrate (exempt from D8 — it IS the audited code).
const SUBSTRATE: &str = "crates/matrix/src/parallel.rs";
/// Crates whose public API panic surface is ratcheted by D7.
const PANIC_RATCHET_CRATES: &[&str] = &["matrix", "cluster", "core", "mining"];
/// Substrate fns whose argument closures D8 audits.
const PAR_FNS: &[&str] = &[
    "par_map_rows",
    "par_map_ranges",
    "par_map_reduce_ranges",
    "par_fill_by_offsets",
];

/// Runs D6–D8 over the linked call graph.
pub fn scan(graph: &CallGraph, boundaries: &[Boundary]) -> Vec<Violation> {
    let mut out = Vec::new();
    d6_determinism_taint(graph, boundaries, &mut out);
    d7_panic_surface(graph, &mut out);
    d8_parallel_capture(graph, &mut out);
    out
}

/// The D6 entry set: report-producing fns whose transitive callees must
/// be deterministic.
pub fn d6_entry_points(graph: &CallGraph) -> Vec<usize> {
    let mut entries = Vec::new();
    for (id, f) in graph.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let rel = graph.rel(id);
        let hit = (rel == PIPELINE_FILE
            && f.self_type.as_deref() == Some("Pipeline")
            && f.name.starts_with("run"))
            || (rel == INCREMENTAL_FILE
                && f.self_type.as_deref() == Some("IncrementalPipeline")
                && f.name.starts_with("apply"))
            || (rel == STRATEGY_FILE && f.is_pub)
            || (rel.starts_with(MINING_DIR) && f.is_pub);
        if hit {
            entries.push(id);
        }
    }
    entries
}

/// `"Name @ path:line"` — one rendered chain element.
fn chain_elem(graph: &CallGraph, id: usize) -> String {
    format!(
        "{} ({}:{})",
        graph.qualified(id),
        graph.rel(id),
        graph.fns[id].line
    )
}

/// D6: nondeterminism sources unreachable from pipeline entry points.
fn d6_determinism_taint(graph: &CallGraph, boundaries: &[Boundary], out: &mut Vec<Violation>) {
    let entries = d6_entry_points(graph);
    let blocked: Vec<bool> = (0..graph.fns.len())
        .map(|id| {
            graph.fns[id].is_test
                || boundaries
                    .iter()
                    .any(|b| b.func == graph.fns[id].name && b.path == graph.rel(id))
        })
        .collect();
    let reach = graph.reach(&entries, |id| blocked[id]);
    for id in 0..graph.fns.len() {
        if !reach.reached[id] {
            continue;
        }
        let Some((lo, hi)) = graph.fns[id].body else {
            continue;
        };
        let tokens = &graph.files[graph.fns[id].file].tokens;
        let rel = graph.rel(id).to_owned();
        let chain: Vec<String> = reach
            .chain(id)
            .into_iter()
            .map(|f| chain_elem(graph, f))
            .collect();
        for (line, what) in nondet_sources(tokens, lo, hi.min(tokens.len())) {
            out.push(Violation {
                rule: "D6",
                path: rel.clone(),
                line,
                msg: format!(
                    "{what} is reachable from pipeline entry point `{}`; determinism \
                     taint must stop at an audited boundary (run --explain for the chain)",
                    chain.first().map(String::as_str).unwrap_or("?"),
                ),
                func: Some(graph.qualified(id)),
                chain: chain.clone(),
            });
        }
    }
}

/// Scans `[lo, hi)` of a token stream for nondeterminism sources,
/// returning `(line, description)` per occurrence.
fn nondet_sources(tokens: &[Token], lo: usize, hi: usize) -> Vec<(u32, String)> {
    let mut found = Vec::new();
    for i in lo..hi {
        let t = &tokens[i];
        if !t.ident || t.in_test {
            continue;
        }
        let after_colons = |k: usize| {
            tokens.get(k).is_some_and(|a| a.text == ":")
                && tokens.get(k + 1).is_some_and(|b| b.text == ":")
        };
        let qualified_by = |name: &str| {
            i >= 3 && tokens[i - 3].ident && tokens[i - 3].text == name && after_colons(i - 2)
        };
        match t.text.as_str() {
            "HashMap" | "HashSet" => found.push((
                t.line,
                format!("`{}` (hash iteration order varies per process)", t.text),
            )),
            "Instant" | "SystemTime" => {
                found.push((t.line, format!("`{}` (wall-clock read)", t.text)))
            }
            "thread_rng" | "from_entropy" | "from_os_rng" => found.push((
                t.line,
                format!(
                    "`{}` (RNG seeded from the OS, not a splitmix stream)",
                    t.text
                ),
            )),
            "spawn" | "scope" if qualified_by("thread") => found.push((
                t.line,
                format!("`thread::{}` (unmanaged parallelism)", t.text),
            )),
            "random" if qualified_by("rand") => found.push((
                t.line,
                "`rand::random` (thread-local OS-seeded RNG)".to_owned(),
            )),
            "var" | "vars" | "var_os" | "args" | "args_os" if qualified_by("env") => found.push((
                t.line,
                format!("`env::{}` (process environment read)", t.text),
            )),
            _ => {}
        }
    }
    found
}

/// D7: ratcheted panic-surface count per public API fn of the core crates.
fn d7_panic_surface(graph: &CallGraph, out: &mut Vec<Violation>) {
    // Seed: fns with a *direct* panic site in their body.
    let mut seeds = vec![false; graph.fns.len()];
    let mut site: Vec<Option<(String, u32)>> = vec![None; graph.fns.len()];
    for (id, f) in graph.fns.iter().enumerate() {
        let Some((lo, hi)) = f.body else { continue };
        let tokens = &graph.files[f.file].tokens;
        if let Some((what, line)) = first_panic_site(tokens, lo, hi.min(tokens.len())) {
            seeds[id] = true;
            site[id] = Some((what, line));
        }
    }
    let can = graph.can_reach_seed(&seeds);
    for (id, f) in graph.fns.iter().enumerate() {
        let crate_ok =
            PANIC_RATCHET_CRATES.contains(&graph.files[f.file].class.crate_name.as_str());
        if !crate_ok
            || !f.is_pub
            || f.is_test
            || graph.files[f.file].class.kind != FileKind::LibSrc
            || !can[id]
        {
            continue;
        }
        let chain_ids = graph.chain_to(id, &seeds);
        let chain: Vec<String> = chain_ids.iter().map(|&c| chain_elem(graph, c)).collect();
        let (what, line) = chain_ids
            .last()
            .and_then(|&last| site[last].clone())
            .unwrap_or_else(|| ("panic site".to_owned(), 0));
        let sink = chain_ids
            .last()
            .map(|&last| format!("{} ({}:{line})", graph.qualified(last), graph.rel(last)))
            .unwrap_or_default();
        out.push(Violation {
            rule: "D7",
            path: format!("crates/{}", graph.files[f.file].class.crate_name),
            line: 0,
            msg: format!(
                "public fn `{}` ({}:{}) can reach {what} in `{sink}` — panic surface \
                 is ratcheted per crate (run --explain for the chain)",
                graph.qualified(id),
                graph.rel(id),
                f.line,
            ),
            func: Some(graph.qualified(id)),
            chain,
        });
    }
}

/// First direct panic site in `[lo, hi)`, as `(description, line)`.
fn first_panic_site(tokens: &[Token], lo: usize, hi: usize) -> Option<(String, u32)> {
    for i in lo..hi {
        let t = &tokens[i];
        if !t.ident || t.in_test {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i > 0
                    && tokens[i - 1].text == "."
                    && tokens.get(i + 1).is_some_and(|n| n.text == "(") =>
            {
                return Some((format!("`.{}(..)`", t.text), t.line));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if tokens.get(i + 1).is_some_and(|n| n.text == "!") =>
            {
                return Some((format!("`{}!`", t.text), t.line));
            }
            _ => {}
        }
    }
    None
}

/// Idents that mean shared interior mutability inside a parallel closure.
fn interior_mutability(name: &str) -> bool {
    matches!(
        name,
        "RefCell"
            | "Cell"
            | "OnceCell"
            | "OnceLock"
            | "LazyLock"
            | "Mutex"
            | "RwLock"
            | "UnsafeCell"
            | "thread_local"
            | "lazy_static"
    ) || name.starts_with("Atomic")
}

/// D8: arguments to the substrate's `par_*` fns must not touch statics
/// or interior-mutability types.
fn d8_parallel_capture(graph: &CallGraph, out: &mut Vec<Violation>) {
    // Workspace static names (from the item parser's symbol table).
    let statics: BTreeSet<&str> = graph
        .files
        .iter()
        .flat_map(|u| u.parsed.statics.iter().map(String::as_str))
        .collect();
    for (id, f) in graph.fns.iter().enumerate() {
        if f.is_test || graph.rel(id) == SUBSTRATE {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let tokens = &graph.files[f.file].tokens;
        let hi = hi.min(tokens.len());
        let mut i = lo;
        while i < hi {
            let t = &tokens[i];
            let is_par_call = t.ident
                && PAR_FNS.contains(&t.text.as_str())
                && tokens.get(i + 1).is_some_and(|n| n.text == "(");
            if !is_par_call {
                i += 1;
                continue;
            }
            let par_name = t.text.clone();
            // Balance parens over the whole argument list: the closure
            // plus everything around it (over-approximation, documented).
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < hi && depth > 0 {
                match tokens[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            for k in i + 2..j.saturating_sub(1) {
                let a = &tokens[k];
                if !a.ident || a.in_test {
                    continue;
                }
                let prev = &tokens[k - 1].text;
                let lifetime = prev == "'";
                let field = prev == ".";
                let what = if a.text == "static" && !lifetime {
                    Some("a `static` item".to_owned())
                } else if interior_mutability(&a.text) {
                    Some(format!("interior-mutability type `{}`", a.text))
                } else if !field && statics.contains(a.text.as_str()) {
                    Some(format!("workspace static `{}`", a.text))
                } else {
                    None
                };
                if let Some(what) = what {
                    out.push(Violation {
                        rule: "D8",
                        path: graph.rel(id).to_owned(),
                        line: a.line,
                        msg: format!(
                            "argument to `{par_name}` touches {what}: parallel closures \
                             must be free of shared mutation outside the substrate",
                        ),
                        func: Some(graph.qualified(id)),
                        chain: Vec::new(),
                    });
                }
            }
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Workspace;
    use crate::rules::classify;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        Workspace::build(
            files
                .iter()
                .map(|(rel, src)| (classify(rel).expect("classifiable"), (*src).to_owned()))
                .collect(),
        )
    }

    const PIPELINE: &str = "pub struct Pipeline;\n\
         impl Pipeline { pub fn run(&self) { stage(); } }\n\
         fn stage() { helper(); }\n";

    #[test]
    fn d6_catches_source_two_calls_deep() {
        // The ISSUE's seeded regression: a nondeterminism source two
        // calls below Pipeline::run, in another crate.
        let g = graph_of(&[
            ("crates/core/src/pipeline.rs", PIPELINE),
            (
                "crates/cluster/src/helper.rs",
                "pub fn helper() { let t = std::time::Instant::now(); }",
            ),
        ]);
        let vs = scan(&g, &[]);
        let d6: Vec<_> = vs.iter().filter(|v| v.rule == "D6").collect();
        assert_eq!(d6.len(), 1, "{vs:?}");
        assert_eq!(d6[0].path, "crates/cluster/src/helper.rs");
        assert!(d6[0].msg.contains("Instant"));
        assert_eq!(d6[0].chain.len(), 3, "{:?}", d6[0].chain);
        assert!(d6[0].chain[0].starts_with("Pipeline::run"));
    }

    #[test]
    fn d6_respects_audited_boundaries() {
        let g = graph_of(&[
            ("crates/core/src/pipeline.rs", PIPELINE),
            (
                "crates/cluster/src/helper.rs",
                "pub fn helper() { std::thread::spawn(|| {}); }",
            ),
        ]);
        assert!(scan(&g, &[]).iter().any(|v| v.rule == "D6"));
        let boundary = Boundary {
            path: "crates/cluster/src/helper.rs".to_owned(),
            func: "helper".to_owned(),
        };
        assert!(scan(&g, &[boundary]).iter().all(|v| v.rule != "D6"));
    }

    #[test]
    fn d6_ignores_unreachable_and_test_code() {
        let g = graph_of(&[
            ("crates/core/src/pipeline.rs", PIPELINE),
            (
                "crates/cluster/src/helper.rs",
                "pub fn helper() {}\n\
                 pub fn island() { let t = std::time::Instant::now(); }\n\
                 #[cfg(test)]\nmod tests { fn t() { let x = std::time::Instant::now(); } }",
            ),
        ]);
        assert!(scan(&g, &[]).iter().all(|v| v.rule != "D6"));
    }

    #[test]
    fn d7_counts_reachable_panics_per_crate() {
        let g = graph_of(&[(
            "crates/matrix/src/m.rs",
            "pub fn risky() { inner(); }\n\
             fn inner() { x.unwrap(); }\n\
             pub fn safe() {}\n",
        )]);
        let vs = scan(&g, &[]);
        let d7: Vec<_> = vs.iter().filter(|v| v.rule == "D7").collect();
        assert_eq!(d7.len(), 1, "{vs:?}");
        assert_eq!(d7[0].path, "crates/matrix");
        assert_eq!(d7[0].func.as_deref(), Some("risky"));
        assert!(d7[0].chain.len() == 2, "{:?}", d7[0].chain);
    }

    #[test]
    fn d7_ignores_non_ratcheted_crates_and_private_fns() {
        let g = graph_of(&[
            ("crates/synth/src/s.rs", "pub fn gen() { x.unwrap(); }"),
            ("crates/matrix/src/m.rs", "fn private() { x.unwrap(); }"),
        ]);
        assert!(scan(&g, &[]).iter().all(|v| v.rule != "D7"));
    }

    #[test]
    fn d8_flags_interior_mutability_and_statics_in_par_args() {
        let g = graph_of(&[(
            "crates/cluster/src/c.rs",
            "static TABLE: [u32; 4] = [0; 4];\n\
             fn f(n: usize) { par_map_rows(n, 4, |r| { let x = TABLE[r]; }); }\n\
             fn g(n: usize) { par_map_ranges(n, 4, |lo, hi| { let c = AtomicUsize::new(0); }); }\n\
             fn clean(n: usize) { par_map_rows(n, 4, |r| r + 1); }\n",
        )]);
        let vs = scan(&g, &[]);
        let d8: Vec<_> = vs.iter().filter(|v| v.rule == "D8").collect();
        assert_eq!(d8.len(), 2, "{vs:?}");
        assert!(d8
            .iter()
            .any(|v| v.msg.contains("workspace static `TABLE`")));
        assert!(d8.iter().any(|v| v.msg.contains("AtomicUsize")));
    }

    #[test]
    fn d8_exempts_the_substrate_itself() {
        let g = graph_of(&[(
            "crates/matrix/src/parallel.rs",
            "fn par_map_rows(n: usize) { par_map_ranges(n, |x| { let c = Mutex::new(0); }); }",
        )]);
        assert!(scan(&g, &[]).iter().all(|v| v.rule != "D8"));
    }
}
