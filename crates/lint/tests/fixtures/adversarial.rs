//! Adversarial parser/call-graph fixture: nested closures, shadowed
//! names, macro invocations, `impl Trait` arguments, and fn-shaped text
//! inside raw strings. The pin is over-but-never-under approximation:
//! every real item and call edge below must be recovered, and no item
//! may be invented from string contents.

/// Calls `target` from inside a closure nested in a closure.
pub fn outer() -> usize {
    let f = |x: usize| {
        let g = |y: usize| y + target();
        g(x)
    };
    f(1)
}

fn target() -> usize {
    7
}

/// A local binding shadows the callee's name; the call must still
/// resolve to the fn item.
pub fn shadower() -> usize {
    let helper_fn = 3;
    let _ = helper_fn;
    helper_fn_impl() + helper_fn
}

fn helper_fn_impl() -> usize {
    1
}

macro_rules! fabricate {
    ($name:ident) => {
        fn $name() -> usize {
            0
        }
    };
}

fabricate!(macro_made);

/// `impl Trait` in argument position must not derail the signature
/// scanner before the body.
pub fn takes_impl(x: impl Iterator<Item = usize>) -> usize {
    x.map(|v| v + target()).sum()
}

/// Raw-string and plain-string bodies containing `fn fake()` text —
/// these are data, not items.
pub fn raw_strings() -> String {
    let a = r#"fn fake_in_raw() { panic!("not real") }"#;
    let b = "fn fake_in_str() {}";
    format!("{a}{b}")
}
