//! Seeded D1 violation: hand-rolled parallelism outside the substrate.

/// Splits work across ad-hoc threads instead of riding
/// `rolediet_matrix::parallel` — the exact pattern D1 exists to stop,
/// because a completion-order join here would break bit-identity.
pub fn rogue_parallel_sum(xs: &[u64]) -> u64 {
    let mid = xs.len() / 2;
    let (lo, hi) = xs.split_at(mid);
    std::thread::scope(|scope| {
        let a = scope.spawn(|| lo.iter().sum::<u64>());
        let b = hi.iter().sum::<u64>();
        a.join().unwrap_or(0) + b
    })
}
