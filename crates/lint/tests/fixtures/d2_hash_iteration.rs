//! Seeded D2 violation: hash-collection use in an order-sensitive crate.

use std::collections::HashMap;

/// Groups values by key and emits them in `HashMap` iteration order —
/// output silently depends on the hasher seed and layout, which is the
/// nondeterminism hazard D2 exists to stop.
pub fn group_in_hash_order(pairs: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut by_key: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(k, v) in pairs {
        by_key.entry(k).or_default().push(v);
    }
    by_key.into_values().collect()
}
