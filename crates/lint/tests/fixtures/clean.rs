//! A fixture that satisfies every rule even under the strictest
//! classification (crate root of an order-sensitive library crate):
//! hygiene attributes present, ordered collections only, fallible
//! extraction, no clocks, no threads — and a `#[cfg(test)]` module
//! proving the test exemptions apply.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;

/// Groups values by key in deterministic key order.
pub fn group_sorted(pairs: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut by_key: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(k, v) in pairs {
        by_key.entry(k).or_default().push(v);
    }
    by_key.into_values().collect()
}

/// Fallible head extraction instead of `.unwrap()`.
pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_hashes_and_unwrap() {
        let grouped = group_sorted(&[(2, 1), (1, 9)]);
        assert_eq!(grouped, vec![vec![9], vec![1]]);
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        assert_eq!(first(&[7]).unwrap(), 7);
    }
}
