//! D6 fixture: a nondeterminism source two calls deep under
//! `Pipeline::run`. Scanned as `crates/core/src/pipeline.rs`, where the
//! wall-clock token itself is D5-exempt (timings plumbing) — only the
//! interprocedural taint walk can catch it.

pub struct Pipeline;

impl Pipeline {
    pub fn run(&self) -> u128 {
        stage()
    }
}

fn stage() -> u128 {
    helper()
}

fn helper() -> u128 {
    std::time::Instant::now().elapsed().as_micros()
}
