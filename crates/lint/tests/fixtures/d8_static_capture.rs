//! D8 fixture: a parallel-map closure capturing a workspace static of
//! an interior-mutability type. Either signal alone must trip the
//! capture audit outside `matrix::parallel`.

use std::sync::atomic::{AtomicUsize, Ordering};

static HITS: AtomicUsize = AtomicUsize::new(0);

pub fn tally(rows: &[u64]) -> Vec<u32> {
    par_map_rows(rows.len(), |r| {
        HITS.fetch_add(1, Ordering::Relaxed);
        rows[r].count_ones()
    })
}

fn par_map_rows<T>(n: usize, f: impl Fn(usize) -> T) -> Vec<T> {
    (0..n).map(f).collect()
}
