//! D7 fixture: a panic site reachable from a public API fn of a
//! ratcheted crate. `panic!` is not a D4 pattern (that rule tracks
//! `.unwrap()`/`.expect()`), so only the surface walk reports it.

/// Public API: panics transitively via `inner`.
pub fn widen(v: &[u32]) -> u32 {
    inner(v)
}

fn inner(v: &[u32]) -> u32 {
    match v.first() {
        Some(&x) => x,
        None => panic!("widen requires a non-empty slice"),
    }
}

/// Public API with no reachable panic: must stay off the surface.
pub fn total(v: &[u32]) -> u64 {
    v.iter().map(|&x| u64::from(x)).sum()
}
