//! Seeded D4 violations: panicking extractors in library code.

/// Parses a dotted pair like `"3.7"`; panics on malformed input instead
/// of returning an error — the hidden-partiality pattern D4 exists to
/// stop in library code paths.
pub fn parse_pair(s: &str) -> (u32, u32) {
    let mut it = s.split('.');
    let a = it.next().unwrap().parse().expect("left half");
    let b = it.next().unwrap().parse().expect("right half");
    (a, b)
}
