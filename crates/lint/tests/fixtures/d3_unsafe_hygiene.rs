//! Seeded D3 violations: a crate root with neither hygiene attribute,
//! plus a keyword-adjacent `unsafe_` binding (the shadow-name the
//! scanner special-cases — rename such bindings, e.g. to `blocked`).

/// Filters out even values; the binding name is the violation.
pub fn partition_demo(xs: &[u32]) -> Vec<u32> {
    let unsafe_ = xs.iter().copied().filter(|x| x % 2 == 1);
    unsafe_.collect()
}
