//! Seeded D5 violation: a wall-clock read outside the timings plumbing.

use std::time::Instant;

/// Returns how long a closure takes — timing logic that belongs in the
/// bench crate or the `Report::timings` plumbing, nowhere else, because
/// wall-clock reads make output depend on when it ran.
pub fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}
