//! Self-tests: every seeded fixture under `tests/fixtures/` trips its
//! rule (through the library *and* through the real binary's exit
//! code), the clean fixture passes under the strictest classification,
//! and the actual workspace lints clean with the checked-in allowlist.

use std::path::{Path, PathBuf};
use std::process::Command;

use rolediet_lint::rules::{classify, scan_file};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Scans a fixture as if it lived at `rel` inside the workspace.
fn scan_as(rel: &str, src: &str) -> Vec<rolediet_lint::rules::Violation> {
    let class = classify(rel).unwrap_or_else(|| panic!("{rel} must classify"));
    scan_file(&class, src)
}

fn rules_hit(violations: &[rolediet_lint::rules::Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn d1_fixture_trips_outside_substrate_only() {
    let src = fixture("d1_thread_spawn.rs");
    assert_eq!(
        rules_hit(&scan_as("crates/core/src/seeded.rs", &src)),
        ["D1"]
    );
    // The same tokens inside the substrate file are the substrate.
    assert!(scan_as("crates/matrix/src/parallel.rs", &src).is_empty());
}

#[test]
fn d2_fixture_trips_in_order_sensitive_crates_only() {
    let src = fixture("d2_hash_iteration.rs");
    assert_eq!(
        rules_hit(&scan_as("crates/matrix/src/seeded.rs", &src)),
        ["D2"]
    );
    // `model` is outside D2's scope (its maps never reach reports raw).
    assert!(scan_as("crates/model/src/seeded.rs", &src).is_empty());
}

#[test]
fn d3_fixture_trips_missing_attrs_and_shadow_binding() {
    let src = fixture("d3_unsafe_hygiene.rs");
    let hits = scan_as("crates/cluster/src/lib.rs", &src);
    assert_eq!(rules_hit(&hits), ["D3"]);
    let missing_attrs = hits.iter().filter(|v| v.line == 0).count();
    assert_eq!(missing_attrs, 2, "both hygiene attributes reported missing");
    assert!(
        hits.iter().any(|v| v.line > 0 && v.msg.contains("unsafe_")),
        "the keyword-adjacent binding is flagged: {hits:?}"
    );
}

#[test]
fn d4_fixture_trips_in_library_code_only() {
    let src = fixture("d4_unwrap.rs");
    let hits = scan_as("crates/model/src/seeded.rs", &src);
    assert_eq!(rules_hit(&hits), ["D4"]);
    assert_eq!(hits.len(), 4, "two unwraps + two expects: {hits:?}");
    assert!(scan_as("crates/model/tests/seeded.rs", &src).is_empty());
}

#[test]
fn d5_fixture_trips_outside_timings_plumbing() {
    let src = fixture("d5_wall_clock.rs");
    assert_eq!(
        rules_hit(&scan_as("crates/synth/src/seeded.rs", &src)),
        ["D5"]
    );
    assert!(scan_as("crates/core/src/pipeline.rs", &src).is_empty());
    assert!(scan_as("crates/bench/src/seeded.rs", &src).is_empty());
}

#[test]
fn clean_fixture_passes_strictest_classification() {
    let src = fixture("clean.rs");
    // Crate root of an order-sensitive library crate: D2/D3/D4 all apply.
    assert!(scan_as("crates/matrix/src/lib.rs", &src).is_empty());
}

/// Builds a throwaway one-file workspace and returns its root.
fn seeded_workspace(test_name: &str, rel: &str, fixture_name: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("rolediet-lint-{}-{test_name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let target = root.join(rel);
    std::fs::create_dir_all(target.parent().expect("fixture path has a parent"))
        .expect("create workspace dirs");
    std::fs::write(&target, fixture(fixture_name)).expect("write fixture");
    root
}

fn lint_exit_code(root: &Path) -> i32 {
    let output = Command::new(env!("CARGO_BIN_EXE_rolediet-lint"))
        .args(["--root", &root.display().to_string(), "--quiet"])
        .output()
        .expect("run rolediet-lint");
    output.status.code().expect("exit code")
}

#[test]
fn binary_exits_nonzero_on_each_seeded_rule() {
    let cases = [
        ("bin-d1", "crates/core/src/seeded.rs", "d1_thread_spawn.rs"),
        (
            "bin-d2",
            "crates/matrix/src/seeded.rs",
            "d2_hash_iteration.rs",
        ),
        (
            "bin-d3",
            "crates/cluster/src/lib.rs",
            "d3_unsafe_hygiene.rs",
        ),
        ("bin-d4", "crates/model/src/seeded.rs", "d4_unwrap.rs"),
        ("bin-d5", "crates/synth/src/seeded.rs", "d5_wall_clock.rs"),
    ];
    for (name, rel, fixture_name) in cases {
        let root = seeded_workspace(name, rel, fixture_name);
        assert_eq!(
            lint_exit_code(&root),
            1,
            "{fixture_name} must fail the lint"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let root = seeded_workspace("bin-clean", "crates/matrix/src/lib.rs", "clean.rs");
    assert_eq!(lint_exit_code(&root), 0);
    let _ = std::fs::remove_dir_all(&root);
}

/// The repository itself must lint clean with the checked-in allowlist —
/// this is the same gate `scripts/verify.sh` runs, enforced from
/// `cargo test` too so a violation cannot land through a partial check.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = rolediet_lint::run(&root).expect("lint run");
    assert!(
        outcome.violations.is_empty(),
        "workspace lint violations:\n{}",
        outcome
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(outcome.files_scanned > 50, "walker found the workspace");
}
