//! Self-tests: every seeded fixture under `tests/fixtures/` trips its
//! rule (through the library *and* through the real binary's exit
//! code), the clean fixture passes under the strictest classification,
//! and the actual workspace lints clean with the checked-in allowlist.

use std::path::{Path, PathBuf};
use std::process::Command;

use rolediet_lint::rules::{classify, scan_file};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Scans a fixture as if it lived at `rel` inside the workspace.
fn scan_as(rel: &str, src: &str) -> Vec<rolediet_lint::rules::Violation> {
    let class = classify(rel).unwrap_or_else(|| panic!("{rel} must classify"));
    scan_file(&class, src)
}

fn rules_hit(violations: &[rolediet_lint::rules::Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn d1_fixture_trips_outside_substrate_only() {
    let src = fixture("d1_thread_spawn.rs");
    assert_eq!(
        rules_hit(&scan_as("crates/core/src/seeded.rs", &src)),
        ["D1"]
    );
    // The same tokens inside the substrate file are the substrate.
    assert!(scan_as("crates/matrix/src/parallel.rs", &src).is_empty());
}

#[test]
fn d2_fixture_trips_in_order_sensitive_crates_only() {
    let src = fixture("d2_hash_iteration.rs");
    assert_eq!(
        rules_hit(&scan_as("crates/matrix/src/seeded.rs", &src)),
        ["D2"]
    );
    // `model` is outside D2's scope (its maps never reach reports raw).
    assert!(scan_as("crates/model/src/seeded.rs", &src).is_empty());
}

#[test]
fn d3_fixture_trips_missing_attrs_and_shadow_binding() {
    let src = fixture("d3_unsafe_hygiene.rs");
    let hits = scan_as("crates/cluster/src/lib.rs", &src);
    assert_eq!(rules_hit(&hits), ["D3"]);
    let missing_attrs = hits.iter().filter(|v| v.line == 0).count();
    assert_eq!(missing_attrs, 2, "both hygiene attributes reported missing");
    assert!(
        hits.iter().any(|v| v.line > 0 && v.msg.contains("unsafe_")),
        "the keyword-adjacent binding is flagged: {hits:?}"
    );
}

#[test]
fn d4_fixture_trips_in_library_code_only() {
    let src = fixture("d4_unwrap.rs");
    let hits = scan_as("crates/model/src/seeded.rs", &src);
    assert_eq!(rules_hit(&hits), ["D4"]);
    assert_eq!(hits.len(), 4, "two unwraps + two expects: {hits:?}");
    assert!(scan_as("crates/model/tests/seeded.rs", &src).is_empty());
}

#[test]
fn d5_fixture_trips_outside_timings_plumbing() {
    let src = fixture("d5_wall_clock.rs");
    assert_eq!(
        rules_hit(&scan_as("crates/synth/src/seeded.rs", &src)),
        ["D5"]
    );
    assert!(scan_as("crates/core/src/pipeline.rs", &src).is_empty());
    assert!(scan_as("crates/bench/src/seeded.rs", &src).is_empty());
}

#[test]
fn clean_fixture_passes_strictest_classification() {
    let src = fixture("clean.rs");
    // Crate root of an order-sensitive library crate: D2/D3/D4 all apply.
    assert!(scan_as("crates/matrix/src/lib.rs", &src).is_empty());
}

/// Builds a throwaway one-file workspace and returns its root.
fn seeded_workspace(test_name: &str, rel: &str, fixture_name: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("rolediet-lint-{}-{test_name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    write_file(&root, rel, &fixture(fixture_name));
    root
}

fn write_file(root: &Path, rel: &str, content: &str) {
    let target = root.join(rel);
    std::fs::create_dir_all(target.parent().expect("fixture path has a parent"))
        .expect("create workspace dirs");
    std::fs::write(&target, content).expect("write fixture");
}

/// Runs the real binary against `root`; returns (exit code, stdout).
fn lint_run(root: &Path, extra: &[&str]) -> (i32, String) {
    let mut args = vec!["--root".to_owned(), root.display().to_string()];
    args.extend(extra.iter().map(|s| (*s).to_owned()));
    let output = Command::new(env!("CARGO_BIN_EXE_rolediet-lint"))
        .args(&args)
        .output()
        .expect("run rolediet-lint");
    (
        output.status.code().expect("exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

fn lint_exit_code(root: &Path) -> i32 {
    lint_run(root, &["--quiet"]).0
}

#[test]
fn binary_exits_nonzero_on_each_seeded_rule() {
    let cases = [
        ("bin-d1", "crates/core/src/seeded.rs", "d1_thread_spawn.rs"),
        (
            "bin-d2",
            "crates/matrix/src/seeded.rs",
            "d2_hash_iteration.rs",
        ),
        (
            "bin-d3",
            "crates/cluster/src/lib.rs",
            "d3_unsafe_hygiene.rs",
        ),
        ("bin-d4", "crates/model/src/seeded.rs", "d4_unwrap.rs"),
        ("bin-d5", "crates/synth/src/seeded.rs", "d5_wall_clock.rs"),
    ];
    for (name, rel, fixture_name) in cases {
        let root = seeded_workspace(name, rel, fixture_name);
        assert_eq!(
            lint_exit_code(&root),
            1,
            "{fixture_name} must fail the lint"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let root = seeded_workspace("bin-clean", "crates/matrix/src/lib.rs", "clean.rs");
    assert_eq!(lint_exit_code(&root), 0);
    let _ = std::fs::remove_dir_all(&root);
}

/// Each interprocedural fixture trips exactly its rule, observed
/// through the real binary's `--json` output.
#[test]
fn interprocedural_fixtures_trip_their_rules() {
    let cases = [
        ("bin-d6", "crates/core/src/pipeline.rs", "d6_taint.rs", "D6"),
        (
            "bin-d7",
            "crates/matrix/src/seeded.rs",
            "d7_panic_surface.rs",
            "D7",
        ),
        (
            "bin-d8",
            "crates/cluster/src/seeded.rs",
            "d8_static_capture.rs",
            "D8",
        ),
    ];
    for (name, rel, fixture_name, rule) in cases {
        let root = seeded_workspace(name, rel, fixture_name);
        let (code, json) = lint_run(&root, &["--json"]);
        assert_eq!(code, 1, "{fixture_name} must fail the lint");
        assert!(
            json.contains(&format!("\"rule\":\"{rule}\"")),
            "{fixture_name} must report {rule}: {json}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// The D6 regression fixture (a source two calls deep under
/// `Pipeline::run`) is reported with its full call chain end to end:
/// `--explain` prints `Pipeline::run → stage → helper`.
#[test]
fn explain_prints_the_taint_chain() {
    let root = seeded_workspace(
        "bin-d6-explain",
        "crates/core/src/pipeline.rs",
        "d6_taint.rs",
    );
    let (code, out) = lint_run(&root, &["--explain", "--quiet"]);
    assert_eq!(code, 1);
    for hop in ["Pipeline::run (", "stage (", "helper ("] {
        assert!(out.contains(hop), "chain hop {hop:?} missing from:\n{out}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// `--strict` promotes allowlist warnings (here: a stale entry for a
/// file with no findings) to a failing exit.
#[test]
fn strict_promotes_stale_allowlist_to_error() {
    let root = seeded_workspace("bin-strict", "crates/matrix/src/lib.rs", "clean.rs");
    write_file(
        &root,
        "crates/lint/allowlist.txt",
        "D4 crates/matrix/src/lib.rs 3  # stale: the expects were removed\n",
    );
    assert_eq!(lint_run(&root, &["--quiet"]).0, 0, "warnings alone pass");
    assert_eq!(
        lint_run(&root, &["--strict", "--quiet"]).0,
        1,
        "strict mode fails on the stale entry"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// `--fix-allowlist` rewrites slack ratchets down to the observed count
/// and drops stale entries, preserving everything else.
#[test]
fn fix_allowlist_tightens_ratchets_in_place() {
    let root = seeded_workspace("bin-fix", "crates/model/src/seeded.rs", "d4_unwrap.rs");
    let allow_rel = "crates/lint/allowlist.txt";
    write_file(
        &root,
        allow_rel,
        "# audited debt\n\
         D4 crates/model/src/seeded.rs 9  # slack: audit note survives\n\
         D4 crates/model/src/gone.rs   2  # stale: file no longer exists\n",
    );
    let (code, _) = lint_run(&root, &["--fix-allowlist"]);
    assert_eq!(code, 0);
    let rewritten = std::fs::read_to_string(root.join(allow_rel)).expect("read allowlist");
    assert!(
        rewritten.contains("D4 crates/model/src/seeded.rs 4  # slack: audit note survives"),
        "ratchet tightened to the observed count: {rewritten}"
    );
    assert!(
        !rewritten.contains("gone.rs"),
        "stale entry dropped: {rewritten}"
    );
    assert!(rewritten.contains("# audited debt"), "comments preserved");
    let _ = std::fs::remove_dir_all(&root);
}

/// The adversarial fixture pins over-but-never-under approximation:
/// every real item and call edge is recovered; no item is invented
/// from fn-shaped text inside strings.
#[test]
fn adversarial_fixture_parses_and_links_soundly() {
    use rolediet_lint::graph::Workspace;
    use rolediet_lint::rules::classify;

    let src = fixture("adversarial.rs");
    let class = classify("crates/core/src/adversarial.rs").expect("classifies");
    let graph = Workspace::build(vec![(class, src)]);

    let names: Vec<&str> = graph.fns.iter().map(|f| f.name.as_str()).collect();
    for real in [
        "outer",
        "target",
        "shadower",
        "helper_fn_impl",
        "takes_impl",
        "raw_strings",
    ] {
        assert!(names.contains(&real), "missing item {real}: {names:?}");
    }
    for fake in ["fake_in_raw", "fake_in_str"] {
        assert!(!names.contains(&fake), "string text parsed as item: {fake}");
    }

    let id_of = |name: &str| {
        graph
            .fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("{name} indexed"))
    };
    let edges = |name: &str| &graph.edges[id_of(name)];
    assert!(
        edges("outer").contains(&id_of("target")),
        "call through nested closures resolves"
    );
    assert!(
        edges("shadower").contains(&id_of("helper_fn_impl")),
        "shadowed local binding does not hide the fn call"
    );
    assert!(
        edges("takes_impl").contains(&id_of("target")),
        "impl Trait argument does not derail body scanning"
    );
}

/// The repository itself must lint clean with the checked-in allowlist —
/// this is the same gate `scripts/verify.sh` runs, enforced from
/// `cargo test` too so a violation cannot land through a partial check.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = rolediet_lint::run(&root).expect("lint run");
    assert!(
        outcome.violations.is_empty(),
        "workspace lint violations:\n{}",
        outcome
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(outcome.files_scanned > 50, "walker found the workspace");
}
