//! Property tests for the parallel generators.
//!
//! The seeded-determinism contract: `generate_matrix_with(cfg, t)` and
//! `generate_org_with(cfg, t)` are byte-identical for every thread count
//! `t`, because all randomness flows through per-entity streams fixed by
//! construction order. The parallel output must also honor the same
//! planted-ground-truth guarantees as the sequential generators.

use proptest::prelude::*;

use rolediet_model::{PermissionId, RoleId, UserId};
use rolediet_synth::org_gen::InefficiencyPlan;
use rolediet_synth::{generate_matrix_with, generate_org_with, MatrixGenConfig, OrgConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matrix_generator_is_thread_count_invariant(
        roles in 1usize..160,
        users in 1usize..100,
        cluster_pct in 0u32..=100,
        perturbed in 0usize..3,
        seed in 0u64..1000,
    ) {
        let cfg = MatrixGenConfig {
            roles,
            users,
            cluster_fraction: f64::from(cluster_pct) / 100.0,
            max_cluster_size: 6,
            density: 0.1,
            perturbed_per_cluster: perturbed.min(5),
            seed,
        };
        let base = generate_matrix_with(cfg, 1);
        for t in THREADS {
            let gen = generate_matrix_with(cfg, t);
            prop_assert_eq!(&gen.dense, &base.dense, "threads={}", t);
            prop_assert_eq!(&gen.truth, &base.truth, "threads={}", t);
        }
        // Same guarantees as the sequential generator.
        for group in &base.truth.planted_groups {
            let first = group[0];
            for &m in &group[1..] {
                prop_assert!(rolediet_matrix::RowMatrix::rows_equal(&base.dense, first, m));
            }
        }
        for &(a, b) in &base.truth.planted_similar_pairs {
            prop_assert_eq!(rolediet_matrix::RowMatrix::row_hamming(&base.dense, a, b), 1);
        }
    }

    #[test]
    fn org_generator_is_thread_count_invariant(
        departments in 1usize..5,
        healthy in 4usize..12,
        seed in 0u64..1000,
    ) {
        let cfg = OrgConfig {
            departments,
            users_per_department: 40,
            healthy_roles_per_department: healthy,
            permissions_per_department: 30,
            role_user_degree: (2, 6),
            role_perm_degree: (2, 5),
            plan: InefficiencyPlan {
                standalone_users: 2,
                standalone_permissions: 1,
                standalone_roles: 1,
                userless_roles: 2,
                permless_roles: 1,
                single_user_roles: 2,
                single_permission_roles: 2,
                same_user_role_pairs: 1,
                same_permission_role_pairs: 1,
                similar_user_role_pairs: 1,
                similar_permission_role_pairs: 1,
            },
            seed,
        };
        let base = generate_org_with(cfg, 1);
        base.graph.validate().expect("parallel output must be a consistent graph");
        for t in THREADS {
            let gen = generate_org_with(cfg, t);
            prop_assert_eq!(&gen.graph, &base.graph, "threads={}", t);
            prop_assert_eq!(&gen.truth, &base.truth, "threads={}", t);
        }
    }
}

/// The parallel org generator plants every inefficiency type at exact
/// counts, just like the sequential one (checked post-hoc from degrees).
#[test]
fn parallel_org_planted_counts_are_exact() {
    let plan = InefficiencyPlan {
        standalone_users: 5,
        standalone_permissions: 11,
        standalone_roles: 2,
        userless_roles: 7,
        permless_roles: 3,
        single_user_roles: 6,
        single_permission_roles: 8,
        same_user_role_pairs: 4,
        same_permission_role_pairs: 3,
        similar_user_role_pairs: 5,
        similar_permission_role_pairs: 2,
    };
    let org = generate_org_with(
        OrgConfig {
            plan,
            seed: 21,
            ..OrgConfig::default()
        },
        4,
    );
    let g = &org.graph;
    g.validate().unwrap();

    let zero_users: Vec<UserId> = (0..g.n_users())
        .map(UserId::from_index)
        .filter(|&u| g.roles_of_user(u).next().is_none())
        .collect();
    assert_eq!(zero_users, org.truth.standalone_users);
    let zero_perms: Vec<PermissionId> = (0..g.n_permissions())
        .map(PermissionId::from_index)
        .filter(|&p| g.roles_of_permission(p).next().is_none())
        .collect();
    assert_eq!(zero_perms, org.truth.standalone_permissions);

    let mut userless = Vec::new();
    let mut permless = Vec::new();
    let mut standalone = Vec::new();
    for r in (0..g.n_roles()).map(RoleId::from_index) {
        match (g.user_degree(r), g.permission_degree(r)) {
            (0, 0) => standalone.push(r),
            (0, _) => userless.push(r),
            (_, 0) => permless.push(r),
            _ => {}
        }
    }
    assert_eq!(standalone, org.truth.standalone_roles);
    assert_eq!(userless, org.truth.userless_roles);
    assert_eq!(permless, org.truth.permless_roles);

    for &(a, b) in &org.truth.same_user_pairs {
        assert_eq!(
            g.users_of(a).collect::<Vec<_>>(),
            g.users_of(b).collect::<Vec<_>>()
        );
    }
    let ruam = g.ruam_sparse();
    for &(a, b) in &org.truth.similar_user_pairs {
        assert_eq!(
            rolediet_matrix::RowMatrix::row_hamming(&ruam, a.index(), b.index()),
            1
        );
    }
}
