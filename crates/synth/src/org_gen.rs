//! Organization-scale RBAC generator with planted inefficiencies.
//!
//! The paper's Section IV-B analyzes a proprietary dataset from a large
//! organization. This generator is our substitution for it (see DESIGN.md):
//! it builds a department-structured tripartite graph and then plants each
//! of the five inefficiency types at *exact, configurable counts*, so the
//! detection pipeline can be validated against known ground truth — which
//! is strictly stronger than an unverifiable field report.
//!
//! Construction guarantees that make planted counts exact:
//!
//! * every *healthy* role has at least 2 users and 2 permissions;
//! * every base user/attached permission is swept onto a per-department
//!   *catch-all* role if it would otherwise be orphaned, so the only
//!   standalone nodes are the planted ones;
//! * catch-all roles are excluded from all duplicate/similar transforms;
//! * the similar-transform never shrinks a set below 2 elements.
//!
//! Duplicate/similar planting *copies whole edge sets between roles*, so
//! group-type ground truth is exact by construction (coincidental extra
//! duplicates among random healthy roles are possible but vanishingly rare
//! at realistic densities; detector tests therefore also compare against
//! post-hoc signature grouping).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rolediet_matrix::parallel::par_map_rows;
use rolediet_model::{PermissionId, RoleId, TripartiteGraph, UserId};

use crate::stream::stream_rng;

/// Counts of inefficiencies to plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InefficiencyPlan {
    /// Users with no role at all (T1).
    pub standalone_users: usize,
    /// Permissions attached to no role (T1).
    pub standalone_permissions: usize,
    /// Roles with neither users nor permissions (T1).
    pub standalone_roles: usize,
    /// Roles linked solely to permissions (T2).
    pub userless_roles: usize,
    /// Roles linked solely to users (T2).
    pub permless_roles: usize,
    /// Roles with exactly one user (T3).
    pub single_user_roles: usize,
    /// Roles with exactly one permission (T3).
    pub single_permission_roles: usize,
    /// Role pairs given identical user sets (T4); `n` pairs → `2n` roles.
    pub same_user_role_pairs: usize,
    /// Role pairs given identical permission sets (T4).
    pub same_permission_role_pairs: usize,
    /// Role pairs at user-side Hamming distance exactly 1 (T5).
    pub similar_user_role_pairs: usize,
    /// Role pairs at permission-side Hamming distance exactly 1 (T5).
    pub similar_permission_role_pairs: usize,
}

/// Full organization generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrgConfig {
    /// Number of departments.
    pub departments: usize,
    /// Base users per department.
    pub users_per_department: usize,
    /// Healthy roles per department (besides the catch-all).
    pub healthy_roles_per_department: usize,
    /// Attached permissions per department.
    pub permissions_per_department: usize,
    /// Inclusive range of users per role with a normal user side.
    pub role_user_degree: (usize, usize),
    /// Inclusive range of permissions per role with a normal permission
    /// side.
    pub role_perm_degree: (usize, usize),
    /// The inefficiencies to plant.
    pub plan: InefficiencyPlan,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OrgConfig {
    fn default() -> Self {
        OrgConfig {
            departments: 4,
            users_per_department: 100,
            healthy_roles_per_department: 20,
            permissions_per_department: 120,
            role_user_degree: (2, 20),
            role_perm_degree: (2, 10),
            plan: InefficiencyPlan::default(),
            seed: 0,
        }
    }
}

/// Ground truth of a generated organization: the planted instances of
/// every inefficiency type, by id.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrgGroundTruth {
    /// Planted T1 users.
    pub standalone_users: Vec<UserId>,
    /// Planted T1 permissions.
    pub standalone_permissions: Vec<PermissionId>,
    /// Planted T1 roles.
    pub standalone_roles: Vec<RoleId>,
    /// Planted T2 roles without users.
    pub userless_roles: Vec<RoleId>,
    /// Planted T2 roles without permissions.
    pub permless_roles: Vec<RoleId>,
    /// Planted T3 single-user roles.
    pub single_user_roles: Vec<RoleId>,
    /// Planted T3 single-permission roles.
    pub single_permission_roles: Vec<RoleId>,
    /// Planted T4 same-user pairs.
    pub same_user_pairs: Vec<(RoleId, RoleId)>,
    /// Planted T4 same-permission pairs.
    pub same_permission_pairs: Vec<(RoleId, RoleId)>,
    /// Planted T5 Hamming-1 user-side pairs.
    pub similar_user_pairs: Vec<(RoleId, RoleId)>,
    /// Planted T5 Hamming-1 permission-side pairs.
    pub similar_permission_pairs: Vec<(RoleId, RoleId)>,
}

/// A generated organization: graph + ground truth + config.
#[derive(Debug, Clone)]
pub struct GeneratedOrg {
    /// The tripartite graph.
    pub graph: TripartiteGraph,
    /// Planted ground truth.
    pub truth: OrgGroundTruth,
    /// The generating configuration.
    pub config: OrgConfig,
}

/// Samples `k` distinct values from `lo..lo + len`.
fn sample_distinct(rng: &mut StdRng, lo: usize, len: usize, k: usize) -> Vec<usize> {
    assert!(k <= len, "cannot sample {k} distinct values from {len}");
    if k * 2 >= len {
        // Partial Fisher-Yates on the full range.
        let mut all: Vec<usize> = (lo..lo + len).collect();
        for i in 0..k {
            let j = rng.gen_range(i..len);
            all.swap(i, j);
        }
        all.truncate(k);
        all
    } else {
        let mut seen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let v = lo + rng.gen_range(0..len);
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }
}

/// Generates an organization according to `config`.
///
/// # Panics
///
/// Panics if the configuration is inconsistent: degree ranges exceeding
/// the per-department node counts, degree minima below 2, or transform
/// pools too small for the requested pair counts (each panic message says
/// which knob to raise).
pub fn generate_org(config: OrgConfig) -> GeneratedOrg {
    build_org(config).expect("planted ids are in range by construction")
}

/// Fallible body of [`generate_org`]: edge insertions propagate
/// [`rolediet_model::ModelError`] instead of panicking mid-build, so the
/// public wrapper carries the one audited `.expect` for the whole walk.
fn build_org(config: OrgConfig) -> rolediet_model::Result<GeneratedOrg> {
    let plan = config.plan;
    check_config(&config);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_depts = config.departments;
    let base_users = n_depts * config.users_per_department;
    let base_perms = n_depts * config.permissions_per_department;
    let healthy_total = n_depts * config.healthy_roles_per_department;

    let mut graph = TripartiteGraph::with_counts(
        base_users + plan.standalone_users,
        0,
        base_perms + plan.standalone_permissions,
    );
    let mut truth = OrgGroundTruth::default();

    let dept_of_role = |role_count: usize| role_count % n_depts;
    let user_range = |d: usize| (d * config.users_per_department, config.users_per_department);
    let perm_range = |d: usize| {
        (
            d * config.permissions_per_department,
            config.permissions_per_department,
        )
    };

    // --- catch-all and healthy roles -----------------------------------
    let mut catch_all: Vec<RoleId> = Vec::with_capacity(n_depts);
    for d in 0..n_depts {
        let r = graph.add_role();
        catch_all.push(r);
        let (ulo, ulen) = user_range(d);
        for u in sample_distinct(&mut rng, ulo, ulen, 2) {
            graph.assign_user(r, UserId::from_index(u))?;
        }
        let (plo, plen) = perm_range(d);
        for p in sample_distinct(&mut rng, plo, plen, 2) {
            graph.grant_permission(r, PermissionId::from_index(p))?;
        }
    }
    let mut healthy: Vec<RoleId> = Vec::with_capacity(healthy_total);
    for i in 0..healthy_total {
        let d = i % n_depts;
        let r = graph.add_role();
        healthy.push(r);
        attach_users(
            &mut graph,
            &mut rng,
            r,
            user_range(d),
            config.role_user_degree,
        )?;
        attach_perms(
            &mut graph,
            &mut rng,
            r,
            perm_range(d),
            config.role_perm_degree,
        )?;
    }

    // --- planted degree-type roles --------------------------------------
    for i in 0..plan.userless_roles {
        let d = dept_of_role(i);
        let r = graph.add_role();
        attach_perms(
            &mut graph,
            &mut rng,
            r,
            perm_range(d),
            config.role_perm_degree,
        )?;
        truth.userless_roles.push(r);
    }
    for i in 0..plan.permless_roles {
        let d = dept_of_role(i);
        let r = graph.add_role();
        attach_users(
            &mut graph,
            &mut rng,
            r,
            user_range(d),
            config.role_user_degree,
        )?;
        truth.permless_roles.push(r);
    }
    for i in 0..plan.single_user_roles {
        let d = dept_of_role(i);
        let r = graph.add_role();
        let (ulo, ulen) = user_range(d);
        let u = sample_distinct(&mut rng, ulo, ulen, 1)[0];
        graph.assign_user(r, UserId::from_index(u))?;
        attach_perms(
            &mut graph,
            &mut rng,
            r,
            perm_range(d),
            config.role_perm_degree,
        )?;
        truth.single_user_roles.push(r);
    }
    for i in 0..plan.single_permission_roles {
        let d = dept_of_role(i);
        let r = graph.add_role();
        attach_users(
            &mut graph,
            &mut rng,
            r,
            user_range(d),
            config.role_user_degree,
        )?;
        let (plo, plen) = perm_range(d);
        let p = sample_distinct(&mut rng, plo, plen, 1)[0];
        graph.grant_permission(r, PermissionId::from_index(p))?;
        truth.single_permission_roles.push(r);
    }
    for _ in 0..plan.standalone_roles {
        let r = graph.add_role();
        truth.standalone_roles.push(r);
    }

    finish_org(&mut rng, graph, truth, &healthy, &catch_all, config)
}

/// Generates the same *family* of organizations as [`generate_org`], but
/// with per-role RNG streams so edge sampling parallelizes over `threads`
/// worker threads.
///
/// Each role (in construction order) draws its degree and edge endpoints
/// from its own seeded stream (see [`crate::stream::stream_rng`]), so for
/// a given `config` the output is byte-identical at every `threads`
/// value. The cheap sequential phases — graph assembly, the
/// duplicate/similar transforms and the orphan sweeps — draw from the
/// planner stream. The output is *not* byte-identical to
/// [`generate_org`] (which threads one RNG through everything); it
/// samples from the same distribution, with the same exact-count
/// construction guarantees.
///
/// # Panics
///
/// Same configuration panics as [`generate_org`].
pub fn generate_org_with(config: OrgConfig, threads: usize) -> GeneratedOrg {
    build_org_with(config, threads).expect("planted ids are in range by construction")
}

/// Fallible body of [`generate_org_with`] (see [`build_org`]).
fn build_org_with(config: OrgConfig, threads: usize) -> rolediet_model::Result<GeneratedOrg> {
    let plan = config.plan;
    check_config(&config);

    let n_depts = config.departments;
    let base_users = n_depts * config.users_per_department;
    let base_perms = n_depts * config.permissions_per_department;
    let healthy_total = n_depts * config.healthy_roles_per_department;

    let user_range = |d: usize| (d * config.users_per_department, config.users_per_department);
    let perm_range = |d: usize| {
        (
            d * config.permissions_per_department,
            config.permissions_per_department,
        )
    };

    // Construction-order role plan: what kind of role sits at each index,
    // and in which department. Derived without randomness.
    #[derive(Clone, Copy)]
    enum Kind {
        CatchAll(usize),
        Healthy(usize),
        Userless(usize),
        Permless(usize),
        SingleUser(usize),
        SinglePerm(usize),
        Standalone,
    }
    let mut kinds: Vec<Kind> = Vec::new();
    kinds.extend((0..n_depts).map(Kind::CatchAll));
    kinds.extend((0..healthy_total).map(|i| Kind::Healthy(i % n_depts)));
    kinds.extend((0..plan.userless_roles).map(|i| Kind::Userless(i % n_depts)));
    kinds.extend((0..plan.permless_roles).map(|i| Kind::Permless(i % n_depts)));
    kinds.extend((0..plan.single_user_roles).map(|i| Kind::SingleUser(i % n_depts)));
    kinds.extend((0..plan.single_permission_roles).map(|i| Kind::SinglePerm(i % n_depts)));
    kinds.extend((0..plan.standalone_roles).map(|_| Kind::Standalone));

    // Role i samples its endpoints from stream 1 + i (0 is the planner).
    // Draw order within a stream mirrors the sequential generator: user
    // side first, then permission side.
    let (umin, umax) = config.role_user_degree;
    let (pmin, pmax) = config.role_perm_degree;
    let edges: Vec<(Vec<usize>, Vec<usize>)> = par_map_rows(kinds.len(), threads, |range| {
        range
            .map(|i| {
                let mut rng = stream_rng(config.seed, 1 + i as u64);
                let users_of = |rng: &mut StdRng, d: usize, k: Option<usize>| {
                    let (lo, len) = user_range(d);
                    let k = k.unwrap_or_else(|| rng.gen_range(umin..=umax));
                    sample_distinct(rng, lo, len, k)
                };
                let perms_of = |rng: &mut StdRng, d: usize, k: Option<usize>| {
                    let (lo, len) = perm_range(d);
                    let k = k.unwrap_or_else(|| rng.gen_range(pmin..=pmax));
                    sample_distinct(rng, lo, len, k)
                };
                match kinds[i] {
                    Kind::CatchAll(d) => (
                        users_of(&mut rng, d, Some(2)),
                        perms_of(&mut rng, d, Some(2)),
                    ),
                    Kind::Healthy(d) => {
                        let u = users_of(&mut rng, d, None);
                        (u, perms_of(&mut rng, d, None))
                    }
                    Kind::Userless(d) => (Vec::new(), perms_of(&mut rng, d, None)),
                    Kind::Permless(d) => (users_of(&mut rng, d, None), Vec::new()),
                    Kind::SingleUser(d) => {
                        let u = users_of(&mut rng, d, Some(1));
                        (u, perms_of(&mut rng, d, None))
                    }
                    Kind::SinglePerm(d) => {
                        let u = users_of(&mut rng, d, None);
                        (u, perms_of(&mut rng, d, Some(1)))
                    }
                    Kind::Standalone => (Vec::new(), Vec::new()),
                }
            })
            .collect()
    });

    // Sequential graph assembly in construction order.
    let mut graph = TripartiteGraph::with_counts(
        base_users + plan.standalone_users,
        0,
        base_perms + plan.standalone_permissions,
    );
    let mut truth = OrgGroundTruth::default();
    let mut catch_all: Vec<RoleId> = Vec::with_capacity(n_depts);
    let mut healthy: Vec<RoleId> = Vec::with_capacity(healthy_total);
    for (kind, (users, perms)) in kinds.iter().zip(&edges) {
        let r = graph.add_role();
        for &u in users {
            graph.assign_user(r, UserId::from_index(u))?;
        }
        for &p in perms {
            graph.grant_permission(r, PermissionId::from_index(p))?;
        }
        match kind {
            Kind::CatchAll(_) => catch_all.push(r),
            Kind::Healthy(_) => healthy.push(r),
            Kind::Userless(_) => truth.userless_roles.push(r),
            Kind::Permless(_) => truth.permless_roles.push(r),
            Kind::SingleUser(_) => truth.single_user_roles.push(r),
            Kind::SinglePerm(_) => truth.single_permission_roles.push(r),
            Kind::Standalone => truth.standalone_roles.push(r),
        }
    }

    let mut planner = stream_rng(config.seed, 0);
    finish_org(&mut planner, graph, truth, &healthy, &catch_all, config)
}

/// Validates an [`OrgConfig`], panicking with knob guidance on misuse.
fn check_config(config: &OrgConfig) {
    assert!(
        config.role_user_degree.0 >= 2,
        "role_user_degree.0 must be >= 2"
    );
    assert!(
        config.role_perm_degree.0 >= 2,
        "role_perm_degree.0 must be >= 2"
    );
    assert!(
        config.role_user_degree.1 + 1 < config.users_per_department,
        "users_per_department must exceed role_user_degree.1 + 1"
    );
    assert!(
        config.role_perm_degree.1 + 1 < config.permissions_per_department,
        "permissions_per_department must exceed role_perm_degree.1 + 1"
    );
    assert!(
        config.role_user_degree.0 <= config.role_user_degree.1
            && config.role_perm_degree.0 <= config.role_perm_degree.1,
        "degree ranges must be non-empty"
    );
}

/// Shared tail of both generators: duplicate/similar transforms, orphan
/// sweeps and standalone-node bookkeeping.
fn finish_org(
    rng: &mut StdRng,
    mut graph: TripartiteGraph,
    mut truth: OrgGroundTruth,
    healthy: &[RoleId],
    catch_all: &[RoleId],
    config: OrgConfig,
) -> rolediet_model::Result<GeneratedOrg> {
    let plan = config.plan;
    let base_users = config.departments * config.users_per_department;
    let base_perms = config.departments * config.permissions_per_department;

    // --- duplicate / similar transforms ---------------------------------
    // User-side pool: healthy + single-permission roles (their user sides
    // are "normal"); permission-side pool: healthy + single-user roles.
    let mut user_pool: Vec<RoleId> = healthy
        .iter()
        .chain(truth.single_permission_roles.iter())
        .copied()
        .collect();
    shuffle(rng, &mut user_pool);
    let need_user = 2 * (plan.same_user_role_pairs + plan.similar_user_role_pairs);
    assert!(
        user_pool.len() >= need_user,
        "user-side pool too small: have {}, need {need_user} — raise \
         healthy_roles_per_department or single_permission_roles",
        user_pool.len()
    );
    let mut perm_pool: Vec<RoleId> = healthy
        .iter()
        .chain(truth.single_user_roles.iter())
        .copied()
        .collect();
    shuffle(rng, &mut perm_pool);
    let need_perm = 2 * (plan.same_permission_role_pairs + plan.similar_permission_role_pairs);
    assert!(
        perm_pool.len() >= need_perm,
        "permission-side pool too small: have {}, need {need_perm} — raise \
         healthy_roles_per_department or single_user_roles",
        perm_pool.len()
    );

    // Pairs are drawn by index: the pool-size asserts above make every
    // `2 * i + 1` access in range by construction, so no panicking
    // iterator plumbing is needed.
    for i in 0..plan.same_user_role_pairs {
        let (a, b) = (user_pool[2 * i], user_pool[2 * i + 1]);
        copy_users(&mut graph, a, b)?;
        truth.same_user_pairs.push(ordered(a, b));
    }
    let uoff = 2 * plan.same_user_role_pairs;
    for i in 0..plan.similar_user_role_pairs {
        let (a, b) = (user_pool[uoff + 2 * i], user_pool[uoff + 2 * i + 1]);
        copy_users(&mut graph, a, b)?;
        perturb_user_side(&mut graph, rng, b, base_users)?;
        truth.similar_user_pairs.push(ordered(a, b));
    }
    for i in 0..plan.same_permission_role_pairs {
        let (a, b) = (perm_pool[2 * i], perm_pool[2 * i + 1]);
        copy_perms(&mut graph, a, b)?;
        truth.same_permission_pairs.push(ordered(a, b));
    }
    let poff = 2 * plan.same_permission_role_pairs;
    for i in 0..plan.similar_permission_role_pairs {
        let (a, b) = (perm_pool[poff + 2 * i], perm_pool[poff + 2 * i + 1]);
        copy_perms(&mut graph, a, b)?;
        perturb_perm_side(&mut graph, rng, b, base_perms)?;
        truth.similar_permission_pairs.push(ordered(a, b));
    }

    // --- orphan sweeps ---------------------------------------------------
    for u in 0..base_users {
        let uid = UserId::from_index(u);
        if graph.roles_of_user(uid).next().is_none() {
            let d = u / config.users_per_department;
            graph.assign_user(catch_all[d], uid)?;
        }
    }
    for p in 0..base_perms {
        let pid = PermissionId::from_index(p);
        if graph.roles_of_permission(pid).next().is_none() {
            let d = p / config.permissions_per_department;
            graph.grant_permission(catch_all[d], pid)?;
        }
    }

    // --- standalone nodes -------------------------------------------------
    for u in base_users..base_users + plan.standalone_users {
        truth.standalone_users.push(UserId::from_index(u));
    }
    for p in base_perms..base_perms + plan.standalone_permissions {
        truth
            .standalone_permissions
            .push(PermissionId::from_index(p));
    }

    Ok(GeneratedOrg {
        graph,
        truth,
        config,
    })
}

fn ordered(a: RoleId, b: RoleId) -> (RoleId, RoleId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn shuffle<T>(rng: &mut StdRng, v: &mut [T]) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

fn attach_users(
    graph: &mut TripartiteGraph,
    rng: &mut StdRng,
    role: RoleId,
    (lo, len): (usize, usize),
    (dmin, dmax): (usize, usize),
) -> rolediet_model::Result<()> {
    let k = rng.gen_range(dmin..=dmax);
    for u in sample_distinct(rng, lo, len, k) {
        graph.assign_user(role, UserId::from_index(u))?;
    }
    Ok(())
}

fn attach_perms(
    graph: &mut TripartiteGraph,
    rng: &mut StdRng,
    role: RoleId,
    (lo, len): (usize, usize),
    (dmin, dmax): (usize, usize),
) -> rolediet_model::Result<()> {
    let k = rng.gen_range(dmin..=dmax);
    for p in sample_distinct(rng, lo, len, k) {
        graph.grant_permission(role, PermissionId::from_index(p))?;
    }
    Ok(())
}

/// Replaces `b`'s user set with a copy of `a`'s.
fn copy_users(graph: &mut TripartiteGraph, a: RoleId, b: RoleId) -> rolediet_model::Result<()> {
    let old: Vec<UserId> = graph.users_of(b).collect();
    for u in old {
        graph.revoke_user(b, u)?;
    }
    let src: Vec<UserId> = graph.users_of(a).collect();
    for u in src {
        graph.assign_user(b, u)?;
    }
    Ok(())
}

/// Replaces `b`'s permission set with a copy of `a`'s.
fn copy_perms(graph: &mut TripartiteGraph, a: RoleId, b: RoleId) -> rolediet_model::Result<()> {
    let old: Vec<PermissionId> = graph.permissions_of(b).collect();
    for p in old {
        graph.revoke_permission(b, p)?;
    }
    let src: Vec<PermissionId> = graph.permissions_of(a).collect();
    for p in src {
        graph.grant_permission(b, p)?;
    }
    Ok(())
}

/// Flips exactly one user edge of `role`: removes one user if the set has
/// more than 2 members, otherwise adds a user not currently assigned.
fn perturb_user_side(
    graph: &mut TripartiteGraph,
    rng: &mut StdRng,
    role: RoleId,
    base_users: usize,
) -> rolediet_model::Result<()> {
    let members: Vec<UserId> = graph.users_of(role).collect();
    if members.len() > 2 {
        let victim = members[rng.gen_range(0..members.len())];
        graph.revoke_user(role, victim)?;
    } else {
        loop {
            let u = UserId::from_index(rng.gen_range(0..base_users));
            if !graph.has_user(role, u) {
                graph.assign_user(role, u)?;
                break;
            }
        }
    }
    Ok(())
}

/// Flips exactly one permission edge of `role` (same policy as
/// [`perturb_user_side`]).
fn perturb_perm_side(
    graph: &mut TripartiteGraph,
    rng: &mut StdRng,
    role: RoleId,
    base_perms: usize,
) -> rolediet_model::Result<()> {
    let members: Vec<PermissionId> = graph.permissions_of(role).collect();
    if members.len() > 2 {
        let victim = members[rng.gen_range(0..members.len())];
        graph.revoke_permission(role, victim)?;
    } else {
        loop {
            let p = PermissionId::from_index(rng.gen_range(0..base_perms));
            if !graph.has_permission(role, p) {
                graph.grant_permission(role, p)?;
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan() -> InefficiencyPlan {
        InefficiencyPlan {
            standalone_users: 5,
            standalone_permissions: 11,
            standalone_roles: 2,
            userless_roles: 7,
            permless_roles: 3,
            single_user_roles: 6,
            single_permission_roles: 8,
            same_user_role_pairs: 4,
            same_permission_role_pairs: 3,
            similar_user_role_pairs: 5,
            similar_permission_role_pairs: 2,
        }
    }

    fn generate_small(seed: u64) -> GeneratedOrg {
        generate_org(OrgConfig {
            plan: small_plan(),
            seed,
            ..OrgConfig::default()
        })
    }

    #[test]
    fn determinism() {
        let a = generate_small(9);
        let b = generate_small(9);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.truth, b.truth);
        let c = generate_small(10);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn graph_is_consistent() {
        let org = generate_small(1);
        org.graph.validate().unwrap();
    }

    #[test]
    fn planted_standalone_counts_are_exact() {
        let org = generate_small(2);
        let g = &org.graph;
        // Exactly the planted users have zero roles.
        let zero_users: Vec<UserId> = (0..g.n_users())
            .map(UserId::from_index)
            .filter(|&u| g.roles_of_user(u).next().is_none())
            .collect();
        assert_eq!(zero_users, org.truth.standalone_users);
        assert_eq!(zero_users.len(), 5);
        let zero_perms: Vec<PermissionId> = (0..g.n_permissions())
            .map(PermissionId::from_index)
            .filter(|&p| g.roles_of_permission(p).next().is_none())
            .collect();
        assert_eq!(zero_perms, org.truth.standalone_permissions);
        assert_eq!(zero_perms.len(), 11);
    }

    #[test]
    fn planted_role_degree_counts_are_exact() {
        let org = generate_small(3);
        let g = &org.graph;
        let mut userless = Vec::new();
        let mut permless = Vec::new();
        let mut standalone = Vec::new();
        let mut single_user = Vec::new();
        let mut single_perm = Vec::new();
        for r in (0..g.n_roles()).map(RoleId::from_index) {
            let (du, dp) = (g.user_degree(r), g.permission_degree(r));
            match (du, dp) {
                (0, 0) => standalone.push(r),
                (0, _) => userless.push(r),
                (_, 0) => permless.push(r),
                _ => {}
            }
            if du == 1 {
                single_user.push(r);
            }
            if dp == 1 {
                single_perm.push(r);
            }
        }
        assert_eq!(standalone, org.truth.standalone_roles);
        assert_eq!(userless, org.truth.userless_roles);
        assert_eq!(permless, org.truth.permless_roles);
        assert_eq!(single_user, org.truth.single_user_roles);
        assert_eq!(single_perm, org.truth.single_permission_roles);
    }

    #[test]
    fn planted_duplicate_pairs_are_identical() {
        let org = generate_small(4);
        let g = &org.graph;
        assert_eq!(org.truth.same_user_pairs.len(), 4);
        for &(a, b) in &org.truth.same_user_pairs {
            assert_eq!(
                g.users_of(a).collect::<Vec<_>>(),
                g.users_of(b).collect::<Vec<_>>()
            );
        }
        assert_eq!(org.truth.same_permission_pairs.len(), 3);
        for &(a, b) in &org.truth.same_permission_pairs {
            assert_eq!(
                g.permissions_of(a).collect::<Vec<_>>(),
                g.permissions_of(b).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn planted_similar_pairs_are_hamming_one() {
        let org = generate_small(5);
        let ruam = org.graph.ruam_sparse();
        for &(a, b) in &org.truth.similar_user_pairs {
            assert_eq!(
                rolediet_matrix::RowMatrix::row_hamming(&ruam, a.index(), b.index()),
                1
            );
        }
        let rpam = org.graph.rpam_sparse();
        for &(a, b) in &org.truth.similar_permission_pairs {
            assert_eq!(
                rolediet_matrix::RowMatrix::row_hamming(&rpam, a.index(), b.index()),
                1
            );
        }
    }

    #[test]
    fn similar_transform_never_creates_degree_anomalies() {
        let org = generate_small(6);
        let g = &org.graph;
        for &(a, b) in &org.truth.similar_user_pairs {
            assert!(g.user_degree(a) >= 2);
            assert!(g.user_degree(b) >= 2, "perturbation must keep >= 2 users");
        }
        for &(a, b) in &org.truth.similar_permission_pairs {
            assert!(g.permission_degree(a) >= 2);
            assert!(g.permission_degree(b) >= 2);
        }
    }

    #[test]
    fn node_totals_match_config() {
        let org = generate_small(7);
        let cfg = org.config;
        assert_eq!(
            org.graph.n_users(),
            cfg.departments * cfg.users_per_department + cfg.plan.standalone_users
        );
        assert_eq!(
            org.graph.n_permissions(),
            cfg.departments * cfg.permissions_per_department + cfg.plan.standalone_permissions
        );
        let expected_roles = cfg.departments // catch-alls
            + cfg.departments * cfg.healthy_roles_per_department
            + cfg.plan.userless_roles
            + cfg.plan.permless_roles
            + cfg.plan.single_user_roles
            + cfg.plan.single_permission_roles
            + cfg.plan.standalone_roles;
        assert_eq!(org.graph.n_roles(), expected_roles);
    }

    #[test]
    #[should_panic(expected = "pool too small")]
    fn pool_exhaustion_panics_with_guidance() {
        generate_org(OrgConfig {
            departments: 1,
            healthy_roles_per_department: 2,
            plan: InefficiencyPlan {
                same_user_role_pairs: 50,
                ..InefficiencyPlan::default()
            },
            ..OrgConfig::default()
        });
    }

    #[test]
    fn empty_plan_has_no_anomalies() {
        let org = generate_org(OrgConfig {
            seed: 8,
            ..OrgConfig::default()
        });
        let g = &org.graph;
        for r in (0..g.n_roles()).map(RoleId::from_index) {
            assert!(g.user_degree(r) >= 2, "role {r} user degree");
            assert!(g.permission_degree(r) >= 2, "role {r} perm degree");
        }
        for u in (0..g.n_users()).map(UserId::from_index) {
            assert!(g.roles_of_user(u).next().is_some(), "user {u} orphaned");
        }
        for p in (0..g.n_permissions()).map(PermissionId::from_index) {
            assert!(
                g.roles_of_permission(p).next().is_some(),
                "permission {p} orphaned"
            );
        }
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = StdRng::seed_from_u64(0);
        for (lo, len, k) in [(0, 10, 10), (5, 100, 3), (0, 50, 40)] {
            let s = sample_distinct(&mut rng, lo, len, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "distinct");
            assert!(s.iter().all(|&v| v >= lo && v < lo + len));
        }
    }
}
