//! The paper's synthetic RUAM/RPAM generator (Section IV-A).
//!
//! > "the generator depends on several key parameters, including the
//! > number of roles (rows in the matrix), the number of users (columns in
//! > the matrix), the proportion of the number of roles in clusters
//! > relative to the total number of roles, and the maximum number of
//! > identical roles within a cluster."
//!
//! The evaluation fixes the cluster proportion to 0.2 and the maximum
//! cluster size to 10; those are the defaults here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rolediet_matrix::parallel::par_map_rows;
use rolediet_matrix::{BitMatrix, BitVec, CsrMatrix, SignatureIndex};

use crate::stream::stream_rng;

/// Configuration of the synthetic matrix generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixGenConfig {
    /// Number of rows (roles).
    pub roles: usize,
    /// Number of columns (users for RUAM, permissions for RPAM).
    pub users: usize,
    /// Fraction of rows that belong to planted duplicate clusters
    /// (paper: 0.2).
    pub cluster_fraction: f64,
    /// Maximum number of identical rows within one planted cluster
    /// (paper: 10). Cluster sizes are drawn uniformly from `2..=max`.
    pub max_cluster_size: usize,
    /// Per-cell probability of a 1 in the random row templates.
    pub density: f64,
    /// Number of members per planted cluster that are perturbed by exactly
    /// one bit flip instead of staying identical — plants "similar"
    /// (Hamming-1) pairs for the T5 experiments. `0` reproduces the
    /// paper's generator exactly.
    pub perturbed_per_cluster: usize,
    /// RNG seed; equal configs generate identical matrices.
    pub seed: u64,
}

impl MatrixGenConfig {
    /// The paper's configuration for a `roles × users` matrix:
    /// `cluster_fraction = 0.2`, `max_cluster_size = 10`.
    pub fn paper(roles: usize, users: usize, seed: u64) -> Self {
        MatrixGenConfig {
            roles,
            users,
            cluster_fraction: 0.2,
            max_cluster_size: 10,
            density: 0.05,
            perturbed_per_cluster: 0,
            seed,
        }
    }
}

impl Default for MatrixGenConfig {
    fn default() -> Self {
        MatrixGenConfig::paper(1_000, 1_000, 0)
    }
}

/// Ground truth accompanying a generated matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixGroundTruth {
    /// Row groups planted as identical (before accounting for accidental
    /// collisions between random rows), sorted by first member.
    pub planted_groups: Vec<Vec<usize>>,
    /// *Exact* duplicate groups of the final matrix, computed post-hoc by
    /// verified signature grouping — includes both planted groups and any
    /// coincidental duplicates among the random rows. This is what an
    /// exact detector must return, bit for bit.
    pub exact_duplicate_groups: Vec<Vec<usize>>,
    /// Pairs planted at Hamming distance exactly 1 (a perturbed member
    /// with its cluster template), `i < j`, sorted.
    pub planted_similar_pairs: Vec<(usize, usize)>,
}

/// A generated matrix with its ground truth and the config that made it.
#[derive(Debug, Clone)]
pub struct GeneratedMatrix {
    /// The dense matrix (rows = roles).
    pub dense: BitMatrix,
    /// Ground truth for evaluating detectors.
    pub truth: MatrixGroundTruth,
    /// The generating configuration.
    pub config: MatrixGenConfig,
}

impl GeneratedMatrix {
    /// The same matrix in sparse form.
    pub fn sparse(&self) -> CsrMatrix {
        CsrMatrix::from_dense(&self.dense)
    }
}

/// Generates a matrix according to `config`.
///
/// Planted clusters are placed at random row positions (the whole row
/// order is shuffled after generation), so detectors cannot exploit
/// layout.
///
/// # Panics
///
/// Panics if `cluster_fraction` is outside `[0, 1]`, `density` outside
/// `[0, 1]`, `max_cluster_size < 2`, or
/// `perturbed_per_cluster >= max_cluster_size` (a cluster must keep at
/// least one unperturbed copy of its template).
///
/// # Examples
///
/// ```
/// use rolediet_synth::{generate_matrix, MatrixGenConfig};
///
/// let gen = generate_matrix(MatrixGenConfig::paper(100, 50, 42));
/// assert_eq!(rolediet_matrix::RowMatrix::rows(&gen.dense), 100);
/// // About 20 rows sit in duplicate clusters.
/// let planted: usize = gen.truth.planted_groups.iter().map(Vec::len).sum();
/// assert!(planted >= 14 && planted <= 20);
/// ```
pub fn generate_matrix(config: MatrixGenConfig) -> GeneratedMatrix {
    assert!(
        (0.0..=1.0).contains(&config.cluster_fraction),
        "cluster_fraction must be in [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&config.density),
        "density must be in [0, 1]"
    );
    assert!(
        config.max_cluster_size >= 2,
        "max_cluster_size must be >= 2"
    );
    assert!(
        config.perturbed_per_cluster < config.max_cluster_size,
        "perturbed_per_cluster must leave at least one identical copy"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.roles;
    let cols = config.users;
    let clustered_target = (n as f64 * config.cluster_fraction).floor() as usize;

    let random_row = |rng: &mut StdRng| -> BitVec { random_row_with(rng, cols, config.density) };

    // Build rows in construction order, then shuffle.
    let mut rows: Vec<BitVec> = Vec::with_capacity(n);
    let mut planted_groups_pre: Vec<Vec<usize>> = Vec::new();
    let mut planted_similar_pre: Vec<(usize, usize)> = Vec::new();
    let mut remaining = clustered_target.min(n);
    while remaining >= 2 {
        let size = rng.gen_range(2..=config.max_cluster_size).min(remaining);
        if size < 2 {
            break;
        }
        let template = random_row(&mut rng);
        let perturbed = config.perturbed_per_cluster.min(size - 1);
        let mut group = Vec::with_capacity(size - perturbed);
        for k in 0..size {
            let idx = rows.len();
            if k >= size - perturbed {
                // Perturb by flipping exactly one bit of the template.
                let mut row = template.clone();
                let flip = rng.gen_range(0..cols);
                row.set(flip, !row.get(flip));
                let anchor = group[0];
                planted_similar_pre.push((anchor, idx));
                rows.push(row);
            } else {
                group.push(idx);
                rows.push(template.clone());
            }
        }
        if group.len() >= 2 {
            planted_groups_pre.push(group);
        }
        remaining -= size;
    }
    while rows.len() < n {
        rows.push(random_row(&mut rng));
    }

    finish_matrix(
        &mut rng,
        rows,
        planted_groups_pre,
        planted_similar_pre,
        config,
    )
}

/// Generates the same *family* of matrices as [`generate_matrix`], but
/// with per-unit RNG streams so row construction parallelizes over
/// `threads` worker threads.
///
/// Every planted cluster and every random filler row draws from its own
/// seeded stream (see [`crate::stream::stream_rng`]), fixed by
/// construction order — so for a given `config` the output is
/// byte-identical at every `threads` value. The output is *not*
/// byte-identical to [`generate_matrix`] (which threads one RNG through
/// the whole construction); it samples from the same distribution and
/// carries the same exact ground truth.
///
/// # Panics
///
/// Same configuration panics as [`generate_matrix`].
pub fn generate_matrix_with(config: MatrixGenConfig, threads: usize) -> GeneratedMatrix {
    assert!(
        (0.0..=1.0).contains(&config.cluster_fraction),
        "cluster_fraction must be in [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&config.density),
        "density must be in [0, 1]"
    );
    assert!(
        config.max_cluster_size >= 2,
        "max_cluster_size must be >= 2"
    );
    assert!(
        config.perturbed_per_cluster < config.max_cluster_size,
        "perturbed_per_cluster must leave at least one identical copy"
    );
    let n = config.roles;
    let cols = config.users;
    let clustered_target = (n as f64 * config.cluster_fraction).floor() as usize;

    // Cluster *plan* (sizes only) is cheap, so it comes sequentially from
    // the planner stream; cluster contents are generated in parallel below.
    let mut planner = stream_rng(config.seed, 0);
    let mut sizes: Vec<usize> = Vec::new();
    let mut remaining = clustered_target.min(n);
    while remaining >= 2 {
        let size = planner
            .gen_range(2..=config.max_cluster_size)
            .min(remaining);
        if size < 2 {
            break;
        }
        sizes.push(size);
        remaining -= size;
    }
    let mut starts = Vec::with_capacity(sizes.len());
    let mut clustered = 0usize;
    for &s in &sizes {
        starts.push(clustered);
        clustered += s;
    }
    let n_clusters = sizes.len();
    let filler = n - clustered;

    // Cluster c draws from stream 1 + c; filler row f from
    // stream 1 + n_clusters + f. Construction-order row indices are fully
    // determined by the plan, so each unit labels its own ground truth.
    struct ClusterRows {
        rows: Vec<BitVec>,
        group: Vec<usize>,
        similar: Vec<(usize, usize)>,
    }
    let per_cluster: Vec<ClusterRows> = par_map_rows(n_clusters, threads, |range| {
        range
            .map(|c| {
                let mut rng = stream_rng(config.seed, 1 + c as u64);
                let size = sizes[c];
                let start = starts[c];
                let template = random_row_with(&mut rng, cols, config.density);
                let perturbed = config.perturbed_per_cluster.min(size - 1);
                let mut rows = Vec::with_capacity(size);
                let mut group = Vec::with_capacity(size - perturbed);
                let mut similar = Vec::new();
                for k in 0..size {
                    let idx = start + k;
                    if k >= size - perturbed {
                        let mut row = template.clone();
                        let flip = rng.gen_range(0..cols);
                        row.set(flip, !row.get(flip));
                        similar.push((group[0], idx));
                        rows.push(row);
                    } else {
                        group.push(idx);
                        rows.push(template.clone());
                    }
                }
                ClusterRows {
                    rows,
                    group,
                    similar,
                }
            })
            .collect()
    });
    let filler_rows: Vec<BitVec> = par_map_rows(filler, threads, |range| {
        range
            .map(|f| {
                let mut rng = stream_rng(config.seed, 1 + (n_clusters + f) as u64);
                random_row_with(&mut rng, cols, config.density)
            })
            .collect()
    });

    let mut rows: Vec<BitVec> = Vec::with_capacity(n);
    let mut planted_groups_pre: Vec<Vec<usize>> = Vec::new();
    let mut planted_similar_pre: Vec<(usize, usize)> = Vec::new();
    for cluster in per_cluster {
        rows.extend(cluster.rows);
        if cluster.group.len() >= 2 {
            planted_groups_pre.push(cluster.group);
        }
        planted_similar_pre.extend(cluster.similar);
    }
    rows.extend(filler_rows);

    finish_matrix(
        &mut planner,
        rows,
        planted_groups_pre,
        planted_similar_pre,
        config,
    )
}

/// One random row: `cols` independent Bernoulli(`density`) cells.
fn random_row_with(rng: &mut StdRng, cols: usize, density: f64) -> BitVec {
    let mut v = BitVec::new(cols);
    for c in 0..cols {
        if rng.gen_bool(density) {
            v.set(c, true);
        }
    }
    v
}

/// Shared tail of both generators: shuffle row positions, remap the
/// construction-order ground truth through the permutation, and compute
/// the post-hoc exact duplicate groups.
fn finish_matrix(
    rng: &mut StdRng,
    rows: Vec<BitVec>,
    planted_groups_pre: Vec<Vec<usize>>,
    planted_similar_pre: Vec<(usize, usize)>,
    config: MatrixGenConfig,
) -> GeneratedMatrix {
    let n = config.roles;
    let cols = config.users;
    // Fisher-Yates shuffle of row positions, tracked by a permutation.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    // perm[new_pos] = old_pos; we need old→new to remap ground truth.
    let mut new_pos = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        new_pos[old] = new;
    }
    let shuffled: Vec<BitVec> = perm.iter().map(|&old| rows[old].clone()).collect();
    let dense = BitMatrix::from_bitvec_rows(cols, &shuffled)
        .expect("generated rows always have the right width");

    let mut planted_groups: Vec<Vec<usize>> = planted_groups_pre
        .into_iter()
        .map(|g| {
            let mut g: Vec<usize> = g.into_iter().map(|i| new_pos[i]).collect();
            g.sort_unstable();
            g
        })
        .collect();
    planted_groups.sort_unstable_by_key(|g| g[0]);
    let mut planted_similar_pairs: Vec<(usize, usize)> = planted_similar_pre
        .into_iter()
        .map(|(a, b)| {
            let (a, b) = (new_pos[a], new_pos[b]);
            if a < b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect();
    planted_similar_pairs.sort_unstable();

    let exact_duplicate_groups = SignatureIndex::build(&dense).groups_verified(&dense);

    GeneratedMatrix {
        dense,
        truth: MatrixGroundTruth {
            planted_groups,
            exact_duplicate_groups,
            planted_similar_pairs,
        },
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolediet_matrix::RowMatrix;

    #[test]
    fn shape_and_determinism() {
        let cfg = MatrixGenConfig::paper(200, 80, 7);
        let a = generate_matrix(cfg);
        let b = generate_matrix(cfg);
        assert_eq!(a.dense, b.dense);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.dense.rows(), 200);
        assert_eq!(a.dense.cols(), 80);
        let c = generate_matrix(MatrixGenConfig::paper(200, 80, 8));
        assert_ne!(a.dense, c.dense, "different seeds differ");
    }

    #[test]
    fn planted_rows_are_identical() {
        let gen = generate_matrix(MatrixGenConfig::paper(500, 200, 3));
        for group in &gen.truth.planted_groups {
            assert!(group.len() >= 2);
            assert!(group.len() <= 10);
            let first = group[0];
            for &m in &group[1..] {
                assert!(gen.dense.rows_equal(first, m));
            }
        }
    }

    #[test]
    fn cluster_fraction_is_respected() {
        let gen = generate_matrix(MatrixGenConfig::paper(1_000, 100, 9));
        let planted: usize = gen.truth.planted_groups.iter().map(Vec::len).sum();
        // Target is 200; the last cluster may undershoot by at most
        // max_cluster_size - 1.
        assert!(planted <= 200);
        assert!(planted > 200 - 10, "planted {planted}");
    }

    #[test]
    fn exact_groups_cover_planted_groups() {
        let gen = generate_matrix(MatrixGenConfig::paper(300, 150, 11));
        // Every planted group must be a subset of some exact group.
        for planted in &gen.truth.planted_groups {
            let found = gen
                .truth
                .exact_duplicate_groups
                .iter()
                .any(|exact| planted.iter().all(|m| exact.contains(m)));
            assert!(found, "planted group {planted:?} not covered");
        }
    }

    #[test]
    fn perturbed_members_plant_hamming_one_pairs() {
        let cfg = MatrixGenConfig {
            perturbed_per_cluster: 1,
            ..MatrixGenConfig::paper(300, 100, 5)
        };
        let gen = generate_matrix(cfg);
        assert!(!gen.truth.planted_similar_pairs.is_empty());
        for &(a, b) in &gen.truth.planted_similar_pairs {
            assert!(a < b);
            assert_eq!(gen.dense.row_hamming(a, b), 1, "pair ({a},{b})");
        }
    }

    #[test]
    fn zero_cluster_fraction_plants_nothing() {
        let cfg = MatrixGenConfig {
            cluster_fraction: 0.0,
            ..MatrixGenConfig::paper(100, 50, 2)
        };
        let gen = generate_matrix(cfg);
        assert!(gen.truth.planted_groups.is_empty());
        assert!(gen.truth.planted_similar_pairs.is_empty());
    }

    #[test]
    fn sparse_view_matches_dense() {
        let gen = generate_matrix(MatrixGenConfig::paper(50, 64, 1));
        assert_eq!(gen.sparse().to_dense(), gen.dense);
    }

    #[test]
    fn density_controls_norms() {
        let sparse = generate_matrix(MatrixGenConfig {
            density: 0.01,
            cluster_fraction: 0.0,
            ..MatrixGenConfig::paper(200, 500, 4)
        });
        let dense = generate_matrix(MatrixGenConfig {
            density: 0.3,
            cluster_fraction: 0.0,
            ..MatrixGenConfig::paper(200, 500, 4)
        });
        let mean = |m: &BitMatrix| m.row_sums().iter().sum::<usize>() as f64 / 200.0;
        assert!(mean(&sparse.dense) < 15.0);
        assert!(mean(&dense.dense) > 100.0);
    }

    #[test]
    #[should_panic(expected = "cluster_fraction")]
    fn invalid_fraction_panics() {
        generate_matrix(MatrixGenConfig {
            cluster_fraction: 1.5,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "at least one identical copy")]
    fn perturb_must_leave_a_copy() {
        generate_matrix(MatrixGenConfig {
            perturbed_per_cluster: 10,
            ..Default::default()
        });
    }
}
