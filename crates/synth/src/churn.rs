//! Temporal churn simulation: how inefficiencies *accumulate*.
//!
//! The paper's premise is that RBAC data degrades "due to the primarily
//! manual nature of data management … coupled with a lack of oversight":
//! leavers stay in the directory, decommissioned assets keep their
//! permission entries, departments clone each other's roles. Where
//! [`org_gen`](crate::org_gen) *plants* inefficiencies at exact counts,
//! this module *grows* them through a stream of realistic events, so the
//! detection pipeline can be exercised against organically messy data and
//! the periodic-cleanup loop against a moving target.
//!
//! Every event type maps to the inefficiency it eventually causes:
//!
//! | event | eventual inefficiency |
//! |---|---|
//! | `Leave` (edges removed, account kept) | T1 standalone user |
//! | `DecommissionAsset` (grants removed, entry kept) | T1 standalone permission |
//! | `CloneRole` (department copies a role) | T4 duplicate roles |
//! | `DriftRole` (one edge added/removed after a clone) | T5 similar roles |
//! | `AbandonRole` (users unassigned, role kept) | T2 userless role |
//! | `CreateRole` without follow-up | T2/T3 skeleton roles |
//!
//! Every mutation an event applies is also recorded as a
//! [`rolediet_model::EdgeDelta`], so the stream a simulation produced can
//! be [drained](ChurnSimulator::drain_deltas) and either replayed onto a
//! copy of the starting graph (bit-for-bit reproduction) or fed to an
//! incremental consumer that maintains derived state event by event.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rolediet_model::{EdgeDelta, PermissionId, RoleId, TripartiteGraph, UserId};

/// One simulated administrative event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A new user joined and was assigned to existing roles.
    Hire(UserId),
    /// A user left; their role assignments were removed but the account
    /// entry was not cleaned up.
    Leave(UserId),
    /// A new role was created with a few permissions and users.
    CreateRole(RoleId),
    /// A role was created as a copy of an existing one (same users, same
    /// permissions) — the cross-department duplication the paper calls
    /// out.
    CloneRole {
        /// The copied role.
        source: RoleId,
        /// The new duplicate.
        clone: RoleId,
    },
    /// One edge of a role changed (a user or permission added or
    /// removed).
    DriftRole(RoleId),
    /// All users were unassigned from a role, but the role (and its
    /// permission grants) remained.
    AbandonRole(RoleId),
    /// An asset was decommissioned: a permission lost all its role
    /// grants but kept its entry.
    DecommissionAsset(PermissionId),
    /// A new permission was registered and granted to a role.
    RegisterPermission(PermissionId),
}

/// Relative weights of the event types (need not sum to anything).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnWeights {
    /// Weight of [`ChurnEvent::Hire`].
    pub hire: f64,
    /// Weight of [`ChurnEvent::Leave`].
    pub leave: f64,
    /// Weight of [`ChurnEvent::CreateRole`].
    pub create_role: f64,
    /// Weight of [`ChurnEvent::CloneRole`].
    pub clone_role: f64,
    /// Weight of [`ChurnEvent::DriftRole`].
    pub drift_role: f64,
    /// Weight of [`ChurnEvent::AbandonRole`].
    pub abandon_role: f64,
    /// Weight of [`ChurnEvent::DecommissionAsset`].
    pub decommission: f64,
    /// Weight of [`ChurnEvent::RegisterPermission`].
    pub register_permission: f64,
}

impl Default for ChurnWeights {
    fn default() -> Self {
        ChurnWeights {
            hire: 8.0,
            leave: 6.0,
            create_role: 2.0,
            clone_role: 1.0,
            drift_role: 4.0,
            abandon_role: 0.8,
            decommission: 1.5,
            register_permission: 3.0,
        }
    }
}

/// Churn simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Users at t = 0.
    pub initial_users: usize,
    /// Roles at t = 0.
    pub initial_roles: usize,
    /// Permissions at t = 0.
    pub initial_permissions: usize,
    /// Event mix.
    pub weights: ChurnWeights,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            initial_users: 120,
            initial_roles: 30,
            initial_permissions: 150,
            weights: ChurnWeights::default(),
            seed: 0,
        }
    }
}

/// An evolving RBAC graph driven by weighted random events.
///
/// # Examples
///
/// ```
/// use rolediet_synth::churn::{ChurnConfig, ChurnSimulator};
///
/// let mut sim = ChurnSimulator::new(ChurnConfig::default());
/// let events = sim.run(500);
/// assert_eq!(events.len(), 500);
/// sim.graph().validate().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct ChurnSimulator {
    graph: TripartiteGraph,
    rng: StdRng,
    weights: ChurnWeights,
    /// Users that left and were never rehired (planted T1 ground truth).
    departed: Vec<UserId>,
    /// Permissions decommissioned and never re-granted.
    decommissioned: Vec<PermissionId>,
    /// Clone events (T4 seeds; later drift may separate them).
    clones: Vec<(RoleId, RoleId)>,
    /// Edge deltas recorded by events since the last drain (the initial
    /// organization is *not* part of the stream — consumers snapshot the
    /// starting graph and replay from there).
    deltas: Vec<EdgeDelta>,
}

/// Flattens the weight struct into the event-order table `step` walks.
fn weight_table(w: &ChurnWeights) -> [f64; 8] {
    [
        w.hire,
        w.leave,
        w.create_role,
        w.clone_role,
        w.drift_role,
        w.abandon_role,
        w.decommission,
        w.register_permission,
    ]
}

/// Rejects weight tables the sampler cannot draw from: every weight must
/// be finite and non-negative, and at least one must be positive (an
/// all-zero table would panic inside `gen_range(0.0..0.0)`).
fn validate_weights(table: &[f64; 8]) {
    assert!(
        table.iter().all(|&t| t.is_finite() && t >= 0.0),
        "churn weights must be finite and non-negative: {table:?}"
    );
    assert!(
        table.iter().any(|&t| t > 0.0),
        "churn weights must include at least one positive weight"
    );
}

/// Weighted pick over `table` given `pick` drawn from `[0, Σtable)`:
/// walks the cumulative distribution, skipping zero-weight entries (they
/// must never be selected, even when floating-point subtraction leaves
/// `pick` exactly at a bucket boundary), and falls through to the *last
/// positive-weight* entry when accumulated rounding lets `pick` survive
/// the whole walk — never to an arbitrary default.
fn pick_kind(table: &[f64], mut pick: f64) -> usize {
    let mut last_positive = 0usize;
    for (i, &tw) in table.iter().enumerate() {
        if tw <= 0.0 {
            continue;
        }
        if pick < tw {
            return i;
        }
        pick -= tw;
        last_positive = i;
    }
    last_positive
}

impl ChurnSimulator {
    /// Builds the initial healthy organization and the simulator.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite, or if every
    /// weight is zero.
    pub fn new(config: ChurnConfig) -> Self {
        validate_weights(&weight_table(&config.weights));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut graph = TripartiteGraph::with_counts(
            config.initial_users,
            config.initial_roles,
            config.initial_permissions,
        );
        // Seed edges: every role gets 2..6 users and 2..5 permissions;
        // every user and permission is then swept onto some role.
        for r in 0..config.initial_roles {
            let rid = RoleId::from_index(r);
            for _ in 0..rng.gen_range(2..6) {
                let u = UserId::from_index(rng.gen_range(0..config.initial_users));
                graph.assign_user(rid, u).expect("in range");
            }
            for _ in 0..rng.gen_range(2..5) {
                let p = PermissionId::from_index(rng.gen_range(0..config.initial_permissions));
                graph.grant_permission(rid, p).expect("in range");
            }
        }
        for u in 0..config.initial_users {
            let uid = UserId::from_index(u);
            if graph.roles_of_user(uid).next().is_none() {
                let r = RoleId::from_index(u % config.initial_roles.max(1));
                graph.assign_user(r, uid).expect("in range");
            }
        }
        for p in 0..config.initial_permissions {
            let pid = PermissionId::from_index(p);
            if graph.roles_of_permission(pid).next().is_none() {
                let r = RoleId::from_index(p % config.initial_roles.max(1));
                graph.grant_permission(r, pid).expect("in range");
            }
        }
        ChurnSimulator {
            graph,
            rng,
            weights: config.weights,
            departed: Vec::new(),
            decommissioned: Vec::new(),
            clones: Vec::new(),
            deltas: Vec::new(),
        }
    }

    /// Wraps an existing organization (e.g. a
    /// [`profiles`](crate::profiles) graph) in a simulator so churn can
    /// be applied to it — the delta stream then starts from exactly the
    /// supplied graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no users, roles or permissions (every
    /// event needs nodes to pick from), or on an invalid weight table
    /// (see [`new`](Self::new)).
    pub fn from_graph(graph: TripartiteGraph, weights: ChurnWeights, seed: u64) -> Self {
        validate_weights(&weight_table(&weights));
        assert!(
            graph.n_users() > 0 && graph.n_roles() > 0 && graph.n_permissions() > 0,
            "from_graph requires at least one user, role and permission"
        );
        ChurnSimulator {
            graph,
            rng: StdRng::seed_from_u64(seed),
            weights,
            departed: Vec::new(),
            decommissioned: Vec::new(),
            clones: Vec::new(),
            deltas: Vec::new(),
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &TripartiteGraph {
        &self.graph
    }

    /// Edge deltas recorded since construction or the last
    /// [`drain_deltas`](Self::drain_deltas), in application order.
    pub fn deltas(&self) -> &[EdgeDelta] {
        &self.deltas
    }

    /// Takes the recorded edge deltas, leaving the buffer empty.
    /// Replaying the drained stream onto a copy of the graph as it stood
    /// at the previous drain reproduces the current graph bit-for-bit.
    pub fn drain_deltas(&mut self) -> Vec<EdgeDelta> {
        std::mem::take(&mut self.deltas)
    }

    /// Users that left and were never reassigned — guaranteed T1
    /// standalone users in the current graph.
    pub fn departed_users(&self) -> &[UserId] {
        &self.departed
    }

    /// Permissions decommissioned and never re-granted — guaranteed T1
    /// standalone permissions.
    pub fn decommissioned_permissions(&self) -> &[PermissionId] {
        &self.decommissioned
    }

    /// All clone events so far (T4 seeds; drift may have separated some
    /// pairs again).
    pub fn clone_events(&self) -> &[(RoleId, RoleId)] {
        &self.clones
    }

    /// Applies `steps` random events, returning them in order.
    pub fn run(&mut self, steps: usize) -> Vec<ChurnEvent> {
        (0..steps).map(|_| self.step()).collect()
    }

    /// Applies one random event.
    pub fn step(&mut self) -> ChurnEvent {
        let table = weight_table(&self.weights);
        // Constructors validated the table: total > 0, no negatives.
        let total: f64 = table.iter().sum();
        let pick = self.rng.gen_range(0.0..total);
        match pick_kind(&table, pick) {
            0 => self.hire(),
            1 => self.leave(),
            2 => self.create_role(),
            3 => self.clone_role(),
            4 => self.drift_role(),
            5 => self.abandon_role(),
            6 => self.decommission(),
            _ => self.register_permission(),
        }
    }

    fn random_role(&mut self) -> RoleId {
        RoleId::from_index(self.rng.gen_range(0..self.graph.n_roles()))
    }

    // Recording wrappers: apply the graph mutation and append the
    // matching delta — edge flips only when the edge actually changed,
    // so the recorded stream replays without no-ops.

    fn add_user_recorded(&mut self) -> UserId {
        let u = self.graph.add_user();
        self.deltas.push(EdgeDelta::AddUser);
        u
    }

    fn add_role_recorded(&mut self) -> RoleId {
        let r = self.graph.add_role();
        self.deltas.push(EdgeDelta::AddRole);
        r
    }

    fn add_permission_recorded(&mut self) -> PermissionId {
        let p = self.graph.add_permission();
        self.deltas.push(EdgeDelta::AddPermission);
        p
    }

    fn assign_recorded(&mut self, r: RoleId, u: UserId) {
        if self.graph.assign_user(r, u).expect("in range") {
            self.deltas.push(EdgeDelta::Assign {
                role: r.0,
                user: u.0,
            });
        }
    }

    fn revoke_recorded(&mut self, r: RoleId, u: UserId) {
        if self.graph.revoke_user(r, u).expect("in range") {
            self.deltas.push(EdgeDelta::Revoke {
                role: r.0,
                user: u.0,
            });
        }
    }

    fn grant_recorded(&mut self, r: RoleId, p: PermissionId) {
        if self.graph.grant_permission(r, p).expect("in range") {
            self.deltas.push(EdgeDelta::Grant {
                role: r.0,
                permission: p.0,
            });
        }
    }

    fn ungrant_recorded(&mut self, r: RoleId, p: PermissionId) {
        if self.graph.revoke_permission(r, p).expect("in range") {
            self.deltas.push(EdgeDelta::Ungrant {
                role: r.0,
                permission: p.0,
            });
        }
    }

    fn hire(&mut self) -> ChurnEvent {
        let u = self.add_user_recorded();
        let n = self.rng.gen_range(1..4);
        for _ in 0..n {
            let r = self.random_role();
            self.assign_recorded(r, u);
        }
        ChurnEvent::Hire(u)
    }

    fn leave(&mut self) -> ChurnEvent {
        // Pick an active (non-departed) user if possible.
        for _ in 0..16 {
            let u = UserId::from_index(self.rng.gen_range(0..self.graph.n_users()));
            let roles: Vec<RoleId> = self.graph.roles_of_user(u).collect();
            if roles.is_empty() {
                continue;
            }
            for r in roles {
                self.revoke_recorded(r, u);
            }
            // A drift event can reassign a departed user, letting them
            // leave a second time — record each user once so the
            // planted-T1 ground truth stays a set.
            if !self.departed.contains(&u) {
                self.departed.push(u);
            }
            return ChurnEvent::Leave(u);
        }
        // Everyone already departed — fall back to a hire.
        self.hire()
    }

    fn create_role(&mut self) -> ChurnEvent {
        let r = self.add_role_recorded();
        for _ in 0..self.rng.gen_range(1..4) {
            let p = PermissionId::from_index(self.rng.gen_range(0..self.graph.n_permissions()));
            self.grant_recorded(r, p);
        }
        // Half the time the creator forgets to assign users — a T2 seed.
        if self.rng.gen_bool(0.5) {
            for _ in 0..self.rng.gen_range(1..3) {
                let u = UserId::from_index(self.rng.gen_range(0..self.graph.n_users()));
                self.assign_recorded(r, u);
            }
        }
        ChurnEvent::CreateRole(r)
    }

    fn clone_role(&mut self) -> ChurnEvent {
        let source = self.random_role();
        let clone = self.add_role_recorded();
        let users: Vec<UserId> = self.graph.users_of(source).collect();
        let perms: Vec<PermissionId> = self.graph.permissions_of(source).collect();
        for u in users {
            self.assign_recorded(clone, u);
        }
        for p in perms {
            self.grant_recorded(clone, p);
        }
        self.clones.push((source, clone));
        ChurnEvent::CloneRole { source, clone }
    }

    fn drift_role(&mut self) -> ChurnEvent {
        let r = self.random_role();
        if self.rng.gen_bool(0.5) {
            // User-side drift.
            let users: Vec<UserId> = self.graph.users_of(r).collect();
            if !users.is_empty() && self.rng.gen_bool(0.5) {
                let victim = users[self.rng.gen_range(0..users.len())];
                self.revoke_recorded(r, victim);
            } else {
                let u = UserId::from_index(self.rng.gen_range(0..self.graph.n_users()));
                self.assign_recorded(r, u);
            }
        } else {
            let perms: Vec<PermissionId> = self.graph.permissions_of(r).collect();
            if !perms.is_empty() && self.rng.gen_bool(0.5) {
                let victim = perms[self.rng.gen_range(0..perms.len())];
                self.ungrant_recorded(r, victim);
            } else {
                let p = PermissionId::from_index(self.rng.gen_range(0..self.graph.n_permissions()));
                self.grant_recorded(r, p);
            }
        }
        ChurnEvent::DriftRole(r)
    }

    fn abandon_role(&mut self) -> ChurnEvent {
        let r = self.random_role();
        let users: Vec<UserId> = self.graph.users_of(r).collect();
        for u in users {
            self.revoke_recorded(r, u);
        }
        ChurnEvent::AbandonRole(r)
    }

    fn decommission(&mut self) -> ChurnEvent {
        for _ in 0..16 {
            let p = PermissionId::from_index(self.rng.gen_range(0..self.graph.n_permissions()));
            let roles: Vec<RoleId> = self.graph.roles_of_permission(p).collect();
            if roles.is_empty() {
                continue;
            }
            for r in roles {
                self.ungrant_recorded(r, p);
            }
            // Same dedup rationale as `leave`: a drift event can
            // re-grant a decommissioned permission.
            if !self.decommissioned.contains(&p) {
                self.decommissioned.push(p);
            }
            return ChurnEvent::DecommissionAsset(p);
        }
        self.register_permission()
    }

    fn register_permission(&mut self) -> ChurnEvent {
        let p = self.add_permission_recorded();
        let r = self.random_role();
        self.grant_recorded(r, p);
        ChurnEvent::RegisterPermission(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = ChurnSimulator::new(ChurnConfig::default());
        let mut b = ChurnSimulator::new(ChurnConfig::default());
        assert_eq!(a.run(200), b.run(200));
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn graph_stays_consistent_through_heavy_churn() {
        let mut sim = ChurnSimulator::new(ChurnConfig {
            seed: 5,
            ..ChurnConfig::default()
        });
        sim.run(2_000);
        sim.graph().validate().unwrap();
    }

    #[test]
    fn initial_org_is_clean() {
        let sim = ChurnSimulator::new(ChurnConfig::default());
        let g = sim.graph();
        for u in 0..g.n_users() {
            assert!(g.roles_of_user(UserId::from_index(u)).next().is_some());
        }
        for p in 0..g.n_permissions() {
            assert!(g
                .roles_of_permission(PermissionId::from_index(p))
                .next()
                .is_some());
        }
    }

    #[test]
    fn departed_users_are_standalone() {
        let mut sim = ChurnSimulator::new(ChurnConfig {
            seed: 9,
            ..ChurnConfig::default()
        });
        sim.run(1_000);
        let g = sim.graph();
        // Ground truth guarantee: a departed user stays standalone
        // (nothing ever reassigns an existing user except drift, which
        // can — so check the weaker, still useful property: most stay).
        let still_standalone = sim
            .departed_users()
            .iter()
            .filter(|&&u| g.roles_of_user(u).next().is_none())
            .count();
        assert!(!sim.departed_users().is_empty());
        assert!(
            still_standalone * 10 >= sim.departed_users().len() * 8,
            "{still_standalone} of {} departed users standalone",
            sim.departed_users().len()
        );
    }

    #[test]
    fn inefficiencies_accumulate_over_time() {
        // The paper's core claim, as a property: more churn, more
        // findings.
        let count_findings = |steps: usize| {
            let mut sim = ChurnSimulator::new(ChurnConfig {
                seed: 11,
                ..ChurnConfig::default()
            });
            sim.run(steps);
            let g = sim.graph();
            let standalone_users = (0..g.n_users())
                .filter(|&u| g.roles_of_user(UserId::from_index(u)).next().is_none())
                .count();
            let standalone_perms = (0..g.n_permissions())
                .filter(|&p| {
                    g.roles_of_permission(PermissionId::from_index(p))
                        .next()
                        .is_none()
                })
                .count();
            let userless = (0..g.n_roles())
                .filter(|&r| g.user_degree(RoleId::from_index(r)) == 0)
                .count();
            standalone_users + standalone_perms + userless
        };
        let early = count_findings(100);
        let late = count_findings(2_000);
        assert!(
            late > early + 20,
            "churn must accumulate inefficiencies: early={early}, late={late}"
        );
    }

    #[test]
    fn pick_kind_skips_zero_weights_and_falls_through_to_last_nonzero() {
        let table = [1.0, 0.0, 2.0];
        assert_eq!(pick_kind(&table, 0.5), 0);
        assert_eq!(pick_kind(&table, 1.0), 2); // boundary: zero bucket skipped
        assert_eq!(pick_kind(&table, 2.5), 2);
        // A pick that numerically survives the whole walk (accumulated
        // floating-point error) lands on the last *positive* entry — the
        // old loop silently fell back to kind 0 (Hire).
        assert_eq!(pick_kind(&table, 3.0), 2);
        // A trailing zero weight can never be selected, even on
        // fall-through.
        assert_eq!(pick_kind(&[1.0, 1.0, 0.0], 5.0), 1);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_weights_are_rejected() {
        ChurnSimulator::new(ChurnConfig {
            weights: ChurnWeights {
                hire: 0.0,
                leave: 0.0,
                create_role: 0.0,
                clone_role: 0.0,
                drift_role: 0.0,
                abandon_role: 0.0,
                decommission: 0.0,
                register_permission: 0.0,
            },
            ..ChurnConfig::default()
        });
    }

    #[test]
    fn ground_truth_lists_stay_deduped_under_heavy_drift() {
        // Drift-heavy mix: departed users get reassigned by drift and
        // then leave again (likewise re-granted decommissioned
        // permissions) — before the dedup fix both ground-truth lists
        // accumulated duplicate entries under this load.
        let mut sim = ChurnSimulator::new(ChurnConfig {
            seed: 33,
            weights: ChurnWeights {
                hire: 1.0,
                leave: 12.0,
                drift_role: 20.0,
                decommission: 8.0,
                register_permission: 1.0,
                ..ChurnWeights::default()
            },
            ..ChurnConfig::default()
        });
        sim.run(4_000);
        assert!(!sim.departed_users().is_empty());
        assert!(!sim.decommissioned_permissions().is_empty());
        let mut departed = sim.departed_users().to_vec();
        departed.sort();
        departed.dedup();
        assert_eq!(
            departed.len(),
            sim.departed_users().len(),
            "departed ground truth contains duplicates"
        );
        let mut decommissioned = sim.decommissioned_permissions().to_vec();
        decommissioned.sort();
        decommissioned.dedup();
        assert_eq!(
            decommissioned.len(),
            sim.decommissioned_permissions().len(),
            "decommissioned ground truth contains duplicates"
        );
    }

    #[test]
    fn recorded_deltas_replay_to_the_same_graph() {
        let mut sim = ChurnSimulator::new(ChurnConfig {
            seed: 17,
            ..ChurnConfig::default()
        });
        let initial = sim.graph().clone();
        sim.run(500);
        let stream = sim.drain_deltas();
        assert!(!stream.is_empty());
        assert!(sim.deltas().is_empty(), "drain must empty the buffer");
        let mut replayed = initial;
        EdgeDelta::replay(&mut replayed, &stream).unwrap();
        assert_eq!(&replayed, sim.graph());
        // Draining is incremental: the next batch replays from here.
        sim.run(100);
        let mut resumed = replayed;
        EdgeDelta::replay(&mut resumed, &sim.drain_deltas()).unwrap();
        assert_eq!(&resumed, sim.graph());
    }

    #[test]
    fn from_graph_churns_an_existing_org() {
        let mut g = TripartiteGraph::with_counts(5, 2, 6);
        g.assign_user(RoleId::from_index(0), UserId::from_index(0))
            .unwrap();
        g.grant_permission(RoleId::from_index(0), PermissionId::from_index(0))
            .unwrap();
        let initial = g.clone();
        let mut sim = ChurnSimulator::from_graph(g, ChurnWeights::default(), 3);
        sim.run(200);
        sim.graph().validate().unwrap();
        let mut replayed = initial;
        EdgeDelta::replay(&mut replayed, &sim.drain_deltas()).unwrap();
        assert_eq!(&replayed, sim.graph());
    }

    #[test]
    fn clones_surface_as_duplicate_groups() {
        let mut sim = ChurnSimulator::new(ChurnConfig {
            seed: 21,
            // Clone-heavy; every user-side mutation source disabled so
            // clone pairs cannot diverge on the RUAM side.
            weights: ChurnWeights {
                clone_role: 10.0,
                drift_role: 0.0,
                abandon_role: 0.0,
                leave: 0.0,
                hire: 0.0,
                decommission: 0.0,
                ..ChurnWeights::default()
            },
            ..ChurnConfig::default()
        });
        sim.run(300);
        assert!(!sim.clone_events().is_empty());
        let ruam = sim.graph().ruam_sparse();
        for &(source, clone) in sim.clone_events() {
            assert!(
                rolediet_matrix::RowMatrix::rows_equal(&ruam, source.index(), clone.index()),
                "clone pair ({source}, {clone}) diverged without drift"
            );
        }
    }
}
