//! Synthetic RBAC workloads with planted ground truth.
//!
//! Two generators, matching the two evaluation settings of the paper:
//!
//! * [`matrix_gen`] — the synthetic RUAM/RPAM generator used for the
//!   execution-time experiments (Figures 2 and 3): a binary matrix with a
//!   configurable number of rows (roles) and columns (users), a fixed
//!   proportion of rows belonging to planted duplicate clusters, and a cap
//!   on cluster size. Ground truth (which rows are identical, which pairs
//!   are 1-bit-apart) is returned alongside the data.
//! * [`org_gen`] — an organization generator producing a full tripartite
//!   graph: departments with users, roles and permissions, plus an
//!   [`org_gen::InefficiencyPlan`] that plants each of
//!   the paper's five inefficiency types at exact counts. The
//!   [`profiles::ing_like`] preset reproduces the published shape of the
//!   real 60,000-employee organization of Section IV-B (see DESIGN.md for
//!   the substitution rationale).
//!
//! All randomness flows through seeded [`rand::rngs::StdRng`]; equal
//! configs produce identical datasets.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod churn;
pub mod matrix_gen;
pub mod org_gen;
pub mod profiles;
pub mod stream;

pub use matrix_gen::{
    generate_matrix, generate_matrix_with, GeneratedMatrix, MatrixGenConfig, MatrixGroundTruth,
};
pub use org_gen::{
    generate_org, generate_org_with, GeneratedOrg, InefficiencyPlan, OrgConfig, OrgGroundTruth,
};
