//! Per-entity RNG streams for the parallel generators.
//!
//! The parallel variants of [`crate::generate_matrix`] and
//! [`crate::generate_org`] give every independently-generated entity (a
//! planted cluster, a filler row, a role) its own seeded RNG, derived from
//! the config seed and a stable *stream id* fixed by construction order.
//! Because a stream's state depends only on `(seed, stream_id)` — never on
//! which worker thread ran it or what ran before it — the generated data
//! is byte-identical at every thread count.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives the RNG for stream `stream` of generator seed `seed`.
///
/// The two words are mixed through a splitmix64-style finalizer so that
/// consecutive stream ids (and consecutive seeds) land far apart in the
/// `StdRng` seed space.
pub fn stream_rng(seed: u64, stream: u64) -> StdRng {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a = stream_rng(7, 3).next_u64();
        let b = stream_rng(7, 3).next_u64();
        assert_eq!(a, b);
        let c = stream_rng(7, 4).next_u64();
        let d = stream_rng(8, 3).next_u64();
        assert_ne!(a, c, "neighbouring streams must differ");
        assert_ne!(a, d, "neighbouring seeds must differ");
    }
}
