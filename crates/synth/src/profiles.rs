//! Named organization profiles.

use crate::org_gen::{GeneratedOrg, InefficiencyPlan, OrgConfig};

/// The published shape of the paper's real dataset (Section IV-B):
/// ~90,000 users, ~350,000 permissions, ~50,000 roles, and the reported
/// inefficiency counts. `scale` shrinks every count proportionally
/// (`1.0` = full size, `0.01` = CI-sized); counts below the structural
/// minimum are clamped.
///
/// The paper reports (at scale 1.0):
///
/// | inefficiency | count |
/// |---|---|
/// | standalone users | 500 |
/// | standalone permissions | ~180,000 |
/// | roles without users | 12,000 |
/// | roles without permissions | 1,000 |
/// | single-user roles | 4,000 |
/// | single-permission roles | 21,000 |
/// | roles sharing the same users | 8,000 (→ 4,000 pairs) |
/// | roles sharing the same permissions | 2,000 (→ 1,000 pairs) |
/// | roles sharing all but one user | 6,000 (→ 3,000 pairs) |
/// | roles sharing all but one permission | 4,000 (→ 2,000 pairs) |
///
/// The structural role budget works out as: 300·`scale` departments ×
/// (1 catch-all + 40 healthy), plus the planted degree-type roles —
/// ~50,300·`scale` roles in total, matching the paper's ~50,000.
///
/// # Panics
///
/// Panics if `scale` is not in `(0, 1]`.
pub fn ing_like(scale: f64, seed: u64) -> OrgConfig {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let s = |n: usize| ((n as f64 * scale).round() as usize).max(1);
    let departments = s(300);
    OrgConfig {
        departments,
        // 300 × 298 ≈ 89,400 base users + 500 standalone ≈ 90k.
        users_per_department: 298,
        healthy_roles_per_department: 40,
        // 300 × 567 ≈ 170k attached + 180k standalone ≈ 350k.
        permissions_per_department: 567,
        role_user_degree: (2, 30),
        role_perm_degree: (2, 14),
        plan: InefficiencyPlan {
            standalone_users: s(500),
            standalone_permissions: s(180_000),
            standalone_roles: 0,
            userless_roles: s(12_000),
            permless_roles: s(1_000),
            single_user_roles: s(4_000),
            single_permission_roles: s(21_000),
            same_user_role_pairs: s(4_000),
            same_permission_role_pairs: s(1_000),
            similar_user_role_pairs: s(3_000),
            similar_permission_role_pairs: s(2_000),
        },
        seed,
    }
}

/// Generates the [`ing_like`] organization directly.
///
/// # Panics
///
/// Panics if `scale` is not in `(0, 1]` or if scaling makes a transform
/// pool too small (not the case for any `scale ≥ 0.01`).
pub fn generate_ing_like(scale: f64, seed: u64) -> GeneratedOrg {
    crate::org_gen::generate_org(ing_like(scale, seed))
}

/// An organization matching explicit shape targets: ~`users` users,
/// ~`roles` roles, and a user-side density of about `density` (mean role
/// user degree ≈ `density × users`), with a modest *fixed-size*
/// inefficiency plan.
///
/// Unlike [`ing_like`], the planted counts do not scale with the
/// organization: every planted norm-0 role (userless/standalone) is
/// mutually within any distance bound of every other, so scaling them
/// proportionally would blow the distance plane's output up
/// quadratically at million-user scale. The plan is capped at a few
/// thousand roles regardless of size. Backing for the
/// `--users/--roles/--density` bench flags.
///
/// # Panics
///
/// Panics if `users < 600` (two departments' worth) or `density` is not
/// in `(0, 1]`.
pub fn custom_shape(users: usize, roles: usize, density: f64, seed: u64) -> OrgConfig {
    assert!(users >= 600, "custom_shape needs at least 600 users");
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    let users_per_department = 298;
    let departments = (users / users_per_department).max(2);
    // Planted counts: fixed targets, capped so small orgs stay feasible.
    let cap = |n: usize| n.min(roles / 25 + 1);
    let plan = InefficiencyPlan {
        standalone_users: 200.min(users / 50),
        standalone_permissions: 500,
        standalone_roles: cap(100),
        userless_roles: cap(1_000),
        permless_roles: cap(500),
        single_user_roles: cap(1_000),
        single_permission_roles: cap(500),
        same_user_role_pairs: cap(200),
        same_permission_role_pairs: cap(100),
        similar_user_role_pairs: cap(200),
        similar_permission_role_pairs: cap(100),
    };
    let planted = departments
        + plan.standalone_roles
        + plan.userless_roles
        + plan.permless_roles
        + plan.single_user_roles
        + plan.single_permission_roles;
    let healthy_roles_per_department = roles.saturating_sub(planted).div_euclid(departments).max(2);
    // Degree range (2, dmax) whose midpoint hits the density target.
    let mean_degree = (density * users as f64).round() as usize;
    let dmax = (2 * mean_degree)
        .saturating_sub(2)
        .clamp(3, users_per_department - 2);
    OrgConfig {
        departments,
        users_per_department,
        healthy_roles_per_department,
        permissions_per_department: 120,
        role_user_degree: (2, dmax),
        role_perm_degree: (2, 10),
        plan,
        seed,
    }
}

/// A laptop-sized smoke-test profile: a few thousand nodes with every
/// inefficiency type present. Generates in milliseconds; used by examples
/// and integration tests.
pub fn small_org(seed: u64) -> OrgConfig {
    OrgConfig {
        departments: 6,
        users_per_department: 120,
        healthy_roles_per_department: 30,
        permissions_per_department: 150,
        role_user_degree: (2, 20),
        role_perm_degree: (2, 10),
        plan: InefficiencyPlan {
            standalone_users: 10,
            standalone_permissions: 40,
            standalone_roles: 3,
            userless_roles: 15,
            permless_roles: 5,
            single_user_roles: 12,
            single_permission_roles: 25,
            same_user_role_pairs: 10,
            same_permission_role_pairs: 6,
            similar_user_role_pairs: 8,
            similar_permission_role_pairs: 5,
        },
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolediet_model::{PermissionId, UserId};

    #[test]
    fn ing_like_scaled_down_matches_published_shape() {
        let cfg = ing_like(0.02, 42);
        let org = crate::org_gen::generate_org(cfg);
        let g = &org.graph;
        // ~1,790 base users + 10 standalone.
        assert!(
            g.n_users() > 1_500 && g.n_users() < 2_200,
            "{}",
            g.n_users()
        );
        // ~3,400 attached + 3,600 standalone permissions.
        assert!(
            g.n_permissions() > 6_000 && g.n_permissions() < 8_000,
            "{}",
            g.n_permissions()
        );
        // ~1,000 roles at this scale.
        assert!(g.n_roles() > 800 && g.n_roles() < 1_400, "{}", g.n_roles());
        g.validate().unwrap();
        // Roughly half the permissions are standalone, as in the paper.
        let standalone = (0..g.n_permissions())
            .filter(|&p| {
                g.roles_of_permission(PermissionId::from_index(p))
                    .next()
                    .is_none()
            })
            .count();
        let frac = standalone as f64 / g.n_permissions() as f64;
        assert!(frac > 0.4 && frac < 0.6, "standalone fraction {frac}");
    }

    #[test]
    fn ing_like_truth_counts_scale() {
        let org = generate_ing_like(0.01, 1);
        assert_eq!(org.truth.standalone_users.len(), 5);
        assert_eq!(org.truth.userless_roles.len(), 120);
        assert_eq!(org.truth.permless_roles.len(), 10);
        assert_eq!(org.truth.single_user_roles.len(), 40);
        assert_eq!(org.truth.single_permission_roles.len(), 210);
        assert_eq!(org.truth.same_user_pairs.len(), 40);
        assert_eq!(org.truth.same_permission_pairs.len(), 10);
        assert_eq!(org.truth.similar_user_pairs.len(), 30);
        assert_eq!(org.truth.similar_permission_pairs.len(), 20);
    }

    #[test]
    fn small_org_generates_quickly_and_validates() {
        let org = crate::org_gen::generate_org(small_org(3));
        org.graph.validate().unwrap();
        assert_eq!(org.truth.standalone_users.len(), 10);
        // Users: 6 × 120 + 10.
        assert_eq!(org.graph.n_users(), 730);
        // Spot-check a standalone user really is standalone.
        let u: UserId = org.truth.standalone_users[0];
        assert!(org.graph.roles_of_user(u).next().is_none());
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn scale_validated() {
        ing_like(0.0, 0);
    }

    #[test]
    fn custom_shape_hits_its_targets() {
        let cfg = custom_shape(1_000, 400, 0.02, 7);
        let org = crate::org_gen::generate_org(cfg);
        let g = &org.graph;
        g.validate().unwrap();
        assert!(g.n_users() > 800 && g.n_users() < 1_100, "{}", g.n_users());
        assert!(g.n_roles() > 300 && g.n_roles() < 500, "{}", g.n_roles());
        // Mean attached-role user degree ≈ density × users = 20.
        let degrees: Vec<usize> = (0..g.n_roles())
            .map(|r| g.users_of(rolediet_model::RoleId::from_index(r)).count())
            .filter(|&d| d >= 2)
            .collect();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(mean > 10.0 && mean < 40.0, "mean degree {mean}");
    }

    #[test]
    #[should_panic(expected = "density must be in (0, 1]")]
    fn custom_shape_density_validated() {
        custom_shape(1_000, 400, 0.0, 7);
    }
}
