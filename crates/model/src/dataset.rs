//! Named RBAC datasets: graph + interners + entity metadata.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::graph::TripartiteGraph;
use crate::id::{EntityKind, PermissionId, RoleId, UserId};
use crate::interner::Interner;
use crate::Result;

/// Optional descriptive metadata attached to a role.
///
/// Real exports carry ownership information that auditors need when they
/// review a finding ("these two roles are identical — who owns them?").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoleMeta {
    /// Organizational unit the role belongs to, if known.
    pub department: Option<String>,
    /// Free-text description.
    pub description: Option<String>,
    /// Accountable owner, if known.
    pub owner: Option<String>,
}

/// An RBAC dataset: the tripartite graph plus name interners and metadata.
///
/// This is the type the CLI, the I/O formats and the examples operate on.
/// All mutation goes through named or id-based methods that keep the graph
/// and the interners consistent.
///
/// # Examples
///
/// ```
/// use rolediet_model::RbacDataset;
///
/// let mut ds = RbacDataset::new();
/// let r = ds.role("helpdesk");
/// let u = ds.user("jdoe");
/// ds.assign_user(r, u);
/// assert_eq!(ds.role_name(r), "helpdesk");
/// assert_eq!(ds.find_role("helpdesk"), Some(r));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RbacDataset {
    graph: TripartiteGraph,
    users: Interner,
    roles: Interner,
    permissions: Interner,
    role_meta: Vec<RoleMeta>,
}

impl RbacDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing graph, synthesizing names (`U0…`, `R0…`, `P0…`).
    pub fn from_graph(graph: TripartiteGraph) -> Self {
        let users = (0..graph.n_users()).map(|i| format!("U{i}")).collect();
        let roles = (0..graph.n_roles()).map(|i| format!("R{i}")).collect();
        let permissions = (0..graph.n_permissions())
            .map(|i| format!("P{i}"))
            .collect();
        let role_meta = vec![RoleMeta::default(); graph.n_roles()];
        RbacDataset {
            graph,
            users,
            roles,
            permissions,
            role_meta,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TripartiteGraph {
        &self.graph
    }

    /// Interns (or finds) a user by name.
    pub fn user(&mut self, name: &str) -> UserId {
        let id = self.users.intern(name);
        while self.graph.n_users() <= id as usize {
            self.graph.add_user();
        }
        UserId(id)
    }

    /// Interns (or finds) a role by name.
    pub fn role(&mut self, name: &str) -> RoleId {
        let id = self.roles.intern(name);
        while self.graph.n_roles() <= id as usize {
            self.graph.add_role();
            self.role_meta.push(RoleMeta::default());
        }
        RoleId(id)
    }

    /// Interns (or finds) a permission by name.
    pub fn permission(&mut self, name: &str) -> PermissionId {
        let id = self.permissions.intern(name);
        while self.graph.n_permissions() <= id as usize {
            self.graph.add_permission();
        }
        PermissionId(id)
    }

    /// Looks up a user by name without creating it.
    pub fn find_user(&self, name: &str) -> Option<UserId> {
        self.users.lookup(name).map(UserId)
    }

    /// Looks up a role by name without creating it.
    pub fn find_role(&self, name: &str) -> Option<RoleId> {
        self.roles.lookup(name).map(RoleId)
    }

    /// Looks up a permission by name without creating it.
    pub fn find_permission(&self, name: &str) -> Option<PermissionId> {
        self.permissions.lookup(name).map(PermissionId)
    }

    /// Name of `user`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn user_name(&self, user: UserId) -> &str {
        self.users.resolve(user.0).expect("user id out of range")
    }

    /// Name of `role`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn role_name(&self, role: RoleId) -> &str {
        self.roles.resolve(role.0).expect("role id out of range")
    }

    /// Name of `permission`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn permission_name(&self, permission: PermissionId) -> &str {
        self.permissions
            .resolve(permission.0)
            .expect("permission id out of range")
    }

    /// Metadata of `role`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn role_meta(&self, role: RoleId) -> &RoleMeta {
        &self.role_meta[role.index()]
    }

    /// Mutable metadata of `role`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn role_meta_mut(&mut self, role: RoleId) -> &mut RoleMeta {
        &mut self.role_meta[role.index()]
    }

    /// Adds a user–role edge (ids must exist).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range — ids obtained from this
    /// dataset's own constructors are always valid.
    pub fn assign_user(&mut self, role: RoleId, user: UserId) -> bool {
        self.graph
            .assign_user(role, user)
            .expect("ids minted by this dataset are valid")
    }

    /// Adds a role–permission edge (ids must exist).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn grant_permission(&mut self, role: RoleId, permission: PermissionId) -> bool {
        self.graph
            .grant_permission(role, permission)
            .expect("ids minted by this dataset are valid")
    }

    /// Adds an edge by names, interning as needed.
    pub fn assign_user_by_name(&mut self, role: &str, user: &str) -> bool {
        let r = self.role(role);
        let u = self.user(user);
        self.assign_user(r, u)
    }

    /// Adds a grant by names, interning as needed.
    pub fn grant_permission_by_name(&mut self, role: &str, permission: &str) -> bool {
        let r = self.role(role);
        let p = self.permission(permission);
        self.grant_permission(r, p)
    }

    /// Applies a role remap (see
    /// [`TripartiteGraph::rebuild_with_role_map`]), carrying names and
    /// metadata of the *representative* (first surviving) old role for each
    /// new role.
    ///
    /// # Errors
    ///
    /// Propagates errors from the graph rebuild.
    pub fn rebuild_with_role_map(
        &self,
        role_map: &[Option<usize>],
        n_new_roles: usize,
    ) -> Result<RbacDataset> {
        let graph = self.graph.rebuild_with_role_map(role_map, n_new_roles)?;
        let mut names: Vec<Option<String>> = vec![None; n_new_roles];
        let mut meta: Vec<RoleMeta> = vec![RoleMeta::default(); n_new_roles];
        for (old, target) in role_map.iter().enumerate() {
            if let Some(new) = *target {
                if names[new].is_none() {
                    names[new] = Some(
                        self.roles
                            .resolve(old as u32)
                            .expect("old role exists")
                            .to_owned(),
                    );
                    meta[new] = self.role_meta[old].clone();
                }
            }
        }
        let roles: Interner = names
            .into_iter()
            .enumerate()
            .map(|(i, n)| n.unwrap_or_else(|| format!("merged-role-{i}")))
            .collect();
        if roles.len() != n_new_roles {
            return Err(ModelError::UnknownName {
                kind: EntityKind::Role,
                name: "duplicate surviving role name after merge".into(),
            });
        }
        Ok(RbacDataset {
            graph,
            users: self.users.clone(),
            roles,
            permissions: self.permissions.clone(),
            role_meta: meta,
        })
    }

    /// The Figure 1 dataset of the paper with its original labels
    /// (`U01…U04`, `R01…R05`, `P01…P06`).
    pub fn figure1_example() -> RbacDataset {
        let graph = TripartiteGraph::figure1_example();
        let users = (1..=4).map(|i| format!("U{i:02}")).collect();
        let roles = (1..=5).map(|i| format!("R{i:02}")).collect();
        let permissions = (1..=6).map(|i| format!("P{i:02}")).collect();
        RbacDataset {
            role_meta: vec![RoleMeta::default(); graph.n_roles()],
            graph,
            users,
            roles,
            permissions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_construction_keeps_graph_in_sync() {
        let mut ds = RbacDataset::new();
        let r = ds.role("admin");
        let u = ds.user("alice");
        let p = ds.permission("db:write");
        assert!(ds.assign_user(r, u));
        assert!(ds.grant_permission(r, p));
        assert_eq!(ds.graph().n_users(), 1);
        assert_eq!(ds.graph().n_roles(), 1);
        assert_eq!(ds.graph().n_permissions(), 1);
        assert_eq!(ds.user_name(u), "alice");
        assert_eq!(ds.permission_name(p), "db:write");
        assert_eq!(ds.find_user("alice"), Some(u));
        assert_eq!(ds.find_user("nobody"), None);
        ds.graph().validate().unwrap();
    }

    #[test]
    fn by_name_edges_intern_on_demand() {
        let mut ds = RbacDataset::new();
        assert!(ds.assign_user_by_name("ops", "carol"));
        assert!(!ds.assign_user_by_name("ops", "carol"));
        assert!(ds.grant_permission_by_name("ops", "deploy"));
        assert_eq!(ds.graph().n_user_assignments(), 1);
        assert_eq!(ds.graph().n_permission_grants(), 1);
    }

    #[test]
    fn role_meta_roundtrip() {
        let mut ds = RbacDataset::new();
        let r = ds.role("fin-clerk");
        ds.role_meta_mut(r).department = Some("finance".into());
        assert_eq!(ds.role_meta(r).department.as_deref(), Some("finance"));
    }

    #[test]
    fn from_graph_synthesizes_names() {
        let ds = RbacDataset::from_graph(TripartiteGraph::figure1_example());
        assert_eq!(ds.role_name(RoleId(0)), "R0");
        assert_eq!(ds.user_name(UserId(3)), "U3");
        assert_eq!(ds.permission_name(PermissionId(5)), "P5");
    }

    #[test]
    fn figure1_labels() {
        let ds = RbacDataset::figure1_example();
        assert_eq!(ds.role_name(RoleId(0)), "R01");
        assert_eq!(ds.permission_name(PermissionId(0)), "P01");
        assert_eq!(ds.find_role("R04"), Some(RoleId(3)));
    }

    #[test]
    fn rebuild_keeps_representative_names() {
        let ds = RbacDataset::figure1_example();
        // Merge R04+R05 into one role; keep everything else.
        let map = vec![Some(0), Some(1), Some(2), Some(3), Some(3)];
        let merged = ds.rebuild_with_role_map(&map, 4).unwrap();
        assert_eq!(merged.role_name(RoleId(3)), "R04");
        assert_eq!(merged.graph().n_roles(), 4);
        assert_eq!(merged.user_name(UserId(0)), "U01");
    }

    #[test]
    fn serde_roundtrip() {
        let ds = RbacDataset::figure1_example();
        let json = serde_json::to_string(&ds).unwrap();
        let back: RbacDataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds, back);
    }
}
