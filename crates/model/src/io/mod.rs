//! Import and export of RBAC datasets.
//!
//! Two formats are supported:
//!
//! * **CSV** ([`csv`]) — the shape most IAM systems export: one file of
//!   `role,user` assignment rows and one of `role,permission` grant rows.
//! * **JSON** ([`json`]) — a lossless dump of a full [`RbacDataset`]
//!   (graph, names, metadata), used for round-tripping between tools.
//!
//! [`RbacDataset`]: crate::RbacDataset

pub mod csv;
pub mod json;
