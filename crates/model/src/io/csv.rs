//! CSV import/export of assignment edge lists.
//!
//! The dialect is deliberately minimal — the least common denominator of
//! IAM exports:
//!
//! * one record per line, exactly two fields separated by a comma;
//! * surrounding whitespace is trimmed from each field;
//! * blank lines and lines starting with `#` are skipped;
//! * an optional header (`role,user` or `role,permission`) is skipped;
//! * no quoting — field values must not contain commas or newlines.

use std::io::{BufRead, BufReader, Read, Write};

use crate::dataset::RbacDataset;
use crate::error::ModelError;
use crate::id::{PermissionId, RoleId, UserId};
use crate::Result;

/// Which edge class a CSV file carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `role,user` records.
    UserAssignments,
    /// `role,permission` records.
    PermissionGrants,
}

impl EdgeKind {
    fn header(self) -> &'static str {
        match self {
            EdgeKind::UserAssignments => "role,user",
            EdgeKind::PermissionGrants => "role,permission",
        }
    }
}

/// Reads edge records from `reader` into `dataset`, interning names on the
/// fly. Returns the number of *new* edges added.
///
/// # Errors
///
/// Returns [`ModelError::Parse`] (with a 1-based line number) for records
/// that do not have exactly two non-empty fields, or [`ModelError::Io`] on
/// read failure.
///
/// # Examples
///
/// ```
/// use rolediet_model::io::csv::{read_edges, EdgeKind};
/// use rolediet_model::RbacDataset;
///
/// let data = "role,user\nadmin,alice\nadmin,bob\n";
/// let mut ds = RbacDataset::new();
/// let added = read_edges(data.as_bytes(), &mut ds, EdgeKind::UserAssignments)?;
/// assert_eq!(added, 2);
/// # Ok::<(), rolediet_model::ModelError>(())
/// ```
pub fn read_edges<R: Read>(reader: R, dataset: &mut RbacDataset, kind: EdgeKind) -> Result<usize> {
    let buf = BufReader::new(reader);
    let mut added = 0usize;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if lineno == 0 && line.eq_ignore_ascii_case(kind.header()) {
            continue;
        }
        let mut fields = line.split(',');
        let (a, b, rest) = (fields.next(), fields.next(), fields.next());
        let (Some(role), Some(other)) = (a, b) else {
            return Err(ModelError::Parse {
                line: lineno + 1,
                message: format!("expected 2 comma-separated fields, got {line:?}"),
            });
        };
        if rest.is_some() {
            return Err(ModelError::Parse {
                line: lineno + 1,
                message: format!("expected 2 comma-separated fields, got more in {line:?}"),
            });
        }
        let (role, other) = (role.trim(), other.trim());
        if role.is_empty() || other.is_empty() {
            return Err(ModelError::Parse {
                line: lineno + 1,
                message: "empty field".into(),
            });
        }
        let new = match kind {
            EdgeKind::UserAssignments => dataset.assign_user_by_name(role, other),
            EdgeKind::PermissionGrants => dataset.grant_permission_by_name(role, other),
        };
        if new {
            added += 1;
        }
    }
    Ok(added)
}

/// Writes the dataset's edges of the given kind as CSV (with header), in
/// ascending id order.
///
/// # Errors
///
/// Returns [`ModelError::Io`] on write failure.
pub fn write_edges<W: Write>(mut writer: W, dataset: &RbacDataset, kind: EdgeKind) -> Result<()> {
    writeln!(writer, "{}", kind.header())?;
    let graph = dataset.graph();
    for r in 0..graph.n_roles() {
        let role = RoleId::from_index(r);
        match kind {
            EdgeKind::UserAssignments => {
                for u in graph.users_of(role) {
                    writeln!(
                        writer,
                        "{},{}",
                        dataset.role_name(role),
                        dataset.user_name(UserId(u.0))
                    )?;
                }
            }
            EdgeKind::PermissionGrants => {
                for p in graph.permissions_of(role) {
                    writeln!(
                        writer,
                        "{},{}",
                        dataset.role_name(role),
                        dataset.permission_name(PermissionId(p.0))
                    )?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_skips_header_comments_blanks() {
        let data = "role,user\n\n# a comment\nadmin , alice\nadmin,bob\n";
        let mut ds = RbacDataset::new();
        let added = read_edges(data.as_bytes(), &mut ds, EdgeKind::UserAssignments).unwrap();
        assert_eq!(added, 2);
        assert_eq!(ds.graph().n_user_assignments(), 2);
        assert!(ds.find_user("alice").is_some(), "fields are trimmed");
    }

    #[test]
    fn read_counts_only_new_edges() {
        let data = "admin,alice\nadmin,alice\n";
        let mut ds = RbacDataset::new();
        let added = read_edges(data.as_bytes(), &mut ds, EdgeKind::UserAssignments).unwrap();
        assert_eq!(added, 1);
    }

    #[test]
    fn read_rejects_malformed_lines() {
        let mut ds = RbacDataset::new();
        let err = read_edges(
            "justonefield\n".as_bytes(),
            &mut ds,
            EdgeKind::UserAssignments,
        )
        .unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = read_edges("a,b,c\n".as_bytes(), &mut ds, EdgeKind::UserAssignments).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = read_edges(
            "ok,fine\n,empty\n".as_bytes(),
            &mut ds,
            EdgeKind::UserAssignments,
        )
        .unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn header_only_skipped_on_first_line() {
        // A role literally named "role" with user "user" on line 2 is data.
        let data = "role,user\nrole,user\n";
        let mut ds = RbacDataset::new();
        let added = read_edges(data.as_bytes(), &mut ds, EdgeKind::UserAssignments).unwrap();
        assert_eq!(added, 1);
        assert!(ds.find_role("role").is_some());
    }

    #[test]
    fn crlf_and_unicode_inputs() {
        // Windows line endings must not leak \r into names.
        let data = "role,user\r\nadmin,alice\r\nadmin,bób\r\n";
        let mut ds = RbacDataset::new();
        let added = read_edges(data.as_bytes(), &mut ds, EdgeKind::UserAssignments).unwrap();
        assert_eq!(added, 2);
        assert!(ds.find_user("alice").is_some(), "no trailing CR");
        assert!(ds.find_user("bób").is_some(), "unicode names survive");
        assert!(ds.find_user("alice\r").is_none());
    }

    #[test]
    fn roundtrip_both_kinds() {
        let ds = RbacDataset::figure1_example();
        for kind in [EdgeKind::UserAssignments, EdgeKind::PermissionGrants] {
            let mut out = Vec::new();
            write_edges(&mut out, &ds, kind).unwrap();
            let mut back = RbacDataset::new();
            read_edges(out.as_slice(), &mut back, kind).unwrap();
            match kind {
                EdgeKind::UserAssignments => {
                    assert_eq!(
                        back.graph().n_user_assignments(),
                        ds.graph().n_user_assignments()
                    );
                }
                EdgeKind::PermissionGrants => {
                    assert_eq!(
                        back.graph().n_permission_grants(),
                        ds.graph().n_permission_grants()
                    );
                }
            }
        }
    }

    #[test]
    fn write_emits_header_and_sorted_edges() {
        let mut ds = RbacDataset::new();
        ds.assign_user_by_name("r1", "u2");
        ds.assign_user_by_name("r1", "u1");
        let mut out = Vec::new();
        write_edges(&mut out, &ds, EdgeKind::UserAssignments).unwrap();
        let text = String::from_utf8(out).unwrap();
        // u2 interned before u1 → id order puts u2 first.
        assert_eq!(text, "role,user\nr1,u2\nr1,u1\n");
    }
}
