//! Lossless JSON (de)serialization of datasets.

use std::io::{Read, Write};

use crate::dataset::RbacDataset;
use crate::Result;

/// Serializes a dataset to pretty-printed JSON.
///
/// # Errors
///
/// Returns [`ModelError::Json`](crate::ModelError::Json) on serialization
/// failure (practically unreachable for this type).
pub fn to_json_string(dataset: &RbacDataset) -> Result<String> {
    Ok(serde_json::to_string_pretty(dataset)?)
}

/// Deserializes a dataset from JSON text.
///
/// # Errors
///
/// Returns [`ModelError::Json`](crate::ModelError::Json) for malformed
/// input.
pub fn from_json_str(text: &str) -> Result<RbacDataset> {
    Ok(serde_json::from_str(text)?)
}

/// Writes a dataset as JSON to `writer`.
///
/// # Errors
///
/// Returns [`ModelError::Json`](crate::ModelError::Json) on failure.
pub fn write_json<W: Write>(writer: W, dataset: &RbacDataset) -> Result<()> {
    Ok(serde_json::to_writer_pretty(writer, dataset)?)
}

/// Reads a dataset from JSON in `reader`.
///
/// # Errors
///
/// Returns [`ModelError::Json`](crate::ModelError::Json) for malformed
/// input or [`ModelError::Io`](crate::ModelError::Io) wrapped by serde on
/// read failure.
pub fn read_json<R: Read>(reader: R) -> Result<RbacDataset> {
    Ok(serde_json::from_reader(reader)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_roundtrip() {
        let ds = RbacDataset::figure1_example();
        let json = to_json_string(&ds).unwrap();
        let back = from_json_str(&json).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let ds = RbacDataset::figure1_example();
        let mut buf = Vec::new();
        write_json(&mut buf, &ds).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_json_str("{not json").is_err());
        assert!(from_json_str("{}").is_err(), "missing fields rejected");
    }
}
