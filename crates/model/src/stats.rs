//! Dataset shape statistics.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::graph::TripartiteGraph;

/// Summary of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeSummary {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower median for even counts).
    pub median: usize,
    /// Number of zero-degree nodes.
    pub zeros: usize,
}

impl DegreeSummary {
    /// Summarizes a degree vector. Returns an all-zero summary for empty
    /// input.
    pub fn from_degrees(mut degrees: Vec<usize>) -> Self {
        if degrees.is_empty() {
            return DegreeSummary {
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
                zeros: 0,
            };
        }
        degrees.sort_unstable();
        let n = degrees.len();
        let sum: usize = degrees.iter().sum();
        DegreeSummary {
            min: degrees[0],
            max: degrees[n - 1],
            mean: sum as f64 / n as f64,
            median: degrees[(n - 1) / 2],
            zeros: degrees.iter().take_while(|&&d| d == 0).count(),
        }
    }
}

/// Shape statistics of an RBAC dataset — the numbers Section IV-B of the
/// paper quotes for the real organization (node counts, assignment counts,
/// matrix density, degree distributions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of user nodes.
    pub users: usize,
    /// Number of role nodes.
    pub roles: usize,
    /// Number of permission nodes.
    pub permissions: usize,
    /// Number of user–role edges.
    pub user_assignments: usize,
    /// Number of role–permission edges.
    pub permission_grants: usize,
    /// Fraction of RUAM cells that are 1.
    pub ruam_density: f64,
    /// Fraction of RPAM cells that are 1.
    pub rpam_density: f64,
    /// Users-per-role distribution.
    pub role_user_degrees: DegreeSummary,
    /// Permissions-per-role distribution.
    pub role_permission_degrees: DegreeSummary,
    /// Roles-per-user distribution.
    pub user_role_degrees: DegreeSummary,
    /// Roles-per-permission distribution.
    pub permission_role_degrees: DegreeSummary,
}

impl DatasetStats {
    /// Computes statistics for a graph in one pass per distribution.
    pub fn compute(graph: &TripartiteGraph) -> Self {
        let users = graph.n_users();
        let roles = graph.n_roles();
        let permissions = graph.n_permissions();
        let user_assignments = graph.n_user_assignments();
        let permission_grants = graph.n_permission_grants();
        let density = |nnz: usize, r: usize, c: usize| {
            if r == 0 || c == 0 {
                0.0
            } else {
                nnz as f64 / (r as f64 * c as f64)
            }
        };
        let role_user: Vec<usize> = (0..roles)
            .map(|r| graph.user_degree(crate::RoleId::from_index(r)))
            .collect();
        let role_perm: Vec<usize> = (0..roles)
            .map(|r| graph.permission_degree(crate::RoleId::from_index(r)))
            .collect();
        let user_role: Vec<usize> = (0..users)
            .map(|u| graph.roles_of_user(crate::UserId::from_index(u)).count())
            .collect();
        let perm_role: Vec<usize> = (0..permissions)
            .map(|p| {
                graph
                    .roles_of_permission(crate::PermissionId::from_index(p))
                    .count()
            })
            .collect();
        DatasetStats {
            users,
            roles,
            permissions,
            user_assignments,
            permission_grants,
            ruam_density: density(user_assignments, roles, users),
            rpam_density: density(permission_grants, roles, permissions),
            role_user_degrees: DegreeSummary::from_degrees(role_user),
            role_permission_degrees: DegreeSummary::from_degrees(role_perm),
            user_role_degrees: DegreeSummary::from_degrees(user_role),
            permission_role_degrees: DegreeSummary::from_degrees(perm_role),
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "users={} roles={} permissions={}",
            self.users, self.roles, self.permissions
        )?;
        writeln!(
            f,
            "user-role edges={} role-permission edges={}",
            self.user_assignments, self.permission_grants
        )?;
        writeln!(
            f,
            "RUAM density={:.6} RPAM density={:.6}",
            self.ruam_density, self.rpam_density
        )?;
        writeln!(
            f,
            "users/role: min={} median={} mean={:.2} max={} zeros={}",
            self.role_user_degrees.min,
            self.role_user_degrees.median,
            self.role_user_degrees.mean,
            self.role_user_degrees.max,
            self.role_user_degrees.zeros
        )?;
        write!(
            f,
            "perms/role: min={} median={} mean={:.2} max={} zeros={}",
            self.role_permission_degrees.min,
            self.role_permission_degrees.median,
            self.role_permission_degrees.mean,
            self.role_permission_degrees.max,
            self.role_permission_degrees.zeros
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_summary_basic() {
        let s = DegreeSummary::from_degrees(vec![3, 0, 1, 0, 2]);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3);
        assert_eq!(s.median, 1);
        assert_eq!(s.zeros, 2);
        assert!((s.mean - 1.2).abs() < 1e-12);
    }

    #[test]
    fn degree_summary_empty() {
        let s = DegreeSummary::from_degrees(vec![]);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn figure1_stats() {
        let g = TripartiteGraph::figure1_example();
        let s = DatasetStats::compute(&g);
        assert_eq!(s.users, 4);
        assert_eq!(s.roles, 5);
        assert_eq!(s.permissions, 6);
        assert_eq!(s.user_assignments, 6);
        assert_eq!(s.permission_grants, 7);
        assert!((s.ruam_density - 6.0 / 20.0).abs() < 1e-12);
        assert!((s.rpam_density - 7.0 / 30.0).abs() < 1e-12);
        // R03 has zero users; R02 zero permissions.
        assert_eq!(s.role_user_degrees.zeros, 1);
        assert_eq!(s.role_permission_degrees.zeros, 1);
        // P01 standalone.
        assert_eq!(s.permission_role_degrees.zeros, 1);
    }

    #[test]
    fn empty_graph_stats() {
        let s = DatasetStats::compute(&TripartiteGraph::new());
        assert_eq!(s.users, 0);
        assert_eq!(s.ruam_density, 0.0);
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = DatasetStats::compute(&TripartiteGraph::figure1_example());
        let text = s.to_string();
        assert!(text.contains("users=4"));
        assert!(text.contains("RUAM density"));
    }
}
