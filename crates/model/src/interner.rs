//! Bidirectional name ↔ dense-id mapping.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Interns strings into dense `u32` ids, preserving insertion order.
///
/// The detectors work on dense matrix indices; real RBAC exports use
/// external names (`"jdoe"`, `"SAP_FI_CLERK"`, `"s3:GetObject"`). One
/// interner per entity kind translates between the two worlds.
///
/// # Examples
///
/// ```
/// use rolediet_model::Interner;
///
/// let mut names = Interner::new();
/// let a = names.intern("alice");
/// let b = names.intern("bob");
/// assert_eq!(names.intern("alice"), a); // idempotent
/// assert_eq!(names.resolve(b), Some("bob"));
/// assert_eq!(names.lookup("alice"), Some(a));
/// assert_eq!(names.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "Vec<String>", into = "Vec<String>")]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id; existing names return their
    /// original id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflows u32");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up the id of `name` without interning.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Resolves an id back to its name.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }
}

impl From<Vec<String>> for Interner {
    fn from(names: Vec<String>) -> Self {
        let mut it = Interner::new();
        for n in names {
            it.intern(&n);
        }
        it
    }
}

impl From<Interner> for Vec<String> {
    fn from(it: Interner) -> Vec<String> {
        it.names
    }
}

impl FromIterator<String> for Interner {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut it = Interner::new();
        for n in iter {
            it.intern(&n);
        }
        it
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_dense_and_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
        let pairs: Vec<_> = i.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn lookup_and_resolve() {
        let mut i = Interner::new();
        i.intern("x");
        assert_eq!(i.lookup("x"), Some(0));
        assert_eq!(i.lookup("y"), None);
        assert_eq!(i.resolve(0), Some("x"));
        assert_eq!(i.resolve(1), None);
    }

    #[test]
    fn serde_roundtrip_preserves_ids() {
        let mut i = Interner::new();
        i.intern("alpha");
        i.intern("beta");
        let json = serde_json::to_string(&i).unwrap();
        assert_eq!(json, "[\"alpha\",\"beta\"]");
        let back: Interner = serde_json::from_str(&json).unwrap();
        assert_eq!(back, i);
        assert_eq!(back.lookup("beta"), Some(1));
    }

    #[test]
    fn collect_from_iterator_dedups() {
        let i: Interner = ["a", "b", "a"].iter().map(|s| s.to_string()).collect();
        assert_eq!(i.len(), 2);
    }
}
