//! Error type for the model crate.

use std::error::Error;
use std::fmt;

use crate::id::EntityKind;

/// Errors produced by dataset construction and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum ModelError {
    /// A referenced entity id does not exist in the graph.
    UnknownId {
        /// Node class of the missing id.
        kind: EntityKind,
        /// Raw id value.
        id: u32,
        /// Exclusive upper bound of valid ids.
        bound: u32,
    },
    /// A referenced entity name was never interned.
    UnknownName {
        /// Node class of the missing name.
        kind: EntityKind,
        /// The name that was looked up.
        name: String,
    },
    /// A parse error in an imported file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A greedy role-mining cover ran out of positive-gain candidates
    /// while user–permission cells were still uncovered.
    ///
    /// Unreachable when the candidate pool contains every distinct
    /// non-empty user row (the default generator guarantees it); a
    /// hand-built pool that cannot cover the matrix surfaces here
    /// instead of panicking.
    CoverStalled {
        /// User–permission cells still uncovered when mining stalled.
        remaining: usize,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownId { kind, id, bound } => {
                write!(f, "unknown {kind} id {id} (only {bound} {kind}s exist)")
            }
            ModelError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} name {name:?}")
            }
            ModelError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ModelError::CoverStalled { remaining } => {
                write!(
                    f,
                    "role-mining cover stalled with {remaining} cell(s) uncovered \
                     (candidate pool cannot cover the matrix)"
                )
            }
            ModelError::Io(e) => write!(f, "i/o error: {e}"),
            ModelError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Io(e) => Some(e),
            ModelError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

impl From<serde_json::Error> for ModelError {
    fn from(e: serde_json::Error) -> Self {
        ModelError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::UnknownId {
            kind: EntityKind::Role,
            id: 9,
            bound: 3,
        };
        assert_eq!(e.to_string(), "unknown role id 9 (only 3 roles exist)");
        let e = ModelError::UnknownName {
            kind: EntityKind::User,
            name: "bob".into(),
        };
        assert_eq!(e.to_string(), "unknown user name \"bob\"");
        let e = ModelError::Parse {
            line: 7,
            message: "expected 2 fields".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 7: expected 2 fields");
        let e = ModelError::CoverStalled { remaining: 4 };
        assert_eq!(
            e.to_string(),
            "role-mining cover stalled with 4 cell(s) uncovered \
             (candidate pool cannot cover the matrix)"
        );
    }

    #[test]
    fn source_chains() {
        let io = ModelError::from(std::io::Error::other("boom"));
        assert!(io.source().is_some());
        assert!(io.to_string().contains("boom"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
