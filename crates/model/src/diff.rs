//! Diffing two snapshots of an RBAC dataset.
//!
//! The detection pipeline is designed to run periodically (Section IV of
//! the paper); between runs an operator wants to know what moved —
//! which roles appeared, which assignments were granted or revoked, and
//! whether anyone's *effective* access changed. Entities are matched by
//! name (ids are snapshot-local).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::dataset::RbacDataset;
use crate::id::{PermissionId, RoleId, UserId};

/// A named user–role or role–permission edge.
pub type NamedEdge = (String, String);

/// The difference between two dataset snapshots, in names.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetDiff {
    /// Role names present only in the new snapshot.
    pub roles_added: Vec<String>,
    /// Role names present only in the old snapshot.
    pub roles_removed: Vec<String>,
    /// User names present only in the new snapshot.
    pub users_added: Vec<String>,
    /// User names present only in the old snapshot.
    pub users_removed: Vec<String>,
    /// Permission names present only in the new snapshot.
    pub permissions_added: Vec<String>,
    /// Permission names present only in the old snapshot.
    pub permissions_removed: Vec<String>,
    /// `(role, user)` assignments present only in the new snapshot.
    pub assignments_added: Vec<NamedEdge>,
    /// `(role, user)` assignments present only in the old snapshot.
    pub assignments_removed: Vec<NamedEdge>,
    /// `(role, permission)` grants present only in the new snapshot.
    pub grants_added: Vec<NamedEdge>,
    /// `(role, permission)` grants present only in the old snapshot.
    pub grants_removed: Vec<NamedEdge>,
    /// Users (by name, present in both snapshots) whose effective
    /// permission set changed.
    pub users_with_access_changes: Vec<String>,
}

impl DatasetDiff {
    /// `true` when the two snapshots are identical up to ids.
    pub fn is_empty(&self) -> bool {
        self.roles_added.is_empty()
            && self.roles_removed.is_empty()
            && self.users_added.is_empty()
            && self.users_removed.is_empty()
            && self.permissions_added.is_empty()
            && self.permissions_removed.is_empty()
            && self.assignments_added.is_empty()
            && self.assignments_removed.is_empty()
            && self.grants_added.is_empty()
            && self.grants_removed.is_empty()
    }

    /// Total number of changed items (edges + nodes).
    pub fn change_count(&self) -> usize {
        self.roles_added.len()
            + self.roles_removed.len()
            + self.users_added.len()
            + self.users_removed.len()
            + self.permissions_added.len()
            + self.permissions_removed.len()
            + self.assignments_added.len()
            + self.assignments_removed.len()
            + self.grants_added.len()
            + self.grants_removed.len()
    }
}

fn names<I: Iterator<Item = String>>(it: I) -> BTreeSet<String> {
    it.collect()
}

fn user_edges(ds: &RbacDataset) -> BTreeSet<NamedEdge> {
    let g = ds.graph();
    (0..g.n_roles())
        .map(RoleId::from_index)
        .flat_map(|r| {
            g.users_of(r)
                .map(move |u| (r, u))
                .collect::<Vec<(RoleId, UserId)>>()
        })
        .map(|(r, u)| (ds.role_name(r).to_owned(), ds.user_name(u).to_owned()))
        .collect()
}

fn perm_edges(ds: &RbacDataset) -> BTreeSet<NamedEdge> {
    let g = ds.graph();
    (0..g.n_roles())
        .map(RoleId::from_index)
        .flat_map(|r| {
            g.permissions_of(r)
                .map(move |p| (r, p))
                .collect::<Vec<(RoleId, PermissionId)>>()
        })
        .map(|(r, p)| (ds.role_name(r).to_owned(), ds.permission_name(p).to_owned()))
        .collect()
}

/// Computes the diff from `old` to `new`.
///
/// # Examples
///
/// ```
/// use rolediet_model::diff::diff;
/// use rolediet_model::RbacDataset;
///
/// let old = RbacDataset::figure1_example();
/// let mut new = old.clone();
/// new.assign_user_by_name("R03", "U04");
/// let d = diff(&old, &new);
/// assert_eq!(d.assignments_added, vec![("R03".into(), "U04".into())]);
/// assert_eq!(d.users_with_access_changes, vec!["U04"]);
/// ```
pub fn diff(old: &RbacDataset, new: &RbacDataset) -> DatasetDiff {
    let og = old.graph();
    let ng = new.graph();
    let old_roles =
        names((0..og.n_roles()).map(|r| old.role_name(RoleId::from_index(r)).to_owned()));
    let new_roles =
        names((0..ng.n_roles()).map(|r| new.role_name(RoleId::from_index(r)).to_owned()));
    let old_users =
        names((0..og.n_users()).map(|u| old.user_name(UserId::from_index(u)).to_owned()));
    let new_users =
        names((0..ng.n_users()).map(|u| new.user_name(UserId::from_index(u)).to_owned()));
    let old_perms = names(
        (0..og.n_permissions())
            .map(|p| old.permission_name(PermissionId::from_index(p)).to_owned()),
    );
    let new_perms = names(
        (0..ng.n_permissions())
            .map(|p| new.permission_name(PermissionId::from_index(p)).to_owned()),
    );
    let old_ue = user_edges(old);
    let new_ue = user_edges(new);
    let old_pe = perm_edges(old);
    let new_pe = perm_edges(new);

    let users_with_access_changes = old_users
        .intersection(&new_users)
        .filter(|name| {
            let ou = old.find_user(name).expect("in old");
            let nu = new.find_user(name).expect("in new");
            let old_eff: BTreeSet<String> = og
                .effective_permissions(ou)
                .into_iter()
                .map(|p| old.permission_name(p).to_owned())
                .collect();
            let new_eff: BTreeSet<String> = ng
                .effective_permissions(nu)
                .into_iter()
                .map(|p| new.permission_name(p).to_owned())
                .collect();
            old_eff != new_eff
        })
        .cloned()
        .collect();

    DatasetDiff {
        roles_added: new_roles.difference(&old_roles).cloned().collect(),
        roles_removed: old_roles.difference(&new_roles).cloned().collect(),
        users_added: new_users.difference(&old_users).cloned().collect(),
        users_removed: old_users.difference(&new_users).cloned().collect(),
        permissions_added: new_perms.difference(&old_perms).cloned().collect(),
        permissions_removed: old_perms.difference(&new_perms).cloned().collect(),
        assignments_added: new_ue.difference(&old_ue).cloned().collect(),
        assignments_removed: old_ue.difference(&new_ue).cloned().collect(),
        grants_added: new_pe.difference(&old_pe).cloned().collect(),
        grants_removed: old_pe.difference(&new_pe).cloned().collect(),
        users_with_access_changes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_snapshots_diff_empty() {
        let ds = RbacDataset::figure1_example();
        let d = diff(&ds, &ds.clone());
        assert!(d.is_empty());
        assert_eq!(d.change_count(), 0);
        assert!(d.users_with_access_changes.is_empty());
    }

    #[test]
    fn id_permutation_is_invisible() {
        // Build the same logical dataset with a different interning order.
        let mut a = RbacDataset::new();
        a.assign_user_by_name("r1", "u1");
        a.assign_user_by_name("r2", "u2");
        a.grant_permission_by_name("r1", "p1");
        let mut b = RbacDataset::new();
        b.grant_permission_by_name("r1", "p1");
        b.assign_user_by_name("r2", "u2");
        b.assign_user_by_name("r1", "u1");
        let d = diff(&a, &b);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn edge_changes_are_reported_with_access_impact() {
        let old = RbacDataset::figure1_example();
        let mut new = old.clone();
        new.assign_user_by_name("R01", "U04");
        let d = diff(&old, &new);
        assert_eq!(
            d.assignments_added,
            vec![("R01".to_owned(), "U04".to_owned())]
        );
        assert!(d.assignments_removed.is_empty());
        // U04 gains P02, P03 through R01; nobody else is affected.
        assert_eq!(d.users_with_access_changes, vec!["U04"]);
    }

    #[test]
    fn grant_changes_detected() {
        let old = RbacDataset::figure1_example();
        let mut new = old.clone();
        new.grant_permission_by_name("R02", "P01");
        let d = diff(&old, &new);
        assert_eq!(d.grants_added, vec![("R02".to_owned(), "P01".to_owned())]);
        // R02's users U02, U03 gain P01.
        assert_eq!(d.users_with_access_changes, vec!["U02", "U03"]);
    }

    #[test]
    fn node_additions_and_removals() {
        let old = RbacDataset::figure1_example();
        let mut new = old.clone();
        new.role("R99");
        new.user("U99");
        new.permission("P99");
        let d = diff(&old, &new);
        assert_eq!(d.roles_added, vec!["R99"]);
        assert_eq!(d.users_added, vec!["U99"]);
        assert_eq!(d.permissions_added, vec!["P99"]);
        assert_eq!(d.change_count(), 3);
        // Reverse direction: removals.
        let d = diff(&new, &old);
        assert_eq!(d.roles_removed, vec!["R99"]);
        assert_eq!(d.users_removed, vec!["U99"]);
    }

    #[test]
    fn consolidation_shows_as_role_removal_without_access_change() {
        use crate::TripartiteGraph;
        let _ = TripartiteGraph::figure1_example();
        let old = RbacDataset::figure1_example();
        // Merge R02+R04 (same users) as the consolidation planner would.
        let map = vec![Some(0), Some(1), Some(2), Some(1), Some(3)];
        let new = old.rebuild_with_role_map(&map, 4).unwrap();
        let d = diff(&old, &new);
        assert_eq!(d.roles_removed, vec!["R04"]);
        assert!(d.roles_added.is_empty());
        assert!(
            d.users_with_access_changes.is_empty(),
            "consolidation must not change access: {d:?}"
        );
    }
}
