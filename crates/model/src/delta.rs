//! Edge-level delta events: the replayable unit of graph change.
//!
//! A churn stream over a [`TripartiteGraph`] decomposes into seven
//! primitive deltas — three node additions and four edge flips. Each
//! delta is self-contained (it names the exact nodes it touches), so a
//! recorded stream can be replayed onto any graph copy to reproduce the
//! mutated graph bit-for-bit, and an incremental consumer can maintain
//! derived views (degree counters, signature buckets, distance indexes)
//! by applying the same stream it feeds to the graph.
//!
//! Node *removals* are deliberately absent: the dense-id model never
//! frees ids (the simulator models departures as revoking every edge,
//! leaving a standalone node — exactly the paper's T1 inefficiency), so
//! a seven-variant vocabulary covers every mutation the synthesizer or
//! an importer can produce.
//!
//! # Examples
//!
//! ```
//! use rolediet_model::{EdgeDelta, TripartiteGraph};
//!
//! let mut g = TripartiteGraph::new();
//! let stream = [
//!     EdgeDelta::AddUser,
//!     EdgeDelta::AddRole,
//!     EdgeDelta::AddPermission,
//!     EdgeDelta::Assign { role: 0, user: 0 },
//!     EdgeDelta::Grant { role: 0, permission: 0 },
//! ];
//! EdgeDelta::replay(&mut g, &stream)?;
//! assert_eq!(g.n_user_assignments(), 1);
//!
//! let mut copy = TripartiteGraph::new();
//! EdgeDelta::replay(&mut copy, &stream)?;
//! assert_eq!(g, copy);
//! # Ok::<(), rolediet_model::ModelError>(())
//! ```

use serde::{Deserialize, Serialize};

use crate::graph::TripartiteGraph;
use crate::id::{PermissionId, RoleId, UserId};
use crate::Result;

/// One primitive mutation of a [`TripartiteGraph`], addressed by raw
/// dense ids (`u32`, the same index space the id newtypes wrap) so
/// streams serialize compactly and replay without an interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeDelta {
    /// Add one user node (its id is the current user count).
    AddUser,
    /// Add one role node (its id is the current role count).
    AddRole,
    /// Add one permission node (its id is the current permission count).
    AddPermission,
    /// Set the user–role edge `(role, user)`.
    Assign {
        /// Role the user is assigned to.
        role: u32,
        /// User being assigned.
        user: u32,
    },
    /// Clear the user–role edge `(role, user)`.
    Revoke {
        /// Role the user is revoked from.
        role: u32,
        /// User being revoked.
        user: u32,
    },
    /// Set the role–permission edge `(role, permission)`.
    Grant {
        /// Role receiving the permission.
        role: u32,
        /// Permission being granted.
        permission: u32,
    },
    /// Clear the role–permission edge `(role, permission)`.
    Ungrant {
        /// Role losing the permission.
        role: u32,
        /// Permission being removed.
        permission: u32,
    },
}

impl EdgeDelta {
    /// Applies this delta to `graph`. Returns `Ok(true)` when the graph
    /// changed (node additions always change it; an edge flip changes it
    /// only when the edge was in the opposite state), `Ok(false)` for a
    /// no-op flip, and an error when an edge delta names an unknown id.
    pub fn apply(&self, graph: &mut TripartiteGraph) -> Result<bool> {
        match *self {
            EdgeDelta::AddUser => {
                graph.add_user();
                Ok(true)
            }
            EdgeDelta::AddRole => {
                graph.add_role();
                Ok(true)
            }
            EdgeDelta::AddPermission => {
                graph.add_permission();
                Ok(true)
            }
            EdgeDelta::Assign { role, user } => graph.assign_user(RoleId(role), UserId(user)),
            EdgeDelta::Revoke { role, user } => graph.revoke_user(RoleId(role), UserId(user)),
            EdgeDelta::Grant { role, permission } => {
                graph.grant_permission(RoleId(role), PermissionId(permission))
            }
            EdgeDelta::Ungrant { role, permission } => {
                graph.revoke_permission(RoleId(role), PermissionId(permission))
            }
        }
    }

    /// Replays `stream` onto `graph` in order, stopping at the first
    /// error. No-op flips are permitted (replaying a stream twice is an
    /// error only if an id goes out of range, which a recorded stream
    /// never produces against the graph it was recorded from).
    pub fn replay(graph: &mut TripartiteGraph, stream: &[EdgeDelta]) -> Result<()> {
        for delta in stream {
            delta.apply(graph)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_reports_change_and_noop() {
        let mut g = TripartiteGraph::with_counts(2, 1, 2);
        assert!(EdgeDelta::Assign { role: 0, user: 1 }
            .apply(&mut g)
            .unwrap());
        assert!(!EdgeDelta::Assign { role: 0, user: 1 }
            .apply(&mut g)
            .unwrap());
        assert!(EdgeDelta::Revoke { role: 0, user: 1 }
            .apply(&mut g)
            .unwrap());
        assert!(EdgeDelta::Grant {
            role: 0,
            permission: 0
        }
        .apply(&mut g)
        .unwrap());
        assert!(!EdgeDelta::Ungrant {
            role: 0,
            permission: 1
        }
        .apply(&mut g)
        .unwrap());
    }

    #[test]
    fn apply_rejects_unknown_ids() {
        let mut g = TripartiteGraph::with_counts(1, 1, 1);
        assert!(EdgeDelta::Assign { role: 5, user: 0 }
            .apply(&mut g)
            .is_err());
        assert!(EdgeDelta::Grant {
            role: 0,
            permission: 9
        }
        .apply(&mut g)
        .is_err());
    }

    #[test]
    fn replay_reproduces_a_hand_built_graph() {
        let mut by_hand = TripartiteGraph::new();
        let u = by_hand.add_user();
        let r0 = by_hand.add_role();
        let r1 = by_hand.add_role();
        let p = by_hand.add_permission();
        by_hand.assign_user(r0, u).unwrap();
        by_hand.assign_user(r1, u).unwrap();
        by_hand.grant_permission(r1, p).unwrap();
        by_hand.revoke_user(r0, u).unwrap();

        let mut replayed = TripartiteGraph::new();
        EdgeDelta::replay(
            &mut replayed,
            &[
                EdgeDelta::AddUser,
                EdgeDelta::AddRole,
                EdgeDelta::AddRole,
                EdgeDelta::AddPermission,
                EdgeDelta::Assign { role: 0, user: 0 },
                EdgeDelta::Assign { role: 1, user: 0 },
                EdgeDelta::Grant {
                    role: 1,
                    permission: 0,
                },
                EdgeDelta::Revoke { role: 0, user: 0 },
            ],
        )
        .unwrap();
        assert_eq!(by_hand, replayed);
    }

    #[test]
    fn serde_round_trip() {
        let stream = vec![
            EdgeDelta::AddRole,
            EdgeDelta::Assign { role: 0, user: 3 },
            EdgeDelta::Ungrant {
                role: 2,
                permission: 7,
            },
        ];
        let json = serde_json::to_string(&stream).unwrap();
        let back: Vec<EdgeDelta> = serde_json::from_str(&json).unwrap();
        assert_eq!(stream, back);
    }
}
