//! The tripartite user–role–permission graph.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use rolediet_matrix::{BitMatrix, CsrMatrix};

use crate::error::ModelError;
use crate::id::{EntityKind, PermissionId, RoleId, UserId};
use crate::Result;

/// The tripartite RBAC graph of Figure 1 of the paper.
///
/// Nodes are dense ids per class; edges exist only user↔role and
/// role↔permission. Both edge directions are indexed, so degree queries
/// (`users_of`, `roles_of_user`, …) are O(1) to start and iteration is in
/// ascending id order (deterministic output everywhere).
///
/// The graph is the *source of truth*; the detectors consume its two matrix
/// projections:
///
/// * [`ruam_dense`](Self::ruam_dense) / [`ruam_sparse`](Self::ruam_sparse)
///   — Role-User Assignment Matrix, roles × users;
/// * [`rpam_dense`](Self::rpam_dense) / [`rpam_sparse`](Self::rpam_sparse)
///   — Role-Permission Assignment Matrix, roles × permissions.
///
/// # Examples
///
/// ```
/// use rolediet_model::TripartiteGraph;
///
/// let mut g = TripartiteGraph::new();
/// let u = g.add_user();
/// let r = g.add_role();
/// let p = g.add_permission();
/// g.assign_user(r, u)?;
/// g.grant_permission(r, p)?;
/// assert!(g.effective_permissions(u).contains(&p));
/// # Ok::<(), rolediet_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripartiteGraph {
    role_users: Vec<BTreeSet<u32>>,
    role_perms: Vec<BTreeSet<u32>>,
    user_roles: Vec<BTreeSet<u32>>,
    perm_roles: Vec<BTreeSet<u32>>,
}

impl TripartiteGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `users`, `roles` and `permissions` unconnected
    /// nodes pre-allocated (ids `0..n` per class).
    pub fn with_counts(users: usize, roles: usize, permissions: usize) -> Self {
        TripartiteGraph {
            role_users: vec![BTreeSet::new(); roles],
            role_perms: vec![BTreeSet::new(); roles],
            user_roles: vec![BTreeSet::new(); users],
            perm_roles: vec![BTreeSet::new(); permissions],
        }
    }

    /// Adds a user node, returning its id.
    pub fn add_user(&mut self) -> UserId {
        self.user_roles.push(BTreeSet::new());
        UserId::from_index(self.user_roles.len() - 1)
    }

    /// Adds a role node, returning its id.
    pub fn add_role(&mut self) -> RoleId {
        self.role_users.push(BTreeSet::new());
        self.role_perms.push(BTreeSet::new());
        RoleId::from_index(self.role_users.len() - 1)
    }

    /// Adds a permission node, returning its id.
    pub fn add_permission(&mut self) -> PermissionId {
        self.perm_roles.push(BTreeSet::new());
        PermissionId::from_index(self.perm_roles.len() - 1)
    }

    /// Number of user nodes.
    pub fn n_users(&self) -> usize {
        self.user_roles.len()
    }

    /// Number of role nodes.
    pub fn n_roles(&self) -> usize {
        self.role_users.len()
    }

    /// Number of permission nodes.
    pub fn n_permissions(&self) -> usize {
        self.perm_roles.len()
    }

    /// Number of user–role edges.
    pub fn n_user_assignments(&self) -> usize {
        self.role_users.iter().map(BTreeSet::len).sum()
    }

    /// Number of role–permission edges.
    pub fn n_permission_grants(&self) -> usize {
        self.role_perms.iter().map(BTreeSet::len).sum()
    }

    fn check_role(&self, r: RoleId) -> Result<()> {
        if r.index() >= self.n_roles() {
            return Err(ModelError::UnknownId {
                kind: EntityKind::Role,
                id: r.0,
                bound: self.n_roles() as u32,
            });
        }
        Ok(())
    }

    fn check_user(&self, u: UserId) -> Result<()> {
        if u.index() >= self.n_users() {
            return Err(ModelError::UnknownId {
                kind: EntityKind::User,
                id: u.0,
                bound: self.n_users() as u32,
            });
        }
        Ok(())
    }

    fn check_permission(&self, p: PermissionId) -> Result<()> {
        if p.index() >= self.n_permissions() {
            return Err(ModelError::UnknownId {
                kind: EntityKind::Permission,
                id: p.0,
                bound: self.n_permissions() as u32,
            });
        }
        Ok(())
    }

    /// Adds a user–role edge. Returns `true` if the edge was new.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownId`] if either node does not exist.
    pub fn assign_user(&mut self, role: RoleId, user: UserId) -> Result<bool> {
        self.check_role(role)?;
        self.check_user(user)?;
        let added = self.role_users[role.index()].insert(user.0);
        self.user_roles[user.index()].insert(role.0);
        Ok(added)
    }

    /// Adds a role–permission edge. Returns `true` if the edge was new.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownId`] if either node does not exist.
    pub fn grant_permission(&mut self, role: RoleId, permission: PermissionId) -> Result<bool> {
        self.check_role(role)?;
        self.check_permission(permission)?;
        let added = self.role_perms[role.index()].insert(permission.0);
        self.perm_roles[permission.index()].insert(role.0);
        Ok(added)
    }

    /// Removes a user–role edge. Returns `true` if the edge existed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownId`] if either node does not exist.
    pub fn revoke_user(&mut self, role: RoleId, user: UserId) -> Result<bool> {
        self.check_role(role)?;
        self.check_user(user)?;
        let removed = self.role_users[role.index()].remove(&user.0);
        self.user_roles[user.index()].remove(&role.0);
        Ok(removed)
    }

    /// Removes a role–permission edge. Returns `true` if the edge existed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownId`] if either node does not exist.
    pub fn revoke_permission(&mut self, role: RoleId, permission: PermissionId) -> Result<bool> {
        self.check_role(role)?;
        self.check_permission(permission)?;
        let removed = self.role_perms[role.index()].remove(&permission.0);
        self.perm_roles[permission.index()].remove(&role.0);
        Ok(removed)
    }

    /// Returns `true` if `user` is assigned `role`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn has_user(&self, role: RoleId, user: UserId) -> bool {
        self.role_users[role.index()].contains(&user.0)
    }

    /// Returns `true` if `role` grants `permission`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn has_permission(&self, role: RoleId, permission: PermissionId) -> bool {
        self.role_perms[role.index()].contains(&permission.0)
    }

    /// Users assigned to `role`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `role` is out of range.
    pub fn users_of(&self, role: RoleId) -> impl Iterator<Item = UserId> + '_ {
        self.role_users[role.index()].iter().map(|&u| UserId(u))
    }

    /// Permissions granted by `role`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `role` is out of range.
    pub fn permissions_of(&self, role: RoleId) -> impl Iterator<Item = PermissionId> + '_ {
        self.role_perms[role.index()]
            .iter()
            .map(|&p| PermissionId(p))
    }

    /// Roles assigned to `user`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn roles_of_user(&self, user: UserId) -> impl Iterator<Item = RoleId> + '_ {
        self.user_roles[user.index()].iter().map(|&r| RoleId(r))
    }

    /// Roles granting `permission`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `permission` is out of range.
    pub fn roles_of_permission(
        &self,
        permission: PermissionId,
    ) -> impl Iterator<Item = RoleId> + '_ {
        self.perm_roles[permission.index()]
            .iter()
            .map(|&r| RoleId(r))
    }

    /// Number of users of `role` (its RUAM row norm).
    ///
    /// # Panics
    ///
    /// Panics if `role` is out of range.
    pub fn user_degree(&self, role: RoleId) -> usize {
        self.role_users[role.index()].len()
    }

    /// Number of permissions of `role` (its RPAM row norm).
    ///
    /// # Panics
    ///
    /// Panics if `role` is out of range.
    pub fn permission_degree(&self, role: RoleId) -> usize {
        self.role_perms[role.index()].len()
    }

    /// The set of permissions `user` can exercise through any role —
    /// the semantics consolidation must preserve.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn effective_permissions(&self, user: UserId) -> BTreeSet<PermissionId> {
        let mut out = BTreeSet::new();
        for &r in &self.user_roles[user.index()] {
            for &p in &self.role_perms[r as usize] {
                out.insert(PermissionId(p));
            }
        }
        out
    }

    /// Projects the graph onto the Role-User Assignment Matrix (dense).
    pub fn ruam_dense(&self) -> BitMatrix {
        let rows: Vec<Vec<usize>> = self
            .role_users
            .iter()
            .map(|s| s.iter().map(|&u| u as usize).collect())
            .collect();
        BitMatrix::from_rows_of_indices(self.n_roles(), self.n_users(), &rows)
            .expect("graph edges are always in range")
    }

    /// Projects the graph onto the Role-User Assignment Matrix (sparse).
    pub fn ruam_sparse(&self) -> CsrMatrix {
        self.ruam_sparse_with(1)
    }

    /// [`ruam_sparse`](Self::ruam_sparse) built by the two-pass parallel
    /// CSR kernel ([`CsrMatrix::from_row_iter_two_pass`]) on `threads`
    /// workers. Each role's `BTreeSet` already iterates its users in
    /// strictly increasing order, so the rows stream straight into the
    /// matrix with no per-row `Vec`, no sort and no dedup; output is
    /// bit-identical for every thread count.
    pub fn ruam_sparse_with(&self, threads: usize) -> CsrMatrix {
        CsrMatrix::from_row_iter_two_pass(self.n_roles(), self.n_users(), threads, |r| {
            self.role_users[r].iter().copied()
        })
    }

    /// Projects the graph onto the Role-Permission Assignment Matrix (dense).
    pub fn rpam_dense(&self) -> BitMatrix {
        let rows: Vec<Vec<usize>> = self
            .role_perms
            .iter()
            .map(|s| s.iter().map(|&p| p as usize).collect())
            .collect();
        BitMatrix::from_rows_of_indices(self.n_roles(), self.n_permissions(), &rows)
            .expect("graph edges are always in range")
    }

    /// Projects the graph onto the Role-Permission Assignment Matrix (sparse).
    pub fn rpam_sparse(&self) -> CsrMatrix {
        self.rpam_sparse_with(1)
    }

    /// [`rpam_sparse`](Self::rpam_sparse) built by the two-pass parallel
    /// CSR kernel on `threads` workers; see
    /// [`ruam_sparse_with`](Self::ruam_sparse_with).
    pub fn rpam_sparse_with(&self, threads: usize) -> CsrMatrix {
        CsrMatrix::from_row_iter_two_pass(self.n_roles(), self.n_permissions(), threads, |r| {
            self.role_perms[r].iter().copied()
        })
    }

    /// Projects the graph onto the *effective* User-Permission Assignment
    /// Matrix (users × permissions, sparse): cell `(u, p)` is set when
    /// user `u` can exercise permission `p` through at least one role.
    ///
    /// This is the matrix RBAC ultimately *means*; consolidation must
    /// keep it bit-identical, and the dual detectors (users with
    /// identical effective access) run on it.
    pub fn upam_sparse(&self) -> CsrMatrix {
        self.upam_sparse_with(1)
    }

    /// [`upam_sparse`](Self::upam_sparse) built by the two-pass parallel
    /// CSR kernel on `threads` workers. Each user's effective permission
    /// set is recomputed on the fill pass rather than materialized for
    /// the whole matrix at once, so peak memory is one row per worker
    /// instead of all rows; output is bit-identical for every thread
    /// count.
    pub fn upam_sparse_with(&self, threads: usize) -> CsrMatrix {
        CsrMatrix::from_row_iter_two_pass(self.n_users(), self.n_permissions(), threads, |u| {
            self.effective_permissions(UserId::from_index(u))
                .into_iter()
                .map(|p| p.0)
        })
    }

    /// Rebuilds the graph with roles remapped through `role_map`.
    ///
    /// `role_map[i] = Some(k)` moves old role `i` (with all its edges) onto
    /// new role `k`; several old roles mapping to the same `k` are *merged*
    /// (edge union). `None` drops the role and its edges. Users and
    /// permissions keep their ids. This is the primitive the consolidation
    /// planner uses to apply a merge plan.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownId`] if `role_map.len()` differs from
    /// [`n_roles`](Self::n_roles) or any target index is `>= n_new_roles`.
    pub fn rebuild_with_role_map(
        &self,
        role_map: &[Option<usize>],
        n_new_roles: usize,
    ) -> Result<TripartiteGraph> {
        if role_map.len() != self.n_roles() {
            return Err(ModelError::UnknownId {
                kind: EntityKind::Role,
                id: role_map.len() as u32,
                bound: self.n_roles() as u32,
            });
        }
        let mut g = TripartiteGraph::with_counts(self.n_users(), n_new_roles, self.n_permissions());
        for (old, target) in role_map.iter().enumerate() {
            let Some(new) = *target else { continue };
            if new >= n_new_roles {
                return Err(ModelError::UnknownId {
                    kind: EntityKind::Role,
                    id: new as u32,
                    bound: n_new_roles as u32,
                });
            }
            for &u in &self.role_users[old] {
                g.role_users[new].insert(u);
                g.user_roles[u as usize].insert(new as u32);
            }
            for &p in &self.role_perms[old] {
                g.role_perms[new].insert(p);
                g.perm_roles[p as usize].insert(new as u32);
            }
        }
        Ok(g)
    }

    /// Verifies internal consistency: forward and reverse indices describe
    /// the same edge sets and all ids are in range.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownId`] naming the first inconsistent id.
    pub fn validate(&self) -> Result<()> {
        for (r, users) in self.role_users.iter().enumerate() {
            for &u in users {
                let ok = self
                    .user_roles
                    .get(u as usize)
                    .is_some_and(|s| s.contains(&(r as u32)));
                if !ok {
                    return Err(ModelError::UnknownId {
                        kind: EntityKind::User,
                        id: u,
                        bound: self.n_users() as u32,
                    });
                }
            }
        }
        for (u, roles) in self.user_roles.iter().enumerate() {
            for &r in roles {
                let ok = self
                    .role_users
                    .get(r as usize)
                    .is_some_and(|s| s.contains(&(u as u32)));
                if !ok {
                    return Err(ModelError::UnknownId {
                        kind: EntityKind::Role,
                        id: r,
                        bound: self.n_roles() as u32,
                    });
                }
            }
        }
        for (r, perms) in self.role_perms.iter().enumerate() {
            for &p in perms {
                let ok = self
                    .perm_roles
                    .get(p as usize)
                    .is_some_and(|s| s.contains(&(r as u32)));
                if !ok {
                    return Err(ModelError::UnknownId {
                        kind: EntityKind::Permission,
                        id: p,
                        bound: self.n_permissions() as u32,
                    });
                }
            }
        }
        for (p, roles) in self.perm_roles.iter().enumerate() {
            for &r in roles {
                let ok = self
                    .role_perms
                    .get(r as usize)
                    .is_some_and(|s| s.contains(&(p as u32)));
                if !ok {
                    return Err(ModelError::UnknownId {
                        kind: EntityKind::Role,
                        id: r,
                        bound: self.n_roles() as u32,
                    });
                }
            }
        }
        Ok(())
    }

    /// Builds the worked example of Figure 1 of the paper: users U01–U04,
    /// roles R01–R05, permissions P01–P06 (0-indexed here), with
    ///
    /// * R01 = {U01}, R02 = {U02, U03}, R03 = {}, R04 = {U02, U03},
    ///   R05 = {U04} on the user side;
    /// * R01 = {P02, P03}, R02 = {}, R03 = {P04}, R04 = {P05, P06},
    ///   R05 = {P05, P06} on the permission side;
    /// * P01 is standalone.
    ///
    /// Used throughout tests and examples to pin expected findings.
    pub fn figure1_example() -> TripartiteGraph {
        let mut g = TripartiteGraph::with_counts(4, 5, 6);
        let ru: [&[u32]; 5] = [&[0], &[1, 2], &[], &[1, 2], &[3]];
        let rp: [&[u32]; 5] = [&[1, 2], &[], &[3], &[4, 5], &[4, 5]];
        for (r, users) in ru.iter().enumerate() {
            for &u in *users {
                g.assign_user(RoleId(r as u32), UserId(u))
                    .expect("in range");
            }
        }
        for (r, perms) in rp.iter().enumerate() {
            for &p in *perms {
                g.grant_permission(RoleId(r as u32), PermissionId(p))
                    .expect("in range");
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolediet_matrix::RowMatrix;

    #[test]
    fn add_nodes_and_edges() {
        let mut g = TripartiteGraph::new();
        let u0 = g.add_user();
        let u1 = g.add_user();
        let r = g.add_role();
        let p = g.add_permission();
        assert_eq!((g.n_users(), g.n_roles(), g.n_permissions()), (2, 1, 1));
        assert!(g.assign_user(r, u0).unwrap());
        assert!(!g.assign_user(r, u0).unwrap(), "duplicate edge not new");
        assert!(g.assign_user(r, u1).unwrap());
        assert!(g.grant_permission(r, p).unwrap());
        assert_eq!(g.n_user_assignments(), 2);
        assert_eq!(g.n_permission_grants(), 1);
        assert!(g.has_user(r, u0));
        assert!(g.has_permission(r, p));
        assert_eq!(g.user_degree(r), 2);
        assert_eq!(g.permission_degree(r), 1);
        g.validate().unwrap();
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let mut g = TripartiteGraph::with_counts(1, 1, 1);
        assert!(g.assign_user(RoleId(1), UserId(0)).is_err());
        assert!(g.assign_user(RoleId(0), UserId(9)).is_err());
        assert!(g.grant_permission(RoleId(0), PermissionId(1)).is_err());
        assert!(g.revoke_user(RoleId(3), UserId(0)).is_err());
        assert!(g.revoke_permission(RoleId(0), PermissionId(7)).is_err());
    }

    #[test]
    fn revoke_updates_both_directions() {
        let mut g = TripartiteGraph::with_counts(1, 1, 1);
        g.assign_user(RoleId(0), UserId(0)).unwrap();
        assert!(g.revoke_user(RoleId(0), UserId(0)).unwrap());
        assert!(!g.revoke_user(RoleId(0), UserId(0)).unwrap());
        assert_eq!(g.roles_of_user(UserId(0)).count(), 0);
        g.grant_permission(RoleId(0), PermissionId(0)).unwrap();
        assert!(g.revoke_permission(RoleId(0), PermissionId(0)).unwrap());
        assert_eq!(g.roles_of_permission(PermissionId(0)).count(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn figure1_shape() {
        let g = TripartiteGraph::figure1_example();
        assert_eq!((g.n_users(), g.n_roles(), g.n_permissions()), (4, 5, 6));
        // R03 has no users; R02 has no permissions; P01 (index 0) standalone.
        assert_eq!(g.user_degree(RoleId(2)), 0);
        assert_eq!(g.permission_degree(RoleId(1)), 0);
        assert_eq!(g.roles_of_permission(PermissionId(0)).count(), 0);
        // R02 and R04 share users; R04 and R05 share permissions.
        let ru: Vec<_> = g.users_of(RoleId(1)).collect();
        assert_eq!(ru, g.users_of(RoleId(3)).collect::<Vec<_>>());
        let rp: Vec<_> = g.permissions_of(RoleId(3)).collect();
        assert_eq!(rp, g.permissions_of(RoleId(4)).collect::<Vec<_>>());
        g.validate().unwrap();
    }

    #[test]
    fn matrix_projections_agree() {
        let g = TripartiteGraph::figure1_example();
        let rd = g.ruam_dense();
        let rs = g.ruam_sparse();
        assert_eq!(rolediet_matrix::CsrMatrix::from_dense(&rd), rs);
        assert_eq!(rd.rows(), 5);
        assert_eq!(rd.cols(), 4);
        let pd = g.rpam_dense();
        let ps = g.rpam_sparse();
        assert_eq!(rolediet_matrix::CsrMatrix::from_dense(&pd), ps);
        assert_eq!(pd.cols(), 6);
        // Column sums of RPAM: P01 standalone → first column sum 0.
        assert_eq!(pd.col_sums()[0], 0);
    }

    #[test]
    fn sparse_projections_identical_across_thread_counts() {
        let graphs = [
            TripartiteGraph::figure1_example(),
            TripartiteGraph::new(),
            TripartiteGraph::with_counts(3, 4, 2),
        ];
        for g in &graphs {
            let (ruam, rpam, upam) = (g.ruam_sparse(), g.rpam_sparse(), g.upam_sparse());
            for threads in [1, 2, 4, 8] {
                assert_eq!(g.ruam_sparse_with(threads), ruam, "threads={threads}");
                assert_eq!(g.rpam_sparse_with(threads), rpam, "threads={threads}");
                assert_eq!(g.upam_sparse_with(threads), upam, "threads={threads}");
            }
        }
    }

    #[test]
    fn upam_matches_effective_permissions() {
        let g = TripartiteGraph::figure1_example();
        let upam = g.upam_sparse();
        assert_eq!(upam.rows(), 4);
        assert_eq!(upam.cols(), 6);
        for u in 0..4 {
            let expected: Vec<usize> = g
                .effective_permissions(UserId::from_index(u))
                .into_iter()
                .map(|p| p.index())
                .collect();
            assert_eq!(upam.row_indices(u), expected, "user {u}");
        }
        // U02 and U03 (indices 1, 2) have identical effective access
        // (both via R02+R04) — identical UPAM rows.
        assert!(upam.rows_equal(1, 2));
        assert!(!upam.rows_equal(0, 1));
    }

    #[test]
    fn effective_permissions_union_over_roles() {
        let g = TripartiteGraph::figure1_example();
        // U02 (index 1) has roles R02 (no perms) and R04 ({P05, P06}).
        let perms = g.effective_permissions(UserId(1));
        assert_eq!(
            perms.into_iter().collect::<Vec<_>>(),
            vec![PermissionId(4), PermissionId(5)]
        );
        // U01 (index 0) has only R01 → {P02, P03}.
        let perms = g.effective_permissions(UserId(0));
        assert_eq!(
            perms.into_iter().collect::<Vec<_>>(),
            vec![PermissionId(1), PermissionId(2)]
        );
    }

    #[test]
    fn rebuild_with_role_map_merges_edges() {
        let g = TripartiteGraph::figure1_example();
        // Merge R04 and R05 (indices 3, 4) into new role 3; keep 0..3 as-is.
        let map = vec![Some(0), Some(1), Some(2), Some(3), Some(3)];
        let g2 = g.rebuild_with_role_map(&map, 4).unwrap();
        assert_eq!(g2.n_roles(), 4);
        g2.validate().unwrap();
        // New role 3 has users of both (U02, U03 from R04 and U04 from R05)
        let users: Vec<_> = g2.users_of(RoleId(3)).collect();
        assert_eq!(users, vec![UserId(1), UserId(2), UserId(3)]);
        // and the shared permission set {P05, P06}.
        let perms: Vec<_> = g2.permissions_of(RoleId(3)).collect();
        assert_eq!(perms, vec![PermissionId(4), PermissionId(5)]);
        // Users and permissions keep their ids.
        assert_eq!(g2.n_users(), 4);
        assert_eq!(g2.n_permissions(), 6);
    }

    #[test]
    fn rebuild_with_role_map_drops_roles() {
        let g = TripartiteGraph::figure1_example();
        let map = vec![None, Some(0), None, Some(1), None];
        let g2 = g.rebuild_with_role_map(&map, 2).unwrap();
        assert_eq!(g2.n_roles(), 2);
        assert_eq!(
            g2.users_of(RoleId(0)).collect::<Vec<_>>(),
            vec![UserId(1), UserId(2)]
        );
        g2.validate().unwrap();
    }

    #[test]
    fn rebuild_with_role_map_validates() {
        let g = TripartiteGraph::figure1_example();
        assert!(g.rebuild_with_role_map(&[Some(0)], 1).is_err());
        let bad = vec![Some(5), None, None, None, None];
        assert!(g.rebuild_with_role_map(&bad, 2).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let g = TripartiteGraph::figure1_example();
        let json = serde_json::to_string(&g).unwrap();
        let back: TripartiteGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
