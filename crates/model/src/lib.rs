//! RBAC data model: the tripartite user–role–permission graph.
//!
//! The paper models RBAC data as a *tripartite graph*: users, roles and
//! permissions are nodes; edges exist only between users and roles (the
//! user is assigned the role) and between roles and permissions (the role
//! grants the permission). This crate provides:
//!
//! * [`UserId`], [`RoleId`], [`PermissionId`] — dense `u32` newtype ids.
//! * [`TripartiteGraph`] — the edge structure with forward and reverse
//!   indices, degree queries and projection to the assignment matrices
//!   ([RUAM/RPAM](TripartiteGraph::ruam_sparse)) that every detector
//!   consumes.
//! * [`Interner`] — bidirectional name ↔ id mapping.
//! * [`RbacDataset`] — graph + interners + entity metadata, the unit that
//!   I/O and the CLI operate on.
//! * [`io`] — CSV and JSON import/export.
//! * [`stats`] — dataset shape statistics (counts, density, degree
//!   distributions) like the ones quoted in Section IV-B of the paper.
//!
//! # Examples
//!
//! ```
//! use rolediet_model::RbacDataset;
//!
//! let mut ds = RbacDataset::new();
//! let alice = ds.user("alice");
//! let admin = ds.role("admin");
//! let read = ds.permission("fs:read");
//! ds.assign_user(admin, alice);
//! ds.grant_permission(admin, read);
//! assert_eq!(ds.graph().users_of(admin).count(), 1);
//! let ruam = ds.graph().ruam_sparse();
//! assert_eq!(rolediet_matrix::RowMatrix::nnz(&ruam), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dataset;
pub mod delta;
pub mod diff;
pub mod error;
pub mod graph;
pub mod id;
pub mod interner;
pub mod io;
pub mod stats;

pub use dataset::RbacDataset;
pub use delta::EdgeDelta;
pub use error::ModelError;
pub use graph::TripartiteGraph;
pub use id::{EntityKind, PermissionId, RoleId, UserId};
pub use interner::Interner;
pub use stats::DatasetStats;

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
