//! Typed, dense node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The three node classes of the tripartite RBAC graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EntityKind {
    /// A human or machine account.
    User,
    /// A role: the indirection between users and permissions.
    Role,
    /// A permission (entitlement) on some resource.
    Permission,
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EntityKind::User => "user",
            EntityKind::Role => "role",
            EntityKind::Permission => "permission",
        })
    }
}

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $kind:expr) => {
        $(#[$doc])*
        ///
        /// Ids are dense (`0..n`), assigned in insertion order, and double
        /// as row/column indices of the assignment matrices — `RoleId(i)`
        /// is row `i` of RUAM and RPAM.
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// The matrix index this id maps to.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a matrix index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("id overflows u32"))
            }

            /// The node class of this id type.
            pub const KIND: EntityKind = $kind;
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> u32 {
                v.0
            }
        }
    };
}

define_id!(
    /// Identifier of a user node.
    UserId,
    "U",
    EntityKind::User
);
define_id!(
    /// Identifier of a role node.
    RoleId,
    "R",
    EntityKind::Role
);
define_id!(
    /// Identifier of a permission node.
    PermissionId,
    "P",
    EntityKind::Permission
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(UserId(1).to_string(), "U1");
        assert_eq!(RoleId(4).to_string(), "R4");
        assert_eq!(PermissionId(0).to_string(), "P0");
    }

    #[test]
    fn index_roundtrip() {
        let r = RoleId::from_index(7);
        assert_eq!(r.index(), 7);
        assert_eq!(u32::from(r), 7);
        assert_eq!(RoleId::from(7u32), r);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(UserId(1) < UserId(2));
        assert_eq!(UserId::default(), UserId(0));
    }

    #[test]
    fn kinds() {
        assert_eq!(UserId::KIND, EntityKind::User);
        assert_eq!(RoleId::KIND, EntityKind::Role);
        assert_eq!(PermissionId::KIND, EntityKind::Permission);
        assert_eq!(EntityKind::Role.to_string(), "role");
    }

    #[test]
    fn serde_is_transparent() {
        assert_eq!(serde_json::to_string(&RoleId(3)).unwrap(), "3");
        let r: RoleId = serde_json::from_str("3").unwrap();
        assert_eq!(r, RoleId(3));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn from_index_overflow_panics() {
        UserId::from_index(usize::MAX);
    }
}
