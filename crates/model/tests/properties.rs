//! Property tests for the tripartite graph against a naive reference
//! model (plain edge sets), plus rebuild and I/O invariants.

use std::collections::BTreeSet;

use proptest::collection::vec;
use proptest::prelude::*;

use rolediet_matrix::RowMatrix;
use rolediet_model::io::csv::{read_edges, write_edges, EdgeKind};
use rolediet_model::{PermissionId, RbacDataset, RoleId, TripartiteGraph, UserId};

/// A graph mutation in the reference model's terms.
#[derive(Debug, Clone)]
enum Op {
    AssignUser(usize, usize),
    RevokeUser(usize, usize),
    GrantPerm(usize, usize),
    RevokePerm(usize, usize),
}

fn ops_strategy(roles: usize, users: usize, perms: usize) -> impl Strategy<Value = Vec<Op>> {
    vec(
        prop_oneof![
            (0..roles, 0..users).prop_map(|(r, u)| Op::AssignUser(r, u)),
            (0..roles, 0..users).prop_map(|(r, u)| Op::RevokeUser(r, u)),
            (0..roles, 0..perms).prop_map(|(r, p)| Op::GrantPerm(r, p)),
            (0..roles, 0..perms).prop_map(|(r, p)| Op::RevokePerm(r, p)),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn graph_matches_reference_edge_sets(ops in ops_strategy(6, 8, 7)) {
        let (roles, users, perms) = (6usize, 8usize, 7usize);
        let mut g = TripartiteGraph::with_counts(users, roles, perms);
        let mut ref_user_edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut ref_perm_edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for op in &ops {
            match *op {
                Op::AssignUser(r, u) => {
                    let added = g
                        .assign_user(RoleId::from_index(r), UserId::from_index(u))
                        .unwrap();
                    prop_assert_eq!(added, ref_user_edges.insert((r, u)));
                }
                Op::RevokeUser(r, u) => {
                    let removed = g
                        .revoke_user(RoleId::from_index(r), UserId::from_index(u))
                        .unwrap();
                    prop_assert_eq!(removed, ref_user_edges.remove(&(r, u)));
                }
                Op::GrantPerm(r, p) => {
                    let added = g
                        .grant_permission(RoleId::from_index(r), PermissionId::from_index(p))
                        .unwrap();
                    prop_assert_eq!(added, ref_perm_edges.insert((r, p)));
                }
                Op::RevokePerm(r, p) => {
                    let removed = g
                        .revoke_permission(RoleId::from_index(r), PermissionId::from_index(p))
                        .unwrap();
                    prop_assert_eq!(removed, ref_perm_edges.remove(&(r, p)));
                }
            }
        }
        // Internal consistency after an arbitrary mutation sequence.
        g.validate().unwrap();
        prop_assert_eq!(g.n_user_assignments(), ref_user_edges.len());
        prop_assert_eq!(g.n_permission_grants(), ref_perm_edges.len());
        // Forward and reverse views agree with the reference.
        for r in 0..roles {
            let rid = RoleId::from_index(r);
            let have: BTreeSet<usize> = g.users_of(rid).map(|u| u.index()).collect();
            let want: BTreeSet<usize> = ref_user_edges
                .iter()
                .filter(|&&(rr, _)| rr == r)
                .map(|&(_, u)| u)
                .collect();
            prop_assert_eq!(have, want);
        }
        for u in 0..users {
            let uid = UserId::from_index(u);
            let have: BTreeSet<usize> = g.roles_of_user(uid).map(|r| r.index()).collect();
            let want: BTreeSet<usize> = ref_user_edges
                .iter()
                .filter(|&&(_, uu)| uu == u)
                .map(|&(r, _)| r)
                .collect();
            prop_assert_eq!(have, want);
        }
        // Matrix projections agree with the reference too.
        let ruam = g.ruam_sparse();
        prop_assert_eq!(ruam.nnz(), ref_user_edges.len());
        for &(r, u) in &ref_user_edges {
            prop_assert!(ruam.get(r, u));
        }
        // Effective permissions = union over the user's roles.
        for u in 0..users {
            let uid = UserId::from_index(u);
            let mut want: BTreeSet<PermissionId> = BTreeSet::new();
            for &(r, uu) in &ref_user_edges {
                if uu == u {
                    for &(rr, p) in &ref_perm_edges {
                        if rr == r {
                            want.insert(PermissionId::from_index(p));
                        }
                    }
                }
            }
            prop_assert_eq!(g.effective_permissions(uid), want);
        }
    }

    #[test]
    fn rebuild_identity_map_is_identity(ops in ops_strategy(5, 6, 6)) {
        let mut g = TripartiteGraph::with_counts(6, 5, 6);
        for op in &ops {
            match *op {
                Op::AssignUser(r, u) => {
                    g.assign_user(RoleId::from_index(r), UserId::from_index(u)).unwrap();
                }
                Op::GrantPerm(r, p) => {
                    g.grant_permission(RoleId::from_index(r), PermissionId::from_index(p))
                        .unwrap();
                }
                _ => {}
            }
        }
        let map: Vec<Option<usize>> = (0..g.n_roles()).map(Some).collect();
        let g2 = g.rebuild_with_role_map(&map, g.n_roles()).unwrap();
        prop_assert_eq!(g2, g);
    }

    #[test]
    fn csv_roundtrip_preserves_edges(ops in ops_strategy(5, 6, 6)) {
        let mut ds = RbacDataset::new();
        for op in &ops {
            match *op {
                Op::AssignUser(r, u) => {
                    ds.assign_user_by_name(&format!("r{r}"), &format!("u{u}"));
                }
                Op::GrantPerm(r, p) => {
                    ds.grant_permission_by_name(&format!("r{r}"), &format!("p{p}"));
                }
                _ => {}
            }
        }
        let mut users_csv = Vec::new();
        write_edges(&mut users_csv, &ds, EdgeKind::UserAssignments).unwrap();
        let mut perms_csv = Vec::new();
        write_edges(&mut perms_csv, &ds, EdgeKind::PermissionGrants).unwrap();
        let mut back = RbacDataset::new();
        read_edges(users_csv.as_slice(), &mut back, EdgeKind::UserAssignments).unwrap();
        read_edges(perms_csv.as_slice(), &mut back, EdgeKind::PermissionGrants).unwrap();
        // Compare edge sets by name (ids may be permuted by read order).
        let edges_by_name = |d: &RbacDataset| {
            let mut out = BTreeSet::new();
            for r in 0..d.graph().n_roles() {
                let rid = RoleId::from_index(r);
                for u in d.graph().users_of(rid) {
                    out.insert((
                        d.role_name(rid).to_owned(),
                        d.user_name(u).to_owned(),
                    ));
                }
            }
            out
        };
        prop_assert_eq!(edges_by_name(&ds), edges_by_name(&back));
    }
}
