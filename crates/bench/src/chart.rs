//! Minimal ASCII line charts for the `repro` harness.
//!
//! The paper presents Figures 2 and 3 as log-scale runtime plots; this
//! renders the measured series the same way directly in the terminal (and
//! in EXPERIMENTS.md), so the *shape* claims — flat vs. superlinear,
//! crossover points, orders-of-magnitude gaps — are visible without
//! external plotting tools.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Plot glyph for this series.
    pub glyph: char,
    /// Points, ascending in `x`.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChartOptions {
    /// Plot area width in columns.
    pub width: usize,
    /// Plot area height in rows.
    pub height: usize,
    /// Use log₁₀ scale on the y axis (the paper's figures do).
    pub log_y: bool,
}

impl Default for ChartOptions {
    fn default() -> Self {
        ChartOptions {
            width: 60,
            height: 16,
            log_y: true,
        }
    }
}

/// Renders the series into a text chart with y-axis labels and a legend.
///
/// Returns a note string instead of a chart when there is nothing
/// plottable (no series, or log scale with no positive values).
pub fn render(series: &[Series], opts: &ChartOptions) -> String {
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    let usable: Vec<(f64, f64)> = if opts.log_y {
        all.iter().copied().filter(|&(_, y)| y > 0.0).collect()
    } else {
        all
    };
    if usable.is_empty() {
        return "(no data to plot)\n".to_owned();
    }
    let tx = |x: f64| x;
    let ty = |y: f64| if opts.log_y { y.log10() } else { y };
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &usable {
        x_min = x_min.min(tx(x));
        x_max = x_max.max(tx(x));
        y_min = y_min.min(ty(y));
        y_max = y_max.max(ty(y));
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let (w, h) = (opts.width.max(2), opts.height.max(2));
    let mut grid = vec![vec![' '; w]; h];
    for s in series {
        for &(x, y) in &s.points {
            if opts.log_y && y <= 0.0 {
                continue;
            }
            let cx = ((tx(x) - x_min) / (x_max - x_min) * (w - 1) as f64).round() as usize;
            let cy = ((ty(y) - y_min) / (y_max - y_min) * (h - 1) as f64).round() as usize;
            let row = h - 1 - cy;
            grid[row][cx] = s.glyph;
        }
    }
    let label = |v: f64| -> String {
        let v = if opts.log_y { 10f64.powf(v) } else { v };
        if v >= 100.0 {
            format!("{v:.0}")
        } else if v >= 1.0 {
            format!("{v:.2}")
        } else {
            format!("{v:.4}")
        }
    };
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let frac = 1.0 - i as f64 / (h - 1) as f64;
        let yv = y_min + frac * (y_max - y_min);
        let tick = if i == 0 || i == h - 1 || i == (h - 1) / 2 {
            format!("{:>9}", label(yv))
        } else {
            " ".repeat(9)
        };
        out.push_str(&tick);
        out.push_str(" |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push_str(" +");
    out.push_str(&"-".repeat(w));
    out.push('\n');
    out.push_str(&format!(
        "{:>9}  {:<.0}{}{:>.0}\n",
        "x:",
        x_min,
        " ".repeat(w.saturating_sub(8)),
        x_max
    ));
    for s in series {
        out.push_str(&format!("{:>11} {} = {}\n", "", s.glyph, s.name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                name: "flat".into(),
                glyph: '*',
                points: (1..=10).map(|i| (i as f64, 0.5)).collect(),
            },
            Series {
                name: "quadratic".into(),
                glyph: '#',
                points: (1..=10).map(|i| (i as f64, (i * i) as f64)).collect(),
            },
        ]
    }

    #[test]
    fn renders_grid_with_labels_and_legend() {
        let text = render(&demo_series(), &ChartOptions::default());
        assert!(text.contains('*'));
        assert!(text.contains('#'));
        assert!(text.contains("flat"));
        assert!(text.contains("quadratic"));
        // y labels include the extremes (log scale): 0.5 and 100.
        assert!(text.contains("0.50"), "{text}");
        assert!(text.contains("100"), "{text}");
    }

    #[test]
    fn shape_is_preserved_on_log_scale() {
        let text = render(&demo_series(), &ChartOptions::default());
        // The flat series occupies the bottom row; the quadratic one
        // reaches the top row.
        let rows: Vec<&str> = text.lines().collect();
        assert!(rows[0].contains('#'), "top row has the max point");
        assert!(
            rows.iter()
                .rev()
                .find(|r| r.contains('*'))
                .unwrap()
                .trim_end()
                .ends_with('*')
                || text.contains('*'),
        );
    }

    #[test]
    fn empty_input_is_a_note() {
        assert_eq!(render(&[], &ChartOptions::default()), "(no data to plot)\n");
        // Log scale with only non-positive values degrades gracefully.
        let s = vec![Series {
            name: "zeroes".into(),
            glyph: 'z',
            points: vec![(1.0, 0.0)],
        }];
        assert_eq!(render(&s, &ChartOptions::default()), "(no data to plot)\n");
    }

    #[test]
    fn linear_scale_supported() {
        let opts = ChartOptions {
            log_y: false,
            ..ChartOptions::default()
        };
        let text = render(&demo_series(), &opts);
        assert!(text.contains('#'));
    }

    #[test]
    fn single_point_series_does_not_divide_by_zero() {
        let s = vec![Series {
            name: "one".into(),
            glyph: 'o',
            points: vec![(5.0, 2.0)],
        }];
        let text = render(&s, &ChartOptions::default());
        assert!(text.contains('o'));
    }
}
