//! Shared harness for the paper-reproduction benchmarks.
//!
//! The `repro` binary and the Criterion benches both time the three
//! strategies of Section III-C on identical generated inputs; this
//! library holds the shared pieces: method wrappers, timing helpers and
//! series formatting. See DESIGN.md §7 for the experiment index and
//! EXPERIMENTS.md for recorded results.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chart;

use std::time::{Duration, Instant};

use rolediet_core::{Parallelism, SimilarityConfig, Strategy};
use rolediet_matrix::CsrMatrix;
use rolediet_synth::{generate_matrix, MatrixGenConfig};

/// The three methods of the paper, in presentation order.
pub fn paper_strategies() -> Vec<Strategy> {
    vec![
        Strategy::ExactDbscan,
        Strategy::hnsw_default(),
        Strategy::Custom,
    ]
}

/// Times one "find roles sharing the same users" run (the Figure 2/3
/// task) of `strategy` over `matrix`. Returns (elapsed, groups found).
pub fn time_same_groups(matrix: &CsrMatrix, strategy: &Strategy) -> (Duration, usize) {
    time_same_groups_with(matrix, strategy, Parallelism::Sequential)
}

/// [`time_same_groups`] under an explicit [`Parallelism`] setting, for
/// the speedup-curve benches and the `--threads` repro flag.
pub fn time_same_groups_with(
    matrix: &CsrMatrix,
    strategy: &Strategy,
    parallelism: Parallelism,
) -> (Duration, usize) {
    let start = Instant::now();
    let groups = rolediet_core::strategy::find_same_groups(matrix, strategy, parallelism);
    (start.elapsed(), groups.len())
}

/// Times one "find roles sharing similar users" run of `strategy`.
pub fn time_similar_pairs(
    matrix: &CsrMatrix,
    transpose: &CsrMatrix,
    strategy: &Strategy,
    threshold: usize,
) -> (Duration, usize) {
    time_similar_pairs_with(
        matrix,
        transpose,
        strategy,
        threshold,
        Parallelism::Sequential,
    )
}

/// [`time_similar_pairs`] under an explicit [`Parallelism`] setting.
pub fn time_similar_pairs_with(
    matrix: &CsrMatrix,
    transpose: &CsrMatrix,
    strategy: &Strategy,
    threshold: usize,
    parallelism: Parallelism,
) -> (Duration, usize) {
    let cfg = SimilarityConfig {
        threshold,
        ..SimilarityConfig::default()
    };
    let start = Instant::now();
    let pairs =
        rolediet_core::strategy::find_similar_pairs(matrix, transpose, strategy, &cfg, parallelism);
    (start.elapsed(), pairs.len())
}

/// Mean and (population) standard deviation of a duration sample.
pub fn mean_std(samples: &[Duration]) -> (f64, f64) {
    let secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let var = secs.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / secs.len() as f64;
    (mean, var.sqrt())
}

/// Expected number of users assigned per role in sweep matrices.
///
/// Held constant across sweep points: a role's fan-out is a property of
/// the organization, not of how many user columns the matrix happens to
/// have. This is also what makes the Figure-2 curves nearly flat in the
/// number of users, as the paper reports.
pub const SWEEP_ONES_PER_ROW: f64 = 50.0;

/// Generates the paper's synthetic matrix for a sweep point, seeded by
/// the point itself so every method sees the same data.
pub fn sweep_matrix(roles: usize, users: usize, run: usize) -> CsrMatrix {
    sweep_matrix_with(roles, users, run, 0)
}

/// [`sweep_matrix`] with `perturbed` members per planted cluster flipped
/// by one bit — the input for the T5 (`--similar`) sweeps, which need
/// planted Hamming-1 pairs to find.
pub fn sweep_matrix_with(roles: usize, users: usize, run: usize, perturbed: usize) -> CsrMatrix {
    let seed = (roles as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(users as u64)
        .wrapping_add((run as u64) << 32);
    let density = (SWEEP_ONES_PER_ROW / users as f64).min(1.0);
    generate_matrix(MatrixGenConfig {
        density,
        perturbed_per_cluster: perturbed,
        ..MatrixGenConfig::paper(roles, users, seed)
    })
    .sparse()
}

/// One measured point of a sweep series.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept variable's value (number of users or roles).
    pub x: usize,
    /// Mean runtime in seconds over the repetitions.
    pub mean_secs: f64,
    /// Standard deviation in seconds.
    pub std_secs: f64,
    /// Findings count (sanity: all methods should roughly agree).
    pub found: usize,
}

/// Renders a sweep series as an aligned table, one row per point.
pub fn format_series(method: &str, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    for p in points {
        out.push_str(&format!(
            "{method:<14} x={:<6} mean={:>10.4}s std={:>8.4}s found={}\n",
            p.x, p.mean_secs, p.std_secs, p.found
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_ordered_as_in_paper() {
        let s = paper_strategies();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].name(), "exact-dbscan");
        assert_eq!(s[1].name(), "approx-hnsw");
        assert_eq!(s[2].name(), "custom");
    }

    #[test]
    fn timing_wrappers_work() {
        let m = sweep_matrix(100, 60, 0);
        let t = m.transpose();
        for s in paper_strategies() {
            let (d, groups) = time_same_groups(&m, &s);
            assert!(d > Duration::ZERO);
            if s.is_exact() {
                assert!(groups > 0, "planted clusters must be found by {}", s.name());
            }
            let (d, _) = time_similar_pairs(&m, &t, &s, 1);
            assert!(d > Duration::ZERO);
        }
    }

    #[test]
    fn parallel_timing_wrappers_match_sequential_counts() {
        let m = sweep_matrix(100, 60, 0);
        let t = m.transpose();
        let s = Strategy::Custom;
        let (_, seq_groups) = time_same_groups(&m, &s);
        let (_, seq_pairs) = time_similar_pairs(&m, &t, &s, 1);
        for threads in [2, 4] {
            let p = Parallelism::Threads(threads);
            assert_eq!(time_same_groups_with(&m, &s, p).1, seq_groups);
            assert_eq!(time_similar_pairs_with(&m, &t, &s, 1, p).1, seq_pairs);
        }
    }

    #[test]
    fn same_sweep_point_is_reproducible() {
        let a = sweep_matrix(50, 400, 1);
        let b = sweep_matrix(50, 400, 1);
        assert_eq!(a, b);
        let c = sweep_matrix(50, 400, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn sweep_row_norms_stay_constant_across_user_counts() {
        use rolediet_matrix::RowMatrix;
        for users in [500usize, 2_000, 8_000] {
            let m = sweep_matrix(200, users, 0);
            let mean = m.nnz() as f64 / 200.0;
            assert!(
                (mean - SWEEP_ONES_PER_ROW).abs() < 8.0,
                "users={users}: mean row norm {mean}"
            );
        }
    }

    #[test]
    fn mean_std_math() {
        let samples = vec![Duration::from_secs(1), Duration::from_secs(3)];
        let (m, s) = mean_std(&samples);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn format_series_lines() {
        let pts = vec![SweepPoint {
            x: 1000,
            mean_secs: 0.5,
            std_secs: 0.01,
            found: 25,
        }];
        let s = format_series("custom", &pts);
        assert!(s.contains("custom"));
        assert!(s.contains("x=1000"));
    }
}
