//! Machine-readable benchmark of the PR 2–PR 8 kernels.
//!
//! Times the parallelized stages — two-pass CSR matrix build,
//! norm-bucketed disjoint supplement, MinHash sketching + LSH banding
//! (PR 2), the DBSCAN connected-components grouping kernel (PR 3), the
//! packed bounded-distance engine against the scalar O(n²)
//! neighbourhood precompute it replaced (PR 5), the incremental apply
//! of a 1,000-event churn batch against the full batch rerun it avoids
//! (PR 6), and the PR 7 scale plane: the stream-keyed parallel org
//! generator against its sequential baseline, the 8-word-lane popcount
//! kernel against the PR 5 4-word unroll on a dense packed matrix, the
//! memory-budgeted sharded distance engine against the resident flat
//! engine and the scalar oracle, and a million-user end-to-end run
//! (generation + sharded distance plane, bit-identity asserted against
//! the unbudgeted engine). PR 8 adds the approximate path: the batched
//! two-phase HNSW build against the sequential-insert oracle (asserted
//! bit-identical per thread count before timing), the batch k-NN probe,
//! and its recall against the exact neighbourhoods — at both the
//! real-org scale and inside the million-user stage. PR 10 adds role
//! mining: parallel candidate generation on the real-org UPAM
//! (`mining_candidates`), a real-org run of the lazy-greedy (CELF)
//! cover with its exactness verified (`mining_lazy`), and the
//! lazy-vs-eager engine ratio on the largest eager-feasible
//! organization (`mining_eager_baseline` vs. the small `mining_lazy`
//! row; the two engines are asserted bit-identical before timing).
//! Results are written as a JSON array of
//! `{stage, size, threads, ns, found}` records (`scripts/bench.sh`
//! invokes this and commits the output as `BENCH_pr10.json`; the
//! schema is unchanged from `BENCH_pr2.json`…`BENCH_pr8.json` so the
//! perf trajectory stays machine-readable; recall rows store basis
//! points in `found`).
//!
//! ```text
//! bench_json [--scale 1.0] [--seed 7] [--iters 3]
//!            [--users N --roles N --density D] [--skip-million]
//!            [--out BENCH_pr10.json]
//! ```
//!
//! By default the matrix-build, supplement, DBSCAN-grouping and
//! distance-precompute stages run at the real-org scale of
//! `results_realorg.txt` (the ing-like organization at `--scale 1.0`);
//! passing any of `--users`/`--roles`/`--density` swaps the subject
//! organization for a [`rolediet_synth::profiles::custom_shape`] org of
//! that shape instead. Every result is cross-checked against its
//! baseline before timing is trusted. The grouping stages share one
//! neighbourhood precompute (the O(n²) region queries are what PR 5
//! changes, timed as their own stage), so the kernel and the sequential
//! expansion are timed on identical cached inputs. The million-user
//! stage always runs at its fixed 1M-user shape regardless of flags;
//! `--skip-million` drops it for quick CI passes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::Instant;

use rolediet_bench::sweep_matrix;
use rolediet_cluster::dbscan::{Dbscan, DbscanParams};
use rolediet_cluster::hnsw::{Hnsw, HnswParams};
use rolediet_cluster::metric::{BinaryMetric, BinaryRows, PackedPointSet};
use rolediet_cluster::minhash::{MinHashLsh, MinHashLshParams};
use rolediet_cluster::neighbors::{
    all_range_queries_packed, all_range_queries_sharded, all_range_queries_with,
};
use rolediet_cluster::recall::recall_at_k;
use rolediet_core::config::DEFAULT_HNSW_BATCH;
use rolediet_core::cooccur::{disjoint_supplement, disjoint_supplement_naive};
use rolediet_core::{DetectionConfig, Parallelism, Pipeline, SimilarityConfig, Strategy};
use rolediet_matrix::packed::{xor_popcount_within, xor_popcount_within_unrolled4};
use rolediet_matrix::{CsrMatrix, PackedRows, PackedShards, RowMatrix};
use rolediet_model::RoleId;
use rolediet_synth::churn::{ChurnSimulator, ChurnWeights};
use rolediet_synth::profiles::{custom_shape, ing_like};
use rolediet_synth::{generate_org, generate_org_with, MatrixGenConfig, OrgConfig};
use serde::Serialize;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One timed measurement.
#[derive(Serialize)]
struct Record {
    /// Kernel or sweep identifier (`*_pr1` suffixes are baselines).
    stage: String,
    /// Input shape, `rows x cols`.
    size: String,
    /// Worker threads (baselines are sequential: 1).
    threads: usize,
    /// Best-of-`--iters` wall clock, nanoseconds.
    ns: u128,
    /// Result cardinality (sanity: identical across thread counts).
    found: usize,
}

struct Opts {
    scale: f64,
    seed: u64,
    iters: usize,
    users: Option<usize>,
    roles: Option<usize>,
    density: Option<f64>,
    million: bool,
    out: String,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut o = Opts {
            scale: 1.0,
            seed: 7,
            iters: 3,
            users: None,
            roles: None,
            density: None,
            million: true,
            out: "BENCH_pr10.json".to_owned(),
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut val = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| panic!("flag {name} needs a value"))
                    .clone()
            };
            match a.as_str() {
                "--scale" => o.scale = val("--scale").parse().expect("--scale"),
                "--seed" => o.seed = val("--seed").parse().expect("--seed"),
                "--iters" => o.iters = val("--iters").parse().expect("--iters"),
                "--users" => o.users = Some(val("--users").parse().expect("--users")),
                "--roles" => o.roles = Some(val("--roles").parse().expect("--roles")),
                "--density" => o.density = Some(val("--density").parse().expect("--density")),
                "--skip-million" => o.million = false,
                "--out" => o.out = val("--out"),
                other => panic!("unknown flag {other:?}"),
            }
        }
        o.iters = o.iters.max(1);
        o
    }

    /// The subject organization: the published real-org shape by
    /// default, or a [`custom_shape`] org when any shape flag is given.
    fn org_config(&self) -> OrgConfig {
        if self.users.is_some() || self.roles.is_some() || self.density.is_some() {
            let users = self.users.unwrap_or(89_900);
            let roles = self.roles.unwrap_or(50_300);
            // Default density ≈ the ing-like mean role degree (16) over
            // the user column count.
            let density = self.density.unwrap_or(16.0 / users as f64);
            custom_shape(users, roles, density, self.seed)
        } else {
            ing_like(self.scale, self.seed)
        }
    }
}

/// Best-of-`iters` wall clock of `f`, returning (ns, last result).
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> (u128, T) {
    let mut best = u128::MAX;
    let mut result = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_nanos());
        result = Some(r);
    }
    (best, result.unwrap())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = Opts::parse(&args);
    let mut records: Vec<Record> = Vec::new();

    // --- Stage 0 (PR 7): organization generation — per-role RNG ---
    // --- streams fanned out over workers vs. the sequential walk. ---
    // The two paths draw from different RNG streams by design, so their
    // outputs differ from each other (each is internally bit-identical
    // across thread counts, which the parallel rows assert); both are
    // generated once (`iters` is ignored — generation has no cache
    // warm-up story worth best-of-N at this size).
    let cfg = opts.org_config();
    println!(
        "# generating organization (scale={}, seed={}, departments={})",
        opts.scale, opts.seed, cfg.departments
    );
    let (seq_ns, org_seq) = time_best(1, || generate_org(cfg));
    let seq_size = format!("{}x{}", org_seq.graph.n_roles(), org_seq.graph.n_users());
    println!("org_gen_seq (sequential): {seq_ns} ns");
    records.push(Record {
        stage: "org_gen_seq".into(),
        size: seq_size,
        threads: 1,
        ns: seq_ns,
        found: org_seq.graph.n_roles(),
    });
    drop(org_seq);
    let mut org = None;
    for threads in THREAD_COUNTS {
        let (ns, o) = time_best(1, || generate_org_with(cfg, threads));
        match &org {
            Some(reference) => {
                let r: &rolediet_synth::GeneratedOrg = reference;
                assert!(
                    o.graph == r.graph && o.truth == r.truth,
                    "parallel generator diverged at {threads} threads"
                );
            }
            None => org = Some(o),
        }
        println!("org_gen_parallel threads={threads}: {ns} ns");
        records.push(Record {
            stage: "org_gen_parallel".into(),
            size: "pending".into(),
            threads,
            ns,
            found: 0,
        });
    }
    let org = org.expect("parallel generation ran");
    let graph = org.graph;
    println!(
        "# generated: roles={} users={} permissions={}",
        graph.n_roles(),
        graph.n_users(),
        graph.n_permissions()
    );
    let size = format!("{}x{}", graph.n_roles(), graph.n_users());
    for r in records.iter_mut().filter(|r| r.stage == "org_gen_parallel") {
        r.size = size.clone();
        r.found = graph.n_roles();
    }

    // --- Stage 1: two-pass CSR matrix build vs. the PR 1 collection. ---
    let reference = graph.ruam_sparse();
    for threads in THREAD_COUNTS {
        let (ns, m) = time_best(opts.iters, || graph.ruam_sparse_with(threads));
        assert_eq!(m, reference, "two-pass build diverged at {threads} threads");
        println!("matrix_build_two_pass threads={threads}: {ns} ns");
        records.push(Record {
            stage: "matrix_build_two_pass".into(),
            size: size.clone(),
            threads,
            ns,
            found: m.nnz(),
        });
    }
    let (ns, m) = time_best(opts.iters, || {
        // The PR 1 `ruam_sparse`: collect every role's user set into a
        // `Vec`, then `from_rows_of_indices` (sorts and re-copies rows).
        let rows: Vec<Vec<usize>> = (0..graph.n_roles())
            .map(|r| {
                graph
                    .users_of(RoleId::from_index(r))
                    .map(|u| u.index())
                    .collect()
            })
            .collect();
        CsrMatrix::from_rows_of_indices(graph.n_roles(), graph.n_users(), &rows).unwrap()
    });
    assert_eq!(m, reference, "PR 1 baseline build diverged");
    println!("matrix_build_pr1 (sequential): {ns} ns");
    records.push(Record {
        stage: "matrix_build_pr1".into(),
        size: size.clone(),
        threads: 1,
        ns,
        found: m.nnz(),
    });

    // --- Stage 2: norm-bucketed disjoint supplement vs. PR 1 scan. ---
    // t = 1, the default threshold: the supplement pairs the org's
    // thousands of userless roles with its single-user roles.
    let ruam = reference;
    let (naive_ns, mut naive) = time_best(opts.iters, || disjoint_supplement_naive(&ruam, 1));
    naive.sort_unstable();
    for threads in THREAD_COUNTS {
        let (ns, mut pairs) = time_best(opts.iters, || disjoint_supplement(&ruam, 1, threads));
        pairs.sort_unstable();
        assert_eq!(
            pairs, naive,
            "bucketed supplement diverged at {threads} threads"
        );
        println!("disjoint_supplement_bucketed threads={threads}: {ns} ns");
        records.push(Record {
            stage: "disjoint_supplement_bucketed".into(),
            size: size.clone(),
            threads,
            ns,
            found: pairs.len(),
        });
    }
    println!("disjoint_supplement_pr1 (sequential): {naive_ns} ns");
    records.push(Record {
        stage: "disjoint_supplement_pr1".into(),
        size: size.clone(),
        threads: 1,
        ns: naive_ns,
        found: naive.len(),
    });
    drop(naive);

    // --- Stage 3: DBSCAN grouping — CC kernel vs. BFS expansion. ---
    // T4 shape: eps ≈ 0, min_pts = 2 over the real-org RUAM rows. The
    // O(n²) neighbourhood precompute is shared (computed once, outside
    // every timer), so the records isolate exactly the stage PR 3
    // replaced: sequential cluster expansion over cached lists vs. the
    // parallel connected-components kernel over the same lists.
    let dbscan = Dbscan::new(DbscanParams::exact_duplicates());
    let points = BinaryRows::new(&ruam, BinaryMetric::Hamming);
    let t0 = Instant::now();
    let neighborhoods = all_range_queries_with(&points, dbscan.params().eps, 8);
    println!(
        "# precomputed {} neighbourhoods in {:.2?} ({} entries)",
        neighborhoods.len(),
        t0.elapsed(),
        neighborhoods.iter().map(Vec::len).sum::<usize>()
    );
    let (expand_ns, expand_labels) = time_best(opts.iters, || dbscan.fit_cached(&neighborhoods));
    println!("dbscan_expand_seq (sequential): {expand_ns} ns");
    records.push(Record {
        stage: "dbscan_expand_seq".into(),
        size: size.clone(),
        threads: 1,
        ns: expand_ns,
        found: expand_labels.n_clusters(),
    });
    for threads in THREAD_COUNTS {
        let (ns, labels) = time_best(opts.iters, || {
            dbscan.group_cached_with(&neighborhoods, threads)
        });
        assert_eq!(
            labels, expand_labels,
            "grouping kernel diverged at {threads} threads"
        );
        println!("dbscan_group_cc threads={threads}: {ns} ns");
        records.push(Record {
            stage: "dbscan_group_cc".into(),
            size: size.clone(),
            threads,
            ns,
            found: labels.n_clusters(),
        });
    }
    drop(neighborhoods);

    // --- Stage 5 (PR 5): exact O(n²) distance precompute — packed ---
    // --- bounded-distance engine vs. the PR 3 scalar scan.         ---
    // T5 shape (eps = threshold + ε) over the real-org RUAM: the scalar
    // rows are the `all_range_queries_with` precompute the DBSCAN
    // strategies paid before this PR; the engine rows time the full
    // replacement stage — `PackedRows` build (norms, buckets,
    // density-keyed representation) plus the banded range queries — so
    // they correspond one-to-one with `Report::timings
    // .distance_precompute`. Every engine result is asserted equal to
    // the scalar oracle's.
    let eps = DbscanParams::similar(1).eps;
    let mut scalar_ref: Option<Vec<Vec<usize>>> = None;
    for threads in THREAD_COUNTS {
        let (ns, neigh) = time_best(opts.iters, || all_range_queries_with(&points, eps, threads));
        let entries = neigh.iter().map(Vec::len).sum::<usize>();
        match &scalar_ref {
            Some(reference) => assert_eq!(
                &neigh, reference,
                "scalar precompute diverged at {threads} threads"
            ),
            None => scalar_ref = Some(neigh),
        }
        println!("distance_precompute_scalar threads={threads}: {ns} ns");
        records.push(Record {
            stage: "distance_precompute_scalar".into(),
            size: size.clone(),
            threads,
            ns,
            found: entries,
        });
    }
    let scalar_ref = scalar_ref.expect("scalar precompute ran");
    for threads in THREAD_COUNTS {
        let (ns, neigh) = time_best(opts.iters, || {
            let rows = PackedRows::from_matrix(&ruam, threads);
            all_range_queries_packed(&rows, eps, threads)
        });
        assert_eq!(
            neigh, scalar_ref,
            "engine precompute diverged from the scalar oracle at {threads} threads"
        );
        println!("distance_precompute_engine threads={threads}: {ns} ns");
        records.push(Record {
            stage: "distance_precompute_engine".into(),
            size: size.clone(),
            threads,
            ns,
            found: neigh.iter().map(Vec::len).sum(),
        });
    }
    // Pruning ablation: the same engine queries with the norm-band walk
    // disabled (full tiled scan, early-exit kernels only), on a prebuilt
    // engine at the widest worker count.
    let engine = PackedRows::from_matrix(&ruam, 8);
    let bound = eps as usize;
    let (ns, neigh) = time_best(opts.iters, || {
        engine.range_queries_within_no_prune(bound, 8)
    });
    assert_eq!(neigh, scalar_ref, "no-prune scan diverged from the oracle");
    println!("distance_precompute_engine_noprune threads=8: {ns} ns");
    records.push(Record {
        stage: "distance_precompute_engine_noprune".into(),
        size: size.clone(),
        threads: 8,
        ns,
        found: neigh.iter().map(Vec::len).sum(),
    });
    drop(neigh);
    drop(engine);

    // --- Stage 7a (PR 7): memory-budgeted sharded distance engine. ---
    // The same T5 range queries, streamed as shard×shard tile passes
    // under an explicit resident-set budget instead of one flat
    // resident engine. Timed end-to-end (plan + shard builds + tile
    // passes, matching the engine rows above, which also pay their
    // build); every budget/thread combination is asserted against the
    // scalar oracle. The budgets are deliberately far below the flat
    // engine's resident cost so the plan is forced to cut many shards.
    for budget in [256 * 1024usize, 1024 * 1024] {
        let n_shards = PackedShards::new(&ruam, budget, 1).n_shards();
        let stage = format!("distance_precompute_sharded_{}k", budget / 1024);
        for threads in THREAD_COUNTS {
            let (ns, neigh) = time_best(opts.iters, || {
                all_range_queries_sharded(&ruam, eps, budget, threads)
            });
            assert_eq!(
                neigh, scalar_ref,
                "sharded engine (budget {budget}) diverged from the scalar oracle \
                 at {threads} threads"
            );
            println!("{stage} shards={n_shards} threads={threads}: {ns} ns");
            records.push(Record {
                stage: stage.clone(),
                size: size.clone(),
                threads,
                ns,
                found: n_shards,
            });
        }
    }
    // --- Stage 9 (PR 8): batched HNSW construction + approximate path. ---
    // The same real-org RUAM, indexed through the packed adapter. The
    // scalar row is the PR 7 status quo (sequential insert over
    // `BinaryRows`' `row_hamming`) — the baseline the packed and
    // batched rows are read against. The packed sequential insert loop
    // is the oracle (the pipeline's `hnsw_batch = 0` ablation
    // baseline); the scalar build and every batched build are asserted
    // bit-identical to it — links, levels, entry point — before their
    // times are recorded. The query row times the batch k-NN probe over
    // every row; the recall row scores the probe's within-eps hits
    // against the exact scalar neighbourhoods of the PR 5 stage via
    // capped recall@16 (stored in `found` as basis points).
    let hnsw_params = HnswParams::default();
    let hnsw_points = PackedPointSet::from_matrix(&ruam, 8);
    let (hseq_ns, oracle) = time_best(opts.iters, || Hnsw::build(&hnsw_points, hnsw_params));
    {
        let scalar_points = BinaryRows::new(&ruam, BinaryMetric::Hamming);
        let (ns, scalar_index) = time_best(1, || Hnsw::build(&scalar_points, hnsw_params));
        assert_eq!(
            scalar_index, oracle,
            "scalar-baseline HNSW build diverged from the packed-adapter build"
        );
        println!("hnsw_build_scalar_seq: {ns} ns");
        records.push(Record {
            stage: "hnsw_build_scalar_seq".into(),
            size: size.clone(),
            threads: 1,
            ns,
            found: scalar_index.len(),
        });
    }
    println!("hnsw_build_seq (sequential): {hseq_ns} ns");
    records.push(Record {
        stage: "hnsw_build_seq".into(),
        size: size.clone(),
        threads: 1,
        ns: hseq_ns,
        found: oracle.len(),
    });
    for threads in THREAD_COUNTS {
        let (ns, index) = time_best(opts.iters, || {
            Hnsw::build_batched(&hnsw_points, hnsw_params, DEFAULT_HNSW_BATCH, threads)
        });
        assert_eq!(
            index, oracle,
            "batched HNSW build diverged from the sequential oracle at {threads} threads"
        );
        println!("hnsw_build_batched threads={threads}: {ns} ns");
        records.push(Record {
            stage: "hnsw_build_batched".into(),
            size: size.clone(),
            threads,
            ns,
            found: index.len(),
        });
    }
    let (hq_ns, hits) = time_best(opts.iters, || {
        oracle.knn_batch(&hnsw_points, 16, hnsw_params.ef_search, 8)
    });
    println!("hnsw_query threads=8: {hq_ns} ns");
    records.push(Record {
        stage: "hnsw_query".into(),
        size: size.clone(),
        threads: 8,
        ns: hq_ns,
        found: hits.iter().map(Vec::len).sum(),
    });
    // Capped recall@16: a 16-NN probe cannot recover a within-eps
    // neighbourhood larger than 16 (duplicate clusters here hold
    // thousands of members), so each query's truth is capped at the
    // probe width — `cluster::recall::recall_at_k`.
    let recall_bp = |truth: &[Vec<usize>], hits: &[Vec<(usize, f64)>], eps: f64| -> usize {
        let found: Vec<Vec<usize>> = hits
            .iter()
            .map(|row| {
                row.iter()
                    .filter(|&&(_, d)| d <= eps)
                    .map(|&(j, _)| j)
                    .collect()
            })
            .collect();
        (recall_at_k(truth, &found, 16) * 10_000.0).round() as usize
    };
    let bp = recall_bp(&scalar_ref, &hits, eps);
    println!("hnsw_recall_bp threads=8: {bp} bp vs exact eps={eps}");
    records.push(Record {
        stage: "hnsw_recall_bp".into(),
        size: size.clone(),
        threads: 8,
        ns: hq_ns,
        found: bp,
    });
    drop(hits);
    drop(oracle);
    drop(hnsw_points);

    drop(scalar_ref);
    drop(ruam);

    // --- Stage 7b (PR 7): popcount kernel ablation on the dense path. ---
    // A dense planted-cluster matrix (30% fill over 2,048 columns → 32
    // words/row, packed representation) exercises the word-loop kernels
    // without the sparse-merge path: every row pair in a fixed sample is
    // pushed through the 8-word-lane accumulator kernel and the PR 5
    // 4-word unroll with the bound wide open (no early exit), so the
    // rows measure raw XOR-popcount throughput. Distance sums are
    // asserted identical before either time is recorded.
    let kcfg = MatrixGenConfig {
        density: 0.3,
        ..MatrixGenConfig::paper(2_000, 2_048, opts.seed)
    };
    let kdense = rolediet_synth::generate_matrix(kcfg).dense;
    let kpacked = PackedRows::packed_from_matrix(&kdense, 8);
    assert!(kpacked.is_packed(), "kernel ablation needs the packed repr");
    let ksize = format!("{}x{}", kdense.n_rows(), kdense.n_cols());
    let kbound = kdense.n_cols();
    let kwords: Vec<&[u64]> = (0..kdense.n_rows())
        .map(|i| kpacked.row_words(i).expect("packed repr has words"))
        .collect();
    let kernel_sum = |kernel: fn(&[u64], &[u64], usize) -> Option<usize>| {
        let mut sum = 0usize;
        for (i, a) in kwords.iter().enumerate() {
            for b in &kwords[i + 1..] {
                sum += kernel(a, b, kbound).expect("bound is the column count");
            }
        }
        sum
    };
    let (lanes8_ns, lanes8_sum) = time_best(opts.iters, || kernel_sum(xor_popcount_within));
    let (unroll4_ns, unroll4_sum) =
        time_best(opts.iters, || kernel_sum(xor_popcount_within_unrolled4));
    assert_eq!(lanes8_sum, unroll4_sum, "kernel ablation sums diverged");
    println!("kernel_lanes8 (sequential): {lanes8_ns} ns");
    println!("kernel_unrolled4 (sequential): {unroll4_ns} ns");
    for (stage, ns) in [
        ("kernel_lanes8", lanes8_ns),
        ("kernel_unrolled4", unroll4_ns),
    ] {
        records.push(Record {
            stage: stage.into(),
            size: ksize.clone(),
            threads: 1,
            ns,
            found: lanes8_sum,
        });
    }
    drop(kwords);
    drop(kpacked);
    drop(kdense);

    // --- Stage 4: MinHash sketching + banding across thread counts. ---
    // A paper-shaped matrix (planted duplicate clusters, no empty-row
    // blocks — banding on thousands of identical empty rows would just
    // measure quadratic pair emission).
    let mh = sweep_matrix(20_000, 5_000, 0);
    let mh_size = format!("{}x{}", mh.n_rows(), mh.n_cols());
    let sets: Vec<Vec<u32>> = (0..mh.n_rows()).map(|i| mh.row(i).to_vec()).collect();
    let params = MinHashLshParams::default();
    let mut sequential_pairs: Option<Vec<(usize, usize)>> = None;
    for threads in THREAD_COUNTS {
        let (ns, pairs) = time_best(opts.iters, || {
            MinHashLsh::build_with(&sets, params, threads).candidate_pairs_with(threads)
        });
        let reference = sequential_pairs.get_or_insert_with(|| pairs.clone());
        assert_eq!(&pairs, reference, "MinHash diverged at {threads} threads");
        println!("minhash threads={threads}: {ns} ns");
        records.push(Record {
            stage: "minhash".into(),
            size: mh_size.clone(),
            threads,
            ns,
            found: pairs.len(),
        });
    }

    // --- Figure 2/3 mini-sweeps of the custom T5 detector. ---
    for (stage, points) in [
        (
            "fig2_custom",
            [(3_000, 1_000), (3_000, 4_000), (3_000, 7_000)],
        ),
        (
            "fig3_custom",
            [(1_000, 1_000), (4_000, 1_000), (7_000, 1_000)],
        ),
    ] {
        for (roles, users) in points {
            let m = rolediet_bench::sweep_matrix_with(roles, users, 0, 1);
            let tr = m.transpose();
            let cfg = SimilarityConfig::default();
            let (ns, pairs) = time_best(opts.iters, || {
                rolediet_core::strategy::find_similar_pairs(
                    &m,
                    &tr,
                    &Strategy::Custom,
                    &cfg,
                    Parallelism::Sequential,
                )
            });
            let found = pairs.len();
            println!("{stage} roles={roles} users={users}: {ns} ns ({found} pairs)");
            records.push(Record {
                stage: stage.into(),
                size: format!("{roles}x{users}"),
                threads: 1,
                ns,
                found,
            });
        }
    }

    // --- Stage 6 (PR 6): incremental apply of a 1k-event churn batch ---
    // --- vs. the full pipeline rerun it replaces.                    ---
    // The simulator churns the real-scale org until exactly EVENTS edge
    // deltas are recorded; the mutated graph is materialized by replay so
    // both sides detect over the identical end state. The rerun rows are
    // the status quo (recompute everything, per thread count); the apply
    // row is the maintained path (sequential by nature: one event, one
    // row touch). Bit-identity is asserted before either time is trusted.
    const EVENTS: usize = 1_000;
    let mut sim = ChurnSimulator::from_graph(graph.clone(), ChurnWeights::default(), opts.seed);
    while sim.deltas().len() < EVENTS {
        sim.run(100);
    }
    let mut stream = sim.drain_deltas();
    stream.truncate(EVENTS);
    drop(sim);
    let mut mutated = graph.clone();
    rolediet_model::EdgeDelta::replay(&mut mutated, &stream).expect("recorded stream replays");
    let churn_cfg = DetectionConfig::default();
    let base = Pipeline::new(churn_cfg).incremental(&graph);
    let mut pool: Vec<_> = (0..opts.iters).map(|_| base.clone()).collect();
    drop(base);
    let (apply_ns, maintained) = time_best(opts.iters, || {
        let mut inc = pool.pop().expect("one prebuilt engine per iteration");
        inc.apply_all(&stream).expect("recorded stream applies");
        inc.report()
    });
    let total_findings = |r: &rolediet_core::Report| {
        r.standalone_users.len()
            + r.standalone_permissions.len()
            + r.standalone_roles.len()
            + r.userless_roles.len()
            + r.permless_roles.len()
            + r.single_user_roles.len()
            + r.single_permission_roles.len()
            + r.same_user_groups.len()
            + r.same_permission_groups.len()
            + r.similar_user_pairs.len()
            + r.similar_permission_pairs.len()
    };
    println!("churn_incremental_apply ({EVENTS} events, threads=1): {apply_ns} ns");
    records.push(Record {
        stage: "churn_incremental_apply".into(),
        size: size.clone(),
        threads: 1,
        ns: apply_ns,
        found: total_findings(&maintained),
    });
    for threads in THREAD_COUNTS {
        let rerun_cfg = DetectionConfig {
            parallelism: Parallelism::Threads(threads),
            ..churn_cfg
        };
        let (ns, mut report) = time_best(opts.iters, || Pipeline::new(rerun_cfg).run(&mutated));
        report.timings = Default::default();
        report.config = maintained.config;
        assert_eq!(
            maintained, report,
            "incremental findings diverged from the {threads}-thread rerun"
        );
        println!("churn_batch_rerun threads={threads}: {ns} ns");
        records.push(Record {
            stage: "churn_batch_rerun".into(),
            size: size.clone(),
            threads,
            ns,
            found: total_findings(&report),
        });
    }

    // --- Stage 10 (PR 10): role mining — lazy-greedy (CELF) cover. ---
    // Candidate generation fans out over the real-org UPAM's distinct
    // rows (pools asserted identical across thread counts); the lazy
    // engine then mines the full real-org matrix with sparse O(nnz)
    // coverage state — the eager oracle's dense per-candidate rescan is
    // infeasible at this width — and the cover is verified exact. The
    // engine ratio is measured where both engines can run: the largest
    // eager-feasible ing-like organization, on the identical pool, with
    // bit-identity asserted before either time is recorded.
    {
        use rolediet_mining::{
            generate_candidates_with, mine_eager_from_pool, mine_lazy_from_pool,
            verify_exact_cover, CandidateConfig,
        };
        let upam = graph.upam_sparse_with(8);
        let upam_size = format!("{}x{}", upam.rows(), upam.cols());
        println!("# real-org UPAM: {} nnz", upam.nnz());
        let mut pool_ref: Option<rolediet_mining::CandidatePool> = None;
        for threads in THREAD_COUNTS {
            let (ns, pool) = time_best(1, || {
                generate_candidates_with(&upam, &CandidateConfig::default(), threads)
            });
            match &pool_ref {
                Some(reference) => assert_eq!(
                    &pool, reference,
                    "candidate generation diverged at {threads} threads"
                ),
                None => pool_ref = Some(pool),
            }
            let found = pool_ref.as_ref().expect("pool recorded").len();
            println!("mining_candidates threads={threads}: {ns} ns ({found} candidates)");
            records.push(Record {
                stage: "mining_candidates".into(),
                size: upam_size.clone(),
                threads,
                ns,
                found,
            });
        }
        let pool = pool_ref.expect("candidate generation ran");
        let (ns, mined) = time_best(1, || {
            mine_lazy_from_pool(&upam, &pool, 8).expect("generated pool covers the matrix")
        });
        verify_exact_cover(&upam, &mined.roles).expect("real-org mined cover must be exact");
        println!(
            "mining_lazy threads=8: {ns} ns ({} roles, cover verified exact)",
            mined.n_roles()
        );
        records.push(Record {
            stage: "mining_lazy".into(),
            size: upam_size,
            threads: 8,
            ns,
            found: mined.n_roles(),
        });
        drop(mined);
        drop(pool);
        drop(upam);

        let small = generate_org(ing_like(0.02, opts.seed));
        let supam = small.graph.upam_sparse_with(8);
        let ssize = format!("{}x{}", supam.rows(), supam.cols());
        let spool = generate_candidates_with(&supam, &CandidateConfig::default(), 8);
        let oracle = mine_eager_from_pool(&supam, &spool).expect("generated pool covers");
        assert_eq!(
            mine_lazy_from_pool(&supam, &spool, 1).expect("generated pool covers"),
            oracle,
            "lazy engine diverged from the eager oracle on the ratio organization"
        );
        verify_exact_cover(&supam, &oracle.roles).expect("ratio-org cover must be exact");
        let (eager_ns, _) = time_best(opts.iters, || {
            mine_eager_from_pool(&supam, &spool).expect("generated pool covers")
        });
        println!("mining_eager_baseline (sequential): {eager_ns} ns");
        records.push(Record {
            stage: "mining_eager_baseline".into(),
            size: ssize.clone(),
            threads: 1,
            ns: eager_ns,
            found: oracle.n_roles(),
        });
        let (lazy_ns, _) = time_best(opts.iters, || {
            mine_lazy_from_pool(&supam, &spool, 1).expect("generated pool covers")
        });
        println!(
            "mining_lazy (sequential, ratio org): {lazy_ns} ns ({:.1}x over eager)",
            eager_ns as f64 / lazy_ns as f64
        );
        records.push(Record {
            stage: "mining_lazy".into(),
            size: ssize,
            threads: 1,
            ns: lazy_ns,
            found: oracle.n_roles(),
        });
    }

    // --- Stage 8 (PR 7): million-user end-to-end. ---
    // A fixed 1M-user, ~100k-role, ~1M-edge organization (the
    // `custom_shape` profile: planted inefficiency counts stay modest so
    // the norm-0 blocks don't make the T5 output itself quadratic).
    // Generation uses the stream-keyed parallel generator; the distance
    // plane then runs once through the flat resident engine and once
    // through the sharded engine under a 2 MiB budget (far below the
    // resident sparse engine's ~10 MB, forcing a multi-shard plan), and
    // the two neighbourhood sets are asserted bit-identical. Everything
    // runs a single iteration — at this size one pass is the
    // measurement.
    if opts.million {
        drop(graph);
        drop(mutated);
        drop(maintained);
        let mcfg = custom_shape(1_000_000, 100_000, 1.0e-5, opts.seed);
        println!("# generating the million-user organization");
        let (gen_ns, morg) = time_best(1, || generate_org_with(mcfg, 8));
        let mgraph = morg.graph;
        let msize = format!("{}x{}", mgraph.n_roles(), mgraph.n_users());
        println!(
            "million_org_gen threads=8: {gen_ns} ns (roles={} users={} permissions={})",
            mgraph.n_roles(),
            mgraph.n_users(),
            mgraph.n_permissions()
        );
        records.push(Record {
            stage: "million_org_gen".into(),
            size: msize.clone(),
            threads: 8,
            ns: gen_ns,
            found: mgraph.n_roles(),
        });
        let mruam = mgraph.ruam_sparse_with(8);
        println!("# million-user RUAM: {} nnz", mruam.nnz());
        let (flat_ns, flat) = time_best(1, || {
            let rows = PackedRows::from_matrix(&mruam, 8);
            all_range_queries_packed(&rows, eps, 8)
        });
        println!("million_distance_flat threads=8: {flat_ns} ns");
        records.push(Record {
            stage: "million_distance_flat".into(),
            size: msize.clone(),
            threads: 8,
            ns: flat_ns,
            found: flat.iter().map(Vec::len).sum(),
        });
        let budget = 2 * 1024 * 1024usize;
        let n_shards = PackedShards::new(&mruam, budget, 1).n_shards();
        assert!(n_shards > 1, "2 MiB budget must shard the 1M-user plane");
        let (shard_ns, sharded) =
            time_best(1, || all_range_queries_sharded(&mruam, eps, budget, 8));
        assert_eq!(
            sharded, flat,
            "sharded million-user plane diverged from the flat engine"
        );
        println!("million_distance_sharded shards={n_shards} threads=8: {shard_ns} ns");
        records.push(Record {
            stage: "million_distance_sharded".into(),
            size: msize.clone(),
            threads: 8,
            ns: shard_ns,
            found: n_shards,
        });
        drop(sharded);

        // --- Stage 8b (PR 8): the approximate path at 1M-user scale. ---
        // Batched HNSW build over the million-user RUAM, the batch k-NN
        // probe, and the probe's recall against the exact sharded/flat
        // plane above (the two were just asserted identical, so `flat`
        // is the ground truth). One pass each; recall in basis points.
        let mpoints = PackedPointSet::from_matrix(&mruam, 8);
        let (mb_ns, mindex) = time_best(1, || {
            Hnsw::build_batched(&mpoints, hnsw_params, DEFAULT_HNSW_BATCH, 8)
        });
        println!("million_hnsw_build threads=8: {mb_ns} ns");
        records.push(Record {
            stage: "million_hnsw_build".into(),
            size: msize.clone(),
            threads: 8,
            ns: mb_ns,
            found: mindex.len(),
        });
        let (mq_ns, mhits) = time_best(1, || {
            mindex.knn_batch(&mpoints, 16, hnsw_params.ef_search, 8)
        });
        println!("million_hnsw_query threads=8: {mq_ns} ns");
        records.push(Record {
            stage: "million_hnsw_query".into(),
            size: msize.clone(),
            threads: 8,
            ns: mq_ns,
            found: mhits.iter().map(Vec::len).sum(),
        });
        let mbp = recall_bp(&flat, &mhits, eps);
        println!("million_hnsw_recall_bp threads=8: {mbp} bp vs exact eps={eps}");
        records.push(Record {
            stage: "million_hnsw_recall_bp".into(),
            size: msize,
            threads: 8,
            ns: mq_ns,
            found: mbp,
        });
    }

    let json = serde_json::to_string_pretty(&records).expect("serialize records");
    std::fs::write(&opts.out, json + "\n").expect("write output file");
    println!("# wrote {} records to {}", records.len(), opts.out);
}
