//! Reproduces every figure and table of the paper's evaluation.
//!
//! ```text
//! repro fig2 [--runs 5] [--roles 1000] [--min 1000 --max 10000 --step 1000] [--budget-secs 600] [--similar]
//! repro fig3 [--runs 5] [--users 1000] [--min 1000 --max 10000 --step 1000] [--budget-secs 600] [--similar]
//! repro realorg [--scale 1.0 | --users N --roles N --density D] [--seed 7] [--strategy custom]
//!               [--hnsw-batch N] [--baselines] [--validate] [--budget-secs 600]
//! repro recall [--roles 2000] [--users 1000]
//! repro mining [--steps 500] [--scale 0.02] [--seed 7] [--threads N]
//! repro churn [--steps 500] [--batch 100] [--incremental] [--scale 0.05] [--seed 7]
//! repro cooccur-example
//! ```
//!
//! Absolute numbers differ from the paper (different hardware and
//! language); the claims to check are the *shapes*: custom ≪ exact ≈
//! approx, near-flat scaling in users (Fig 2), superlinear growth in
//! roles with an approx/exact crossover (Fig 3), and the Section IV-B
//! inefficiency table at organization scale.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

use rolediet_bench::{
    format_series, mean_std, paper_strategies, sweep_matrix, time_same_groups_with,
    time_similar_pairs_with, SweepPoint,
};
use rolediet_core::{DetectionConfig, MergePlan, Parallelism, Pipeline, Side, Strategy};
use rolediet_model::DatasetStats;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        print_help();
        std::process::exit(2);
    };
    let opts = Opts::parse(&args[1..]);
    match cmd.as_str() {
        "fig2" => sweep(SweepAxis::Users, &opts),
        "fig3" => sweep(SweepAxis::Roles, &opts),
        "realorg" => realorg(&opts),
        "recall" => recall(&opts),
        "periodic" => periodic(&opts),
        "mining" => mining(&opts),
        "churn" => churn(&opts),
        "cooccur-example" => cooccur_example(),
        "help" | "--help" | "-h" => print_help(),
        other => {
            eprintln!("unknown command {other:?}\n");
            print_help();
            std::process::exit(2);
        }
    }
}

fn print_help() {
    println!(
        "repro — regenerate the paper's figures and tables\n\
         \n\
         commands:\n\
         \x20 fig2             runtime vs #users  (roles fixed; Figure 2)\n\
         \x20 fig3             runtime vs #roles  (users fixed; Figure 3)\n\
         \x20 realorg          Section IV-B inefficiency table on the ing-like org\n\
         \x20 recall           HNSW/MinHash recall ablation (abl-recall)\n\
         \x20 periodic         periodic-cleanup convergence per strategy\n\
         \x20 mining           refine (role diet) vs regenerate (lazy-greedy mining) on a churned org\n\
         \x20 churn            replay simulated churn in batches, re-detecting per batch\n\
         \x20 cooccur-example  print the Section III-C co-occurrence matrix\n\
         \n\
         common flags: --runs N --min N --max N --step N --roles N --users N\n\
         \x20             --density D (realorg: custom-shape org instead of ing-like)\n\
         \x20             --budget-secs N --similar --scale F --seed N --baselines\n\
         \x20             --threads N (worker threads for the parallel stages; default 1)\n\
         \x20             --validate (realorg: run the report validators on the result)\n\
         \x20             --strategy custom|dbscan|hnsw|minhash (realorg pipeline strategy)\n\
         \x20             --hnsw-batch N (realorg: HNSW build generation size; 0 = sequential)\n\
         \x20             --steps N --batch N (churn: total events and events per batch)\n\
         \x20             --incremental (churn: maintain findings online and verify\n\
         \x20                            bit-identity against the batch rerun per batch)"
    );
}

/// Minimal flag parser: `--key value` pairs plus boolean flags.
struct Opts {
    runs: usize,
    min: usize,
    max: usize,
    step: usize,
    roles: Option<usize>,
    users: Option<usize>,
    density: Option<f64>,
    budget: Duration,
    similar: bool,
    scale: f64,
    seed: u64,
    baselines: bool,
    threads: usize,
    validate: bool,
    steps: usize,
    batch: usize,
    incremental: bool,
    strategy: Strategy,
    hnsw_batch: Option<usize>,
}

impl Opts {
    /// The parallelism setting the flags ask for.
    fn parallelism(&self) -> Parallelism {
        if self.threads <= 1 {
            Parallelism::Sequential
        } else {
            Parallelism::Threads(self.threads)
        }
    }

    /// `--roles` with the sweep default.
    fn roles(&self) -> usize {
        self.roles.unwrap_or(1_000)
    }

    /// `--users` with the sweep default.
    fn users(&self) -> usize {
        self.users.unwrap_or(1_000)
    }

    /// The realorg subject: the published ing-like shape at `--scale` by
    /// default; any of `--users`/`--roles`/`--density` switches to a
    /// [`rolediet_synth::profiles::custom_shape`] organization of that
    /// shape instead (unset targets default to the published counts).
    fn realorg_subject(&self) -> rolediet_synth::GeneratedOrg {
        if self.users.is_some() || self.roles.is_some() || self.density.is_some() {
            let users = self.users.unwrap_or(89_900);
            let roles = self.roles.unwrap_or(50_300);
            let density = self.density.unwrap_or(16.0 / users as f64);
            println!("# custom-shape organization: users={users} roles={roles} density={density}");
            rolediet_synth::generate_org(rolediet_synth::profiles::custom_shape(
                users, roles, density, self.seed,
            ))
        } else {
            rolediet_synth::profiles::generate_ing_like(self.scale, self.seed)
        }
    }
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut o = Opts {
            runs: 5,
            min: 1_000,
            max: 10_000,
            step: 1_000,
            roles: None,
            users: None,
            density: None,
            budget: Duration::from_secs(600),
            similar: false,
            scale: 1.0,
            seed: 7,
            baselines: false,
            threads: 1,
            validate: false,
            steps: 500,
            batch: 100,
            incremental: false,
            strategy: Strategy::Custom,
            hnsw_batch: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut val = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| panic!("flag {name} needs a value"))
                    .clone()
            };
            match a.as_str() {
                "--runs" => o.runs = val("--runs").parse().expect("--runs"),
                "--min" => o.min = val("--min").parse().expect("--min"),
                "--max" => o.max = val("--max").parse().expect("--max"),
                "--step" => o.step = val("--step").parse().expect("--step"),
                "--roles" => o.roles = Some(val("--roles").parse().expect("--roles")),
                "--users" => o.users = Some(val("--users").parse().expect("--users")),
                "--density" => o.density = Some(val("--density").parse().expect("--density")),
                "--budget-secs" => {
                    o.budget = Duration::from_secs(val("--budget-secs").parse().expect("secs"))
                }
                "--similar" => o.similar = true,
                "--scale" => o.scale = val("--scale").parse().expect("--scale"),
                "--seed" => o.seed = val("--seed").parse().expect("--seed"),
                "--baselines" => o.baselines = true,
                "--threads" => o.threads = val("--threads").parse().expect("--threads"),
                "--validate" => o.validate = true,
                "--steps" => o.steps = val("--steps").parse().expect("--steps"),
                "--batch" => o.batch = val("--batch").parse().expect("--batch"),
                "--incremental" => o.incremental = true,
                "--strategy" => {
                    o.strategy = match val("--strategy").as_str() {
                        "custom" => Strategy::Custom,
                        "dbscan" => Strategy::ExactDbscan,
                        "hnsw" => Strategy::hnsw_default(),
                        "minhash" => Strategy::minhash_default(),
                        other => panic!("unknown strategy {other:?}"),
                    }
                }
                "--hnsw-batch" => {
                    o.hnsw_batch = Some(val("--hnsw-batch").parse().expect("--hnsw-batch"))
                }
                other => panic!("unknown flag {other:?}"),
            }
        }
        o
    }
}

enum SweepAxis {
    Users,
    Roles,
}

/// Figures 2 and 3: mean ± std of 5 runs per point, per method. A method
/// whose last point exceeded the budget is skipped for larger points
/// (mirroring the paper's halted 24-hour baseline runs).
fn sweep(axis: SweepAxis, opts: &Opts) {
    let (fixed_name, fixed, axis_name) = match axis {
        SweepAxis::Users => ("roles", opts.roles(), "users"),
        SweepAxis::Roles => ("users", opts.users(), "roles"),
    };
    let task = if opts.similar { "similar(t=1)" } else { "same" };
    println!(
        "# task={task} {fixed_name}={fixed}, sweeping {axis_name} {}..={} step {}, {} runs/point",
        opts.min, opts.max, opts.step, opts.runs
    );
    let mut chart_series: Vec<rolediet_bench::chart::Series> = Vec::new();
    let glyphs = ['d', 'h', 'c'];
    for (si, strategy) in paper_strategies().into_iter().enumerate() {
        let mut points: Vec<SweepPoint> = Vec::new();
        let mut over_budget = false;
        let mut x = opts.min;
        while x <= opts.max {
            if over_budget {
                println!("{:<14} x={x:<6} SKIPPED (over budget)", strategy.name());
                x += opts.step;
                continue;
            }
            let (roles, users) = match axis {
                SweepAxis::Users => (fixed, x),
                SweepAxis::Roles => (x, fixed),
            };
            let mut samples = Vec::with_capacity(opts.runs);
            let mut found = 0usize;
            for run in 0..opts.runs {
                // T5 sweeps plant one perturbed (Hamming-1) member per
                // cluster so there are true similar pairs to find.
                let m =
                    rolediet_bench::sweep_matrix_with(roles, users, run, usize::from(opts.similar));
                let (d, n) = if opts.similar {
                    let t = m.transpose();
                    time_similar_pairs_with(&m, &t, &strategy, 1, opts.parallelism())
                } else {
                    time_same_groups_with(&m, &strategy, opts.parallelism())
                };
                samples.push(d);
                found = n;
                if d > opts.budget {
                    over_budget = true;
                    break;
                }
            }
            let (mean, std) = mean_std(&samples);
            points.push(SweepPoint {
                x,
                mean_secs: mean,
                std_secs: std,
                found,
            });
            x += opts.step;
        }
        print!("{}", format_series(strategy.name(), &points));
        chart_series.push(rolediet_bench::chart::Series {
            name: strategy.name().to_owned(),
            glyph: glyphs[si % glyphs.len()],
            points: points.iter().map(|p| (p.x as f64, p.mean_secs)).collect(),
        });
    }
    println!("\n# runtime (s, log scale) vs {axis_name}:");
    print!(
        "{}",
        rolediet_bench::chart::render(
            &chart_series,
            &rolediet_bench::chart::ChartOptions::default()
        )
    );
}

/// Section IV-B: generate the ing-like organization, run the full
/// pipeline with the custom strategy, and print the inefficiency table
/// plus the consolidation saving. `--baselines` additionally times the
/// two baseline strategies on the same RUAM (with the budget cap).
fn realorg(opts: &Opts) {
    println!(
        "# organization scale={}, seed={}, threads={}",
        opts.scale,
        opts.seed,
        opts.parallelism().threads()
    );
    let t0 = Instant::now();
    let org = opts.realorg_subject();
    println!("# generated in {:.2?}", t0.elapsed());
    let stats = DatasetStats::compute(&org.graph);
    println!(
        "# users={} roles={} permissions={} user-edges={} perm-edges={}",
        stats.users,
        stats.roles,
        stats.permissions,
        stats.user_assignments,
        stats.permission_grants
    );

    let mut cfg = DetectionConfig {
        parallelism: opts.parallelism(),
        ..DetectionConfig::with_strategy(opts.strategy)
    };
    if let Some(b) = opts.hnsw_batch {
        cfg.hnsw_batch = b;
    }
    let t0 = Instant::now();
    let report = Pipeline::new(cfg).run(&org.graph);
    let detect_time = t0.elapsed();
    if opts.validate {
        let t0 = Instant::now();
        match rolediet_core::validate::validate_report_against_graph(&report, &org.graph) {
            Ok(()) => println!("# report validators passed in {:.2?}", t0.elapsed()),
            Err(msg) => {
                eprintln!("report validation FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
    println!("\n{}", report.summary_table());
    println!("{} pipeline total: {detect_time:.2?}", opts.strategy.name());
    println!(
        "  matrix={:.2?} degrees={:.2?} same(u)={:.2?} same(p)={:.2?} similar(u)={:.2?} similar(p)={:.2?} distkern={:.2?} hnswbuild={:.2?}",
        report.timings.matrix_build,
        report.timings.degree_detectors,
        report.timings.same_users,
        report.timings.same_permissions,
        report.timings.similar_users,
        report.timings.similar_permissions,
        report.timings.distance_precompute,
        report.timings.hnsw_build,
    );
    let t = report.timings.threads;
    println!(
        "  stage threads: matrix={} degrees={} same(u)={} same(p)={} transpose={} \
         similar(u)={} similar(p)={} disjoint={} minhash={} distkern={} hnswbuild={}",
        t.matrix_build,
        t.degree_detectors,
        t.same_users,
        t.same_permissions,
        t.transpose,
        t.similar_users,
        t.similar_permissions,
        t.disjoint_supplement,
        t.minhash,
        t.distance_precompute,
        t.hnsw_build,
    );

    // Planted-vs-detected cross-check (the advantage of a synthetic org).
    println!("\n# planted vs detected");
    let rows = [
        (
            "standalone users",
            org.truth.standalone_users.len(),
            report.standalone_users.len(),
        ),
        (
            "standalone permissions",
            org.truth.standalone_permissions.len(),
            report.standalone_permissions.len(),
        ),
        (
            "userless roles",
            org.truth.userless_roles.len(),
            report.userless_roles.len(),
        ),
        (
            "permless roles",
            org.truth.permless_roles.len(),
            report.permless_roles.len(),
        ),
        (
            "single-user roles",
            org.truth.single_user_roles.len(),
            report.single_user_roles.len(),
        ),
        (
            "single-permission roles",
            org.truth.single_permission_roles.len(),
            report.single_permission_roles.len(),
        ),
        (
            "roles in same-user groups",
            2 * org.truth.same_user_pairs.len(),
            report.roles_in_same_groups(Side::User),
        ),
        (
            "roles in same-permission groups",
            2 * org.truth.same_permission_pairs.len(),
            report.roles_in_same_groups(Side::Permission),
        ),
        (
            "roles in similar-user pairs",
            2 * org.truth.similar_user_pairs.len(),
            report.roles_in_similar_pairs(Side::User),
        ),
        (
            "roles in similar-permission pairs",
            2 * org.truth.similar_permission_pairs.len(),
            report.roles_in_similar_pairs(Side::Permission),
        ),
    ];
    for (name, planted, detected) in rows {
        println!("{name:<34} planted={planted:<8} detected={detected}");
    }

    let plan = MergePlan::from_report(&report, org.graph.n_roles(), true);
    let outcome = plan.apply(&org.graph);
    let violations =
        rolediet_core::consolidate::verify_preserves_access(&org.graph, &outcome.graph);
    println!(
        "\nconsolidation: {} of {} roles removable ({:.1}%), access-preservation violations={}",
        outcome.roles_removed,
        org.graph.n_roles(),
        100.0 * outcome.roles_removed as f64 / org.graph.n_roles() as f64,
        violations.len()
    );

    if opts.baselines {
        println!("\n# baselines on the same RUAM (budget {:?})", opts.budget);
        let ruam = org.graph.ruam_sparse();
        for strategy in [Strategy::ExactDbscan, Strategy::hnsw_default()] {
            let start = Instant::now();
            let (d, groups) = time_same_groups_with(&ruam, &strategy, opts.parallelism());
            if start.elapsed() > opts.budget {
                println!("{:<14} HALTED after {:.2?}", strategy.name(), d);
            } else {
                println!(
                    "{:<14} same-users: {:.2?} ({groups} groups)",
                    strategy.name(),
                    d
                );
            }
        }
    }
}

/// Recall ablation: HNSW recall/latency vs `ef_search`, and MinHash LSH,
/// against the exact duplicate pair set.
fn recall(opts: &Opts) {
    use rolediet_cluster::recall::{groups_to_pairs, pair_stats};
    use rolediet_core::strategy::find_same_groups;
    use rolediet_core::Parallelism;

    let m = sweep_matrix(opts.roles(), opts.users(), 0);
    let truth_groups = find_same_groups(&m, &Strategy::Custom, Parallelism::Sequential);
    let truth_pairs = groups_to_pairs(&truth_groups);
    println!(
        "# roles={} users={} true duplicate pairs={}",
        opts.roles(),
        opts.users(),
        truth_pairs.len()
    );
    for ef in [8usize, 16, 32, 64, 128, 256] {
        let params = rolediet_cluster::hnsw::HnswParams {
            ef_search: ef,
            ..Default::default()
        };
        let strategy = Strategy::ApproxHnsw {
            params,
            probe_k: 16,
        };
        let start = Instant::now();
        let groups = find_same_groups(&m, &strategy, Parallelism::Sequential);
        let elapsed = start.elapsed();
        let stats = pair_stats(&truth_pairs, &groups_to_pairs(&groups));
        println!(
            "hnsw ef={ef:<4} recall={:.4} precision={:.4} time={elapsed:.2?}",
            stats.recall, stats.precision
        );
    }
    let start = Instant::now();
    let groups = find_same_groups(&m, &Strategy::minhash_default(), Parallelism::Sequential);
    let elapsed = start.elapsed();
    let stats = pair_stats(&truth_pairs, &groups_to_pairs(&groups));
    println!(
        "minhash-lsh  recall={:.4} precision={:.4} time={elapsed:.2?}",
        stats.recall, stats.precision
    );
}

/// Periodic-cleanup convergence: the paper argues approximate methods are
/// acceptable because periodic runs converge; this prints the per-round
/// trace for each strategy on an ing-like organization.
fn periodic(opts: &Opts) {
    use rolediet_core::periodic::simulate_periodic_cleanup;
    let scale = if opts.scale >= 1.0 { 0.05 } else { opts.scale };
    println!(
        "# ing-like organization at scale {scale}, seed {}",
        opts.seed
    );
    let org = rolediet_synth::profiles::generate_ing_like(scale, opts.seed);
    for strategy in [
        Strategy::Custom,
        Strategy::hnsw_default(),
        Strategy::minhash_default(),
    ] {
        let t0 = Instant::now();
        let (trace, final_graph) =
            simulate_periodic_cleanup(&org.graph, DetectionConfig::with_strategy(strategy), 25);
        println!(
            "\n{}: converged={} rounds={} removed={} final_roles={} ({:.2?})",
            strategy.name(),
            trace.converged,
            trace.n_rounds(),
            trace.total_removed(),
            final_graph.n_roles(),
            t0.elapsed()
        );
        for r in &trace.rounds {
            println!(
                "  round {}: groups={} removed={} remaining={}",
                r.round, r.groups_found, r.roles_removed, r.roles_remaining
            );
        }
        let residual = Pipeline::new(DetectionConfig::default()).run(&final_graph);
        println!(
            "  residual duplicates under exact detection: {}",
            residual.same_user_groups.len() + residual.same_permission_groups.len()
        );
    }
}

/// Refine-vs-regenerate on a churned organization (the D'Antoni et al.
/// claim the paper leans on: refining existing roles beats regenerating
/// them from scratch). The ing-like organization is first aged with
/// `--steps` simulated churn events, then both repair strategies run on
/// the aged graph:
///
/// * **refine (diet)**: periodic duplicate-consolidation rounds — keeps
///   role metadata/ownership, only removes redundancy;
/// * **regenerate (mine)**: discard the role set and mine a fresh exact
///   cover from the user→permission assignments with the lazy-greedy
///   engine (at `--threads`) — every mined cover is verified exact.
fn mining(opts: &Opts) {
    use rolediet_core::periodic::simulate_periodic_cleanup;
    use rolediet_mining::{mine_greedy_cover_with, verify_exact_cover, MiningConfig};
    use rolediet_synth::churn::{ChurnSimulator, ChurnWeights};

    let scale = if opts.scale >= 1.0 { 0.02 } else { opts.scale };
    println!(
        "# ing-like organization at scale {scale}, seed {}, aged by {} churn events, threads {}",
        opts.seed,
        opts.steps,
        opts.parallelism().threads()
    );
    let org = rolediet_synth::profiles::generate_ing_like(scale, opts.seed);
    let mut sim = ChurnSimulator::from_graph(org.graph, ChurnWeights::default(), opts.seed);
    sim.run(opts.steps);
    sim.drain_deltas();
    let graph = sim.graph();
    println!(
        "# aged organization: users={} roles={} permissions={} assignments={}",
        graph.n_users(),
        graph.n_roles(),
        graph.n_permissions(),
        graph.n_user_assignments()
    );

    let t0 = Instant::now();
    let (trace, cleaned) = simulate_periodic_cleanup(graph, DetectionConfig::default(), 10);
    let diet_time = t0.elapsed();
    println!(
        "refine (diet) : {} -> {} roles, {} assignments, in {diet_time:.2?} \
         ({} cleanup rounds; metadata preserved, access verified)",
        graph.n_roles(),
        cleaned.n_roles(),
        cleaned.n_user_assignments(),
        trace.n_rounds()
    );

    let threads = opts.parallelism().threads();
    let t0 = Instant::now();
    let upam = graph.upam_sparse_with(threads);
    let mined = mine_greedy_cover_with(&upam, &MiningConfig::default(), threads)
        .expect("generated candidate pools always cover the matrix");
    let mine_time = t0.elapsed();
    verify_exact_cover(&upam, &mined.roles).expect("mined cover must be exact");
    println!(
        "regenerate    : {} -> {} roles, {} assignments, in {mine_time:.2?} \
         ({} candidates; cover verified exact, all metadata lost)",
        graph.n_roles(),
        mined.n_roles(),
        mined.n_assignments(),
        mined.candidates_considered
    );
    println!(
        "# refine keeps {} of {} roles; regeneration rebuilds {} roles from zero",
        cleaned.n_roles(),
        graph.n_roles(),
        mined.n_roles()
    );
}

/// Simulated churn over an ing-like organization, re-detecting per event
/// batch. With `--incremental` the findings are additionally maintained
/// online through [`rolediet_core::IncrementalPipeline`]; after every
/// batch the maintained report is asserted bit-identical to the batch
/// rerun, and the per-batch apply-vs-rerun speedup is printed.
fn churn(opts: &Opts) {
    use rolediet_core::report::StageTimings;
    use rolediet_synth::churn::{ChurnSimulator, ChurnWeights};

    let scale = if opts.scale >= 1.0 { 0.05 } else { opts.scale };
    println!(
        "# ing-like organization at scale {scale}, seed {}, {} steps in batches of {}",
        opts.seed, opts.steps, opts.batch
    );
    let org = rolediet_synth::profiles::generate_ing_like(scale, opts.seed);
    let mut sim = ChurnSimulator::from_graph(org.graph, ChurnWeights::default(), opts.seed);
    let cfg = DetectionConfig {
        parallelism: opts.parallelism(),
        ..DetectionConfig::default()
    };
    let pipeline = Pipeline::new(cfg);
    let mut inc = opts.incremental.then(|| pipeline.incremental(sim.graph()));
    sim.drain_deltas();
    let mut previous = pipeline.run(sim.graph());
    let (mut apply_total, mut rerun_total) = (Duration::ZERO, Duration::ZERO);
    let mut done = 0usize;
    while done < opts.steps {
        let steps = opts.batch.min(opts.steps - done);
        done += steps;
        sim.run(steps);
        let stream = sim.drain_deltas();
        let t0 = Instant::now();
        let mut report = pipeline.run(sim.graph());
        let rerun = t0.elapsed();
        rerun_total += rerun;
        let delta = rolediet_core::ReportDelta::between(&previous, &report);
        print!(
            "batch of {steps:>4} events ({:>4} deltas): {:>3} findings changed, rerun {rerun:.2?}",
            stream.len(),
            delta.change_count()
        );
        if let Some(inc) = &mut inc {
            let t0 = Instant::now();
            inc.apply_all(&stream).expect("recorded stream applies");
            let maintained = inc.report();
            let apply = t0.elapsed();
            apply_total += apply;
            report.timings = StageTimings::default();
            assert_eq!(
                maintained, report,
                "incremental findings diverged from the batch rerun"
            );
            print!(", incremental {apply:.2?} (verified identical)");
        }
        println!();
        previous = report;
    }
    if opts.incremental {
        println!(
            "total: rerun {rerun_total:.2?}, incremental {apply_total:.2?} ({:.1}x)",
            rerun_total.as_secs_f64() / apply_total.as_secs_f64().max(1e-9)
        );
    }
}

/// Prints the worked co-occurrence matrix of Section III-C for the
/// Figure 1 RUAM.
fn cooccur_example() {
    use rolediet_matrix::ops::gram_matrix;
    let graph = rolediet_model::TripartiteGraph::figure1_example();
    let ruam = graph.ruam_sparse();
    let c = gram_matrix(&ruam);
    println!("co-occurrence matrix C (RUAM of Figure 1):");
    print!("     ");
    for j in 1..=c.len() {
        print!(" R{j:02}");
    }
    println!();
    for (i, row) in c.iter().enumerate() {
        print!("R{:02} |", i + 1);
        for v in row {
            print!(" {v:>3}");
        }
        println!();
    }
    println!(
        "\nindicator |Ri| = g_ij = |Rj| holds for (R02, R04): groups = {:?}",
        rolediet_core::cooccur::same_groups(&ruam)
    );
}
