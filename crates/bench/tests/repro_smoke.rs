//! Smoke tests for the `repro` harness binary: every subcommand runs and
//! emits its expected markers at miniature scale.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn help_lists_all_experiments() {
    let out = repro().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for cmd in [
        "fig2",
        "fig3",
        "realorg",
        "recall",
        "periodic",
        "mining",
        "cooccur-example",
    ] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_fails() {
    let out = repro().arg("nonsense").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn cooccur_example_prints_the_paper_matrix() {
    let out = repro().arg("cooccur-example").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("R02 |   0   2   0   2   0"), "{text}");
    assert!(text.contains("[[1, 3]]"), "{text}");
}

#[test]
fn fig2_miniature_sweep_emits_all_series_and_chart() {
    let out = repro()
        .args([
            "fig2", "--min", "120", "--max", "240", "--step", "120", "--runs", "1", "--roles", "80",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    for series in ["exact-dbscan", "approx-hnsw", "custom"] {
        assert!(text.contains(series), "{text}");
    }
    assert!(text.contains("log scale"), "chart rendered: {text}");
}

#[test]
fn realorg_miniature_prints_planted_vs_detected() {
    let out = repro()
        .args(["realorg", "--scale", "0.01", "--seed", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("planted vs detected"), "{text}");
    assert!(text.contains("consolidation:"), "{text}");
    assert!(text.contains("violations=0"), "{text}");
}

#[test]
fn realorg_miniature_with_two_threads_matches_markers() {
    let out = repro()
        .args([
            "realorg",
            "--scale",
            "0.01",
            "--seed",
            "1",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("threads=2"), "{text}");
    assert!(text.contains("planted vs detected"), "{text}");
    assert!(text.contains("consolidation:"), "{text}");
    assert!(text.contains("violations=0"), "{text}");
    // The per-stage thread counts recorded in the report are printed.
    assert!(text.contains("stage threads: matrix=2 degrees=2"), "{text}");
}

#[test]
fn recall_miniature_reports_rates() {
    let out = repro()
        .args(["recall", "--roles", "150", "--users", "80"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("recall="), "{text}");
    assert!(text.contains("minhash-lsh"), "{text}");
}

#[test]
fn mining_miniature_compares_both_approaches() {
    let out = repro()
        .args(["mining", "--scale", "0.01", "--seed", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("refine (diet) :"), "{text}");
    assert!(text.contains("regenerate    :"), "{text}");
    assert!(text.contains("cover verified exact"), "{text}");
}
