//! Ablation `abl-distkern`: the packed bounded-distance engine against
//! the scalar `PointSet` scan it replaced (PR 5).
//!
//! Three comparisons on a paper-shaped matrix with planted similar pairs:
//!
//! * `scalar_range_queries` vs `engine_range_queries` — the exact O(n²)
//!   neighbourhood precompute behind the DBSCAN T4/T5 strategies, scalar
//!   trait-call distances vs the engine (pack + norm-band pruning +
//!   early-exit kernels), at 1, 2, 4 and 8 workers; the engine rows
//!   include the `PackedRows` build so they measure the full
//!   `distance_precompute` stage of `Report::timings`.
//! * `pruned_*` vs `noprune_*` — the norm-band pruning ablation on a
//!   prebuilt engine: the banded candidate walk against the full tiled
//!   scan, for both the packed-word and sparse-merge representations.
//! * `bounded_hamming_*` vs `row_hamming` — the point kernel alone, over
//!   every pair of a small row block, isolating the early-exit win from
//!   the batching.
//! * `kernel_lanes8` vs `kernel_unrolled4` vs `roofline_stream_xor` —
//!   the PR 7 word-loop ablation: the 8-word-lane accumulator kernel and
//!   the PR 5 4-word unroll over every pair of a dense packed block with
//!   the bound wide open (no early exit), next to a pure streaming
//!   XOR-reduce over an L2-busting buffer. Dividing bytes touched by the
//!   reported times puts kernel GB/s beside the machine's streaming
//!   GB/s — how far the inner loop sits from the memory-bandwidth roof.
//!   Bytes per iteration are printed before the group runs.
//!
//! The scalar scan survives as the correctness oracle (`neighbors` tests
//! pin the engine against it), so this ablation stays honest about what
//! the restructuring buys.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rolediet_bench::sweep_matrix_with;
use rolediet_cluster::dbscan::DbscanParams;
use rolediet_cluster::metric::{BinaryMetric, BinaryRows};
use rolediet_cluster::neighbors::{all_range_queries_packed, all_range_queries_with};
use rolediet_matrix::packed::{xor_popcount_within, xor_popcount_within_unrolled4};
use rolediet_matrix::{PackedRows, RowMatrix};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn distkern_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_distkern");
    group.sample_size(10);
    // T5 shape: threshold-1 similarity over planted clusters with one
    // perturbed member each.
    let matrix = sweep_matrix_with(3_000, 1_000, 0, 1);
    let points = BinaryRows::new(&matrix, BinaryMetric::Hamming);
    let eps = DbscanParams::similar(1).eps;
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("scalar_range_queries", threads),
            &threads,
            |b, &threads| {
                b.iter(|| all_range_queries_with(&points, eps, threads));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine_range_queries", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let rows = PackedRows::from_matrix(&matrix, threads);
                    all_range_queries_packed(&rows, eps, threads)
                });
            },
        );
    }

    // Norm-band pruning ablation on a prebuilt engine, both
    // representations: banded candidate walk vs. the full tiled scan.
    let bound = 1usize;
    let reprs = [
        ("packed", PackedRows::packed_from_matrix(&matrix, 8)),
        ("sparse", PackedRows::sparse_from_matrix(&matrix, 8)),
    ];
    for (name, rows) in &reprs {
        group.bench_function(format!("pruned_{name}"), |b| {
            b.iter(|| rows.range_queries_within(bound, 8));
        });
        group.bench_function(format!("noprune_{name}"), |b| {
            b.iter(|| rows.range_queries_within_no_prune(bound, 8));
        });
    }

    // The point kernel alone: every pair of a 256-row block, early-exit
    // bounded distance vs. the full scalar row distance.
    let block = 256.min(matrix.n_rows());
    for (name, rows) in &reprs {
        group.bench_function(format!("bounded_hamming_{name}"), |b| {
            b.iter(|| {
                let mut within = 0usize;
                for i in 0..block {
                    for j in (i + 1)..block {
                        if rows.bounded_hamming(i, j, bound).is_some() {
                            within += 1;
                        }
                    }
                }
                within
            });
        });
    }
    group.bench_function("row_hamming", |b| {
        b.iter(|| {
            let mut within = 0usize;
            for i in 0..block {
                for j in (i + 1)..block {
                    if matrix.row_hamming(i, j) <= bound {
                        within += 1;
                    }
                }
            }
            within
        });
    });

    // PR 7 word-loop ablation + memory-bandwidth roofline. A dense
    // planted matrix (30% fill, 2,048 columns → 32 words/row) forces the
    // packed representation; every pair of a 1,024-row block runs through
    // each kernel with the bound wide open so neither can early-exit.
    let kcfg = rolediet_synth::MatrixGenConfig {
        density: 0.3,
        ..rolediet_synth::MatrixGenConfig::paper(1_024, 2_048, 0)
    };
    let kdense = rolediet_synth::generate_matrix(kcfg).dense;
    let kpacked = PackedRows::packed_from_matrix(&kdense, 8);
    assert!(kpacked.is_packed(), "kernel ablation needs the packed repr");
    let kwords: Vec<&[u64]> = (0..kdense.n_rows())
        .map(|i| kpacked.row_words(i).expect("packed repr has words"))
        .collect();
    let kbound = kdense.n_cols();
    let words_per_row = kwords[0].len();
    let kernel_bytes = kwords.len() * (kwords.len() - 1) / 2 * 2 * words_per_row * 8;
    // Streaming buffer: 32 MiB of u64s, far past L2, so the XOR-reduce
    // measures main-memory bandwidth rather than cache replay.
    let stream: Vec<u64> = (0..4 * 1024 * 1024u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    println!(
        "# roofline bytes/iter: kernels={kernel_bytes} stream={}",
        stream.len() * 8
    );
    for (name, kernel) in [
        (
            "kernel_lanes8",
            xor_popcount_within as fn(&[u64], &[u64], usize) -> Option<usize>,
        ),
        ("kernel_unrolled4", xor_popcount_within_unrolled4),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sum = 0usize;
                for (i, a) in kwords.iter().enumerate() {
                    for bb in &kwords[i + 1..] {
                        sum += kernel(a, bb, kbound).expect("bound is the column count");
                    }
                }
                black_box(sum)
            });
        });
    }
    group.bench_function("roofline_stream_xor", |b| {
        b.iter(|| black_box(stream.iter().fold(0u64, |acc, &w| acc ^ w)));
    });
    group.finish();
}

criterion_group!(benches, distkern_scaling);
criterion_main!(benches);
