//! Ablation `abl-distkern`: the packed bounded-distance engine against
//! the scalar `PointSet` scan it replaced (PR 5).
//!
//! Three comparisons on a paper-shaped matrix with planted similar pairs:
//!
//! * `scalar_range_queries` vs `engine_range_queries` — the exact O(n²)
//!   neighbourhood precompute behind the DBSCAN T4/T5 strategies, scalar
//!   trait-call distances vs the engine (pack + norm-band pruning +
//!   early-exit kernels), at 1, 2, 4 and 8 workers; the engine rows
//!   include the `PackedRows` build so they measure the full
//!   `distance_precompute` stage of `Report::timings`.
//! * `pruned_*` vs `noprune_*` — the norm-band pruning ablation on a
//!   prebuilt engine: the banded candidate walk against the full tiled
//!   scan, for both the packed-word and sparse-merge representations.
//! * `bounded_hamming_*` vs `row_hamming` — the point kernel alone, over
//!   every pair of a small row block, isolating the early-exit win from
//!   the batching.
//!
//! The scalar scan survives as the correctness oracle (`neighbors` tests
//! pin the engine against it), so this ablation stays honest about what
//! the restructuring buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rolediet_bench::sweep_matrix_with;
use rolediet_cluster::dbscan::DbscanParams;
use rolediet_cluster::metric::{BinaryMetric, BinaryRows};
use rolediet_cluster::neighbors::{all_range_queries_packed, all_range_queries_with};
use rolediet_matrix::{PackedRows, RowMatrix};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn distkern_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_distkern");
    group.sample_size(10);
    // T5 shape: threshold-1 similarity over planted clusters with one
    // perturbed member each.
    let matrix = sweep_matrix_with(3_000, 1_000, 0, 1);
    let points = BinaryRows::new(&matrix, BinaryMetric::Hamming);
    let eps = DbscanParams::similar(1).eps;
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("scalar_range_queries", threads),
            &threads,
            |b, &threads| {
                b.iter(|| all_range_queries_with(&points, eps, threads));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine_range_queries", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let rows = PackedRows::from_matrix(&matrix, threads);
                    all_range_queries_packed(&rows, eps, threads)
                });
            },
        );
    }

    // Norm-band pruning ablation on a prebuilt engine, both
    // representations: banded candidate walk vs. the full tiled scan.
    let bound = 1usize;
    let reprs = [
        ("packed", PackedRows::packed_from_matrix(&matrix, 8)),
        ("sparse", PackedRows::sparse_from_matrix(&matrix, 8)),
    ];
    for (name, rows) in &reprs {
        group.bench_function(format!("pruned_{name}"), |b| {
            b.iter(|| rows.range_queries_within(bound, 8));
        });
        group.bench_function(format!("noprune_{name}"), |b| {
            b.iter(|| rows.range_queries_within_no_prune(bound, 8));
        });
    }

    // The point kernel alone: every pair of a 256-row block, early-exit
    // bounded distance vs. the full scalar row distance.
    let block = 256.min(matrix.n_rows());
    for (name, rows) in &reprs {
        group.bench_function(format!("bounded_hamming_{name}"), |b| {
            b.iter(|| {
                let mut within = 0usize;
                for i in 0..block {
                    for j in (i + 1)..block {
                        if rows.bounded_hamming(i, j, bound).is_some() {
                            within += 1;
                        }
                    }
                }
                within
            });
        });
    }
    group.bench_function("row_hamming", |b| {
        b.iter(|| {
            let mut within = 0usize;
            for i in 0..block {
                for j in (i + 1)..block {
                    if matrix.row_hamming(i, j) <= bound {
                        within += 1;
                    }
                }
            }
            within
        });
    });
    group.finish();
}

criterion_group!(benches, distkern_scaling);
criterion_main!(benches);
