//! Ablation `abl-parallel`: parallel pipeline stages across thread counts.
//!
//! Three stages run on the shared substrate (`rolediet_matrix::parallel`)
//! and are benched at 1, 2, 4 and 8 workers on a paper-shaped matrix:
//!
//! * the custom T5 detector (`similar_pairs_parallel`) — embarrassingly
//!   parallel over the owning role of each co-occurring pair;
//! * the CSR transpose feeding T5 (`CsrMatrix::transpose_with`);
//! * the signature-index build behind the custom T4 detector
//!   (`SignatureIndex::build_with`);
//! * the two-pass CSR build (`CsrMatrix::from_row_iter_two_pass`), with
//!   the PR 1 `from_rows_of_indices` collection as baseline;
//! * the norm-bucketed disjoint supplement, with the PR 1 quadratic
//!   low-norm scan (`disjoint_supplement_naive`) as baseline;
//! * MinHash sketching + LSH banding (`MinHashLsh::build_with` /
//!   `candidate_pairs_with`);
//! * the DBSCAN grouping kernel (`Dbscan::group_cached_with` —
//!   connected components over cached neighbour lists), with the
//!   sequential BFS expansion (`Dbscan::fit_cached`) as baseline, plus
//!   the hoisted eps-edge dedup (union only `q > p`) against the
//!   both-directions union loop it replaced;
//! * the batched two-phase HNSW build (`Hnsw::build_batched` over the
//!   packed adapter), with the sequential insert loop (`Hnsw::build`)
//!   as baseline.
//!
//! A final full-pipeline pass records the per-stage thread counts that
//! `Report::timings` now carries, so a bench run documents which stages
//! actually ran parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rolediet_bench::sweep_matrix;
use rolediet_cluster::dbscan::{Dbscan, DbscanParams};
use rolediet_cluster::hnsw::{Hnsw, HnswParams};
use rolediet_cluster::metric::{BinaryMetric, BinaryRows, PackedPointSet};
use rolediet_cluster::minhash::{MinHashLsh, MinHashLshParams};
use rolediet_cluster::neighbors::all_range_queries_with;
use rolediet_cluster::UnionFind;
use rolediet_core::cooccur::{
    disjoint_supplement, disjoint_supplement_naive, similar_pairs_parallel,
};
use rolediet_core::{DetectionConfig, Parallelism, Pipeline, SimilarityConfig};
use rolediet_matrix::{CsrMatrix, SignatureIndex};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A matrix shaped like the supplement's real workload: mostly empty and
/// single-entry rows (the paper's organization had 12,000 userless and
/// 4,000 single-user roles) plus a block of normal-norm rows.
fn supplement_matrix(empty: usize, single: usize, normal: usize, cols: usize) -> CsrMatrix {
    let rows: Vec<Vec<usize>> = (0..empty)
        .map(|_| Vec::new())
        .chain((0..single).map(|i| vec![i % cols]))
        .chain((0..normal).map(|i| (0..50).map(|k| (i + k * 7) % cols).collect()))
        .collect();
    let mut sorted = rows;
    for r in &mut sorted {
        r.sort_unstable();
        r.dedup();
    }
    CsrMatrix::from_rows_of_indices(sorted.len(), cols, &sorted).unwrap()
}

fn parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    let matrix = sweep_matrix(3_000, 1_000, 0);
    let transpose = matrix.transpose();
    let cfg = SimilarityConfig::default();
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("similar_pairs", threads),
            &threads,
            |b, &threads| {
                b.iter(|| similar_pairs_parallel(&matrix, &transpose, &cfg, threads));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("transpose", threads),
            &threads,
            |b, &threads| {
                b.iter(|| matrix.transpose_with(threads));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("signature_build", threads),
            &threads,
            |b, &threads| {
                b.iter(|| SignatureIndex::build_with(&matrix, threads));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("matrix_build", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    CsrMatrix::from_row_iter_two_pass(
                        matrix.n_rows(),
                        matrix.n_cols(),
                        threads,
                        |i| matrix.row(i).iter().copied(),
                    )
                });
            },
        );
    }
    // PR 1 baseline for the two-pass build: collect per-row `Vec`s, then
    // `from_rows_of_indices` (which sorts and re-copies every row).
    group.bench_function("matrix_build_pr1_baseline", |b| {
        b.iter(|| {
            let rows: Vec<Vec<usize>> = (0..matrix.n_rows())
                .map(|i| matrix.row(i).iter().map(|&c| c as usize).collect())
                .collect();
            CsrMatrix::from_rows_of_indices(matrix.n_rows(), matrix.n_cols(), &rows).unwrap()
        });
    });

    // Disjoint supplement: bucketed kernel vs. the PR 1 quadratic scan,
    // on a workload dominated by empty and single-entry rows.
    let supp = supplement_matrix(1_000, 500, 500, 1_000);
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("disjoint_supplement", threads),
            &threads,
            |b, &threads| {
                b.iter(|| disjoint_supplement(&supp, 1, threads));
            },
        );
    }
    group.bench_function("disjoint_supplement_pr1_baseline", |b| {
        b.iter(|| disjoint_supplement_naive(&supp, 1));
    });

    // MinHash sketching + banding across thread counts.
    let sets: Vec<Vec<u32>> = (0..matrix.n_rows())
        .map(|i| matrix.row(i).to_vec())
        .collect();
    let params = MinHashLshParams::default();
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("minhash", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    MinHashLsh::build_with(&sets, params, threads).candidate_pairs_with(threads)
                });
            },
        );
    }

    // DBSCAN grouping: connected-components kernel vs. the sequential
    // BFS expansion, both over one shared neighbourhood precompute so
    // only the grouping stage is timed.
    let dbscan = Dbscan::new(DbscanParams::exact_duplicates());
    let points = BinaryRows::new(&matrix, BinaryMetric::Hamming);
    let neighborhoods = all_range_queries_with(&points, dbscan.params().eps, 8);
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("dbscan_group_cc", threads),
            &threads,
            |b, &threads| {
                b.iter(|| dbscan.group_cached_with(&neighborhoods, threads));
            },
        );
    }
    group.bench_function("dbscan_expand_baseline", |b| {
        b.iter(|| dbscan.fit_cached(&neighborhoods));
    });

    // HNSW construction (PR 8): the two-phase batched build across
    // thread counts vs. the sequential insert loop it parallelizes —
    // both over the packed adapter, both producing the bit-identical
    // graph (asserted by the cluster tests, so only time differs here).
    let hnsw_points = PackedPointSet::from_matrix(&matrix, 8);
    let hnsw_params = HnswParams::default();
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("hnsw_build", threads),
            &threads,
            |b, &threads| {
                b.iter(|| Hnsw::build_batched(&hnsw_points, hnsw_params, 64, threads));
            },
        );
    }
    group.bench_function("hnsw_build_seq_baseline", |b| {
        b.iter(|| Hnsw::build(&hnsw_points, hnsw_params));
    });

    // Hoisted eps-edge dedup ablation: the kernel's union loop processes
    // each unordered edge once (`q > p`); the loop it replaced unioned
    // both directions of every edge.
    let n_points = neighborhoods.len();
    group.bench_function("eps_edge_union_dedup", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(n_points);
            for (p, neigh) in neighborhoods.iter().enumerate() {
                if neigh.len() < 2 {
                    continue;
                }
                for &q in neigh {
                    if q > p {
                        uf.union(p, q);
                    }
                }
            }
            uf.components()
        });
    });
    group.bench_function("eps_edge_union_nodedup", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(n_points);
            for (p, neigh) in neighborhoods.iter().enumerate() {
                if neigh.len() < 2 {
                    continue;
                }
                for &q in neigh {
                    if q != p {
                        uf.union(p, q);
                    }
                }
            }
            uf.components()
        });
    });
    group.finish();

    // Per-stage thread counts from a full pipeline run, as recorded in
    // `Report::timings.threads` — printed so the bench log documents the
    // parallelism each stage actually used.
    let (ruam, rpam) = (sweep_matrix(800, 400, 0), sweep_matrix(800, 300, 1));
    for threads in THREAD_COUNTS {
        let cfg = DetectionConfig {
            parallelism: Parallelism::Threads(threads),
            ..DetectionConfig::default()
        };
        let report = Pipeline::new(cfg).run_on_matrices(&ruam, &rpam);
        let t = report.timings.threads;
        println!(
            "pipeline threads={threads}: degrees={} same(u)={} same(p)={} \
             transpose={} similar(u)={} similar(p)={} disjoint={} minhash={} \
             cluster_expand={} group_extract={} | total {:.2?}",
            t.degree_detectors,
            t.same_users,
            t.same_permissions,
            t.transpose,
            t.similar_users,
            t.similar_permissions,
            t.disjoint_supplement,
            t.minhash,
            t.cluster_expand,
            t.group_extract,
            report.timings.total(),
        );
    }
}

criterion_group!(benches, parallel_scaling);
criterion_main!(benches);
