//! Ablation `abl-parallel`: the custom T5 detector across thread counts.
//!
//! The co-occurrence walk is embarrassingly parallel over roles; this
//! bench measures the scaling of `similar_pairs_parallel` at 1, 2, 4 and
//! 8 workers on a paper-shaped matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rolediet_bench::sweep_matrix;
use rolediet_core::cooccur::similar_pairs_parallel;
use rolediet_core::SimilarityConfig;

fn parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    let matrix = sweep_matrix(3_000, 1_000, 0);
    let transpose = matrix.transpose();
    let cfg = SimilarityConfig::default();
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("similar_pairs", threads),
            &threads,
            |b, &threads| {
                b.iter(|| similar_pairs_parallel(&matrix, &transpose, &cfg, threads));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, parallel_scaling);
criterion_main!(benches);
