//! Ablation `abl-parallel`: parallel pipeline stages across thread counts.
//!
//! Three stages run on the shared substrate (`rolediet_matrix::parallel`)
//! and are benched at 1, 2, 4 and 8 workers on a paper-shaped matrix:
//!
//! * the custom T5 detector (`similar_pairs_parallel`) — embarrassingly
//!   parallel over the owning role of each co-occurring pair;
//! * the CSR transpose feeding T5 (`CsrMatrix::transpose_with`);
//! * the signature-index build behind the custom T4 detector
//!   (`SignatureIndex::build_with`).
//!
//! A final full-pipeline pass records the per-stage thread counts that
//! `Report::timings` now carries, so a bench run documents which stages
//! actually ran parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rolediet_bench::sweep_matrix;
use rolediet_core::cooccur::similar_pairs_parallel;
use rolediet_core::{DetectionConfig, Parallelism, Pipeline, SimilarityConfig};
use rolediet_matrix::SignatureIndex;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    let matrix = sweep_matrix(3_000, 1_000, 0);
    let transpose = matrix.transpose();
    let cfg = SimilarityConfig::default();
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("similar_pairs", threads),
            &threads,
            |b, &threads| {
                b.iter(|| similar_pairs_parallel(&matrix, &transpose, &cfg, threads));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("transpose", threads),
            &threads,
            |b, &threads| {
                b.iter(|| matrix.transpose_with(threads));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("signature_build", threads),
            &threads,
            |b, &threads| {
                b.iter(|| SignatureIndex::build_with(&matrix, threads));
            },
        );
    }
    group.finish();

    // Per-stage thread counts from a full pipeline run, as recorded in
    // `Report::timings.threads` — printed so the bench log documents the
    // parallelism each stage actually used.
    let (ruam, rpam) = (sweep_matrix(800, 400, 0), sweep_matrix(800, 300, 1));
    for threads in THREAD_COUNTS {
        let cfg = DetectionConfig {
            parallelism: Parallelism::Threads(threads),
            ..DetectionConfig::default()
        };
        let report = Pipeline::new(cfg).run_on_matrices(&ruam, &rpam);
        let t = report.timings.threads;
        println!(
            "pipeline threads={threads}: degrees={} same(u)={} same(p)={} \
             transpose={} similar(u)={} similar(p)={} | total {:.2?}",
            t.degree_detectors,
            t.same_users,
            t.same_permissions,
            t.transpose,
            t.similar_users,
            t.similar_permissions,
            report.timings.total(),
        );
    }
}

criterion_group!(benches, parallel_scaling);
criterion_main!(benches);
