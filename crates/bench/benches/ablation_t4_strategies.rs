//! Ablation `abl-signature`: the two exact T4 oracles and the two
//! approximate strategies on identical input.
//!
//! Compares the signature fast path (what [`Strategy::Custom`] uses)
//! against the literal co-occurrence indicator evaluation of the paper,
//! plus DBSCAN, HNSW and MinHash LSH, for finding roles sharing the same
//! users.
//!
//! [`Strategy::Custom`]: rolediet_core::Strategy::Custom

use criterion::{criterion_group, criterion_main, Criterion};

use rolediet_bench::sweep_matrix;
use rolediet_core::cooccur::{same_groups, same_groups_naive, same_groups_via_indicator};
use rolediet_core::strategy::find_same_groups;
use rolediet_core::{Parallelism, Strategy};

fn t4_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_t4_strategies");
    group.sample_size(10);
    let matrix = sweep_matrix(1_000, 500, 0);
    let transpose = matrix.transpose();

    group.bench_function("signature-fast-path", |b| {
        b.iter(|| same_groups(&matrix));
    });
    group.bench_function("cooccurrence-indicator", |b| {
        b.iter(|| same_groups_via_indicator(&matrix, &transpose));
    });
    group.bench_function("naive-all-pairs", |b| {
        b.iter(|| same_groups_naive(&matrix));
    });
    for strategy in [
        Strategy::ExactDbscan,
        Strategy::hnsw_default(),
        Strategy::minhash_default(),
    ] {
        group.bench_function(strategy.name(), |b| {
            b.iter(|| find_same_groups(&matrix, &strategy, Parallelism::Sequential));
        });
    }
    // DBSCAN with a VP-tree index instead of brute-force region queries:
    // the exact baseline with a real metric index (still exact). Distance
    // evaluations go through the packed adapter (PR 8) rather than the
    // scalar sparse-row metric.
    {
        use rolediet_cluster::dbscan::{Dbscan, DbscanParams};
        use rolediet_cluster::metric::PackedPointSet;
        use rolediet_cluster::vptree::VpTree;
        let points = PackedPointSet::from_matrix(&matrix, 1);
        group.bench_function("exact-dbscan-vptree", |b| {
            b.iter(|| {
                let tree = VpTree::build(&points, 0);
                Dbscan::new(DbscanParams::exact_duplicates()).fit_with_vptree(&points, &tree)
            });
        });
    }
    // HNSW with plain closest-first neighbour selection instead of the
    // diversity heuristic: faster builds, worse connectivity on
    // duplicate-heavy data (see hnsw module docs).
    let simple = Strategy::ApproxHnsw {
        params: rolediet_cluster::hnsw::HnswParams {
            select_heuristic: false,
            ..Default::default()
        },
        probe_k: 16,
    };
    group.bench_function("approx-hnsw-simple-select", |b| {
        b.iter(|| find_same_groups(&matrix, &simple, Parallelism::Sequential));
    });
    group.finish();
}

criterion_group!(benches, t4_strategies);
criterion_main!(benches);
