//! Ablation `abl-sparse`: dense bit matrix vs CSR sparse representation.
//!
//! The paper notes sparse storage as a memory optimization whose choice
//! "should be chosen considering other factors, such as conversion time,
//! based on the experimental evaluation" — this bench is that evaluation:
//! T4 grouping and pairwise Hamming scans on both representations across
//! densities, plus the conversion itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rolediet_core::cooccur::same_groups;
use rolediet_matrix::{CsrMatrix, RowMatrix};
use rolediet_synth::{generate_matrix, MatrixGenConfig};

fn matrix_repr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_matrix_repr");
    group.sample_size(10);
    for density in [0.005f64, 0.05, 0.3] {
        let gen = generate_matrix(MatrixGenConfig {
            density,
            ..MatrixGenConfig::paper(800, 800, 1)
        });
        let dense = gen.dense.clone();
        let sparse = gen.sparse();

        group.bench_with_input(
            BenchmarkId::new("same_groups/dense", density),
            &dense,
            |b, m| b.iter(|| same_groups(m)),
        );
        group.bench_with_input(
            BenchmarkId::new("same_groups/sparse", density),
            &sparse,
            |b, m| b.iter(|| same_groups(m)),
        );
        group.bench_with_input(
            BenchmarkId::new("hamming_scan/dense", density),
            &dense,
            |b, m| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for i in 0..m.rows().min(200) {
                        for j in 0..m.rows() {
                            acc += m.row_hamming(i, j);
                        }
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hamming_scan/sparse", density),
            &sparse,
            |b, m| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for i in 0..m.rows().min(200) {
                        for j in 0..m.rows() {
                            acc += m.row_hamming(i, j);
                        }
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("convert/dense-to-sparse", density),
            &dense,
            |b, m| b.iter(|| CsrMatrix::from_dense(m)),
        );
        group.bench_with_input(
            BenchmarkId::new("convert/sparse-to-dense", density),
            &sparse,
            |b, m| b.iter(|| m.to_dense()),
        );
    }
    group.finish();
}

criterion_group!(benches, matrix_repr);
criterion_main!(benches);
