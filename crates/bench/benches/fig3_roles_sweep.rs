//! Figure 3 — duration of the analysis depending on role number (number
//! of users fixed).
//!
//! Paper setup: users = 1,000; roles swept 1,000 → 10,000; task = find
//! roles sharing the same users. Paper result: all methods grow with the
//! role count; exact grows fastest (496 s at 10k roles), approx crosses
//! below exact around 7k roles (328 s at 10k), custom stays far below
//! both (2.27 s at 10k).
//!
//! The Criterion bench uses a scaled sweep; the full paper-sized sweep is
//! `cargo run --release -p rolediet-bench --bin repro -- fig3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rolediet_bench::{paper_strategies, sweep_matrix};
use rolediet_core::strategy::find_same_groups;
use rolediet_core::Parallelism;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_roles_sweep");
    group.sample_size(10);
    let users = 500;
    for roles in [250usize, 500, 1_000, 2_000] {
        let matrix = sweep_matrix(roles, users, 0);
        for strategy in paper_strategies() {
            group.bench_with_input(BenchmarkId::new(strategy.name(), roles), &matrix, |b, m| {
                b.iter(|| find_same_groups(m, &strategy, Parallelism::Sequential));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
