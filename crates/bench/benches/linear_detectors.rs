//! The linear-time detectors (T1–T3) at organization scale.
//!
//! The paper claims everything except T4/T5 "can be found in linear
//! time"; this bench pins that the degree detectors stay in the
//! milliseconds range on an org-sized dataset (the §IV-B substitution at
//! reduced scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rolediet_core::detector::detect_degrees;
use rolediet_synth::profiles::generate_ing_like;

fn linear_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_detectors");
    group.sample_size(10);
    for scale in [0.01f64, 0.05] {
        let org = generate_ing_like(scale, 3);
        let ruam = org.graph.ruam_sparse();
        let rpam = org.graph.rpam_sparse();
        group.bench_with_input(
            BenchmarkId::new("detect_degrees", format!("scale-{scale}")),
            &(ruam, rpam),
            |b, (ruam, rpam)| {
                b.iter(|| detect_degrees(ruam, rpam));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, linear_detectors);
criterion_main!(benches);
