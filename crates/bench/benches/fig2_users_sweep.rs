//! Figure 2 — duration of the analysis depending on user number (number
//! of roles fixed).
//!
//! Paper setup: roles = 1,000; users swept 1,000 → 10,000; task = find
//! roles sharing the same users; cluster fraction 0.2; max cluster size
//! 10. Paper result: all three methods are nearly flat in the number of
//! users; approx (index build) ≫ exact ≫ custom.
//!
//! The Criterion bench uses a scaled sweep so `cargo bench` stays
//! minutes-long; the full paper-sized sweep is
//! `cargo run --release -p rolediet-bench --bin repro -- fig2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rolediet_bench::{paper_strategies, sweep_matrix};
use rolediet_core::strategy::find_same_groups;
use rolediet_core::Parallelism;

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_users_sweep");
    group.sample_size(10);
    let roles = 500;
    for users in [500usize, 1_000, 2_000, 4_000] {
        let matrix = sweep_matrix(roles, users, 0);
        for strategy in paper_strategies() {
            group.bench_with_input(BenchmarkId::new(strategy.name(), users), &matrix, |b, m| {
                b.iter(|| find_same_groups(m, &strategy, Parallelism::Sequential));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
