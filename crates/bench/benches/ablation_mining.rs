//! Ablation: role mining (regenerate) vs. the role diet (refine) runtime
//! on identical organizations, plus lazy-greedy (CELF) vs. the eager
//! full-rescan oracle on the same candidate pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rolediet_core::{DetectionConfig, MergePlan, Pipeline};
use rolediet_mining::{
    generate_candidates, mine_eager_from_pool, mine_greedy_cover, mine_lazy_from_pool,
    CandidateConfig, MiningConfig,
};
use rolediet_synth::profiles::generate_ing_like;

fn mining_vs_diet(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mining");
    group.sample_size(10);
    let org = generate_ing_like(0.01, 4);
    let graph = org.graph;
    let upam = graph.upam_sparse();
    let pool = generate_candidates(&upam, &CandidateConfig::default());
    assert_eq!(
        mine_lazy_from_pool(&upam, &pool, 1).unwrap(),
        mine_eager_from_pool(&upam, &pool).unwrap(),
        "lazy and eager engines must agree before timing them"
    );

    group.bench_function("diet/detect-and-plan", |b| {
        b.iter(|| {
            let cfg = DetectionConfig {
                skip_similarity: true,
                ..DetectionConfig::default()
            };
            let report = Pipeline::new(cfg).run(&graph);
            MergePlan::from_report(&report, graph.n_roles(), true)
        });
    });
    group.bench_function("mining/lazy-cover", |b| {
        b.iter(|| mine_lazy_from_pool(&upam, &pool, 1).unwrap());
    });
    group.bench_function("mining/eager-cover", |b| {
        b.iter(|| mine_eager_from_pool(&upam, &pool).unwrap());
    });
    for probe_limit in [32usize, 128] {
        group.bench_with_input(
            BenchmarkId::new("mining/end-to-end", probe_limit),
            &probe_limit,
            |b, &probe_limit| {
                let cfg = MiningConfig {
                    candidates: CandidateConfig {
                        probe_limit,
                        ..CandidateConfig::default()
                    },
                };
                b.iter(|| mine_greedy_cover(&upam, &cfg).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, mining_vs_diet);
criterion_main!(benches);
