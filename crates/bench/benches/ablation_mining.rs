//! Ablation: role mining (regenerate) vs. the role diet (refine) runtime
//! on identical organizations, plus mining candidate-depth sensitivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rolediet_core::{DetectionConfig, MergePlan, Pipeline};
use rolediet_mining::{mine_greedy_cover, CandidateConfig, MiningConfig};
use rolediet_synth::profiles::generate_ing_like;

fn mining_vs_diet(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mining");
    group.sample_size(10);
    let org = generate_ing_like(0.01, 4);
    let graph = org.graph;
    let upam = graph.upam_sparse();

    group.bench_function("diet/detect-and-plan", |b| {
        b.iter(|| {
            let cfg = DetectionConfig {
                skip_similarity: true,
                ..DetectionConfig::default()
            };
            let report = Pipeline::new(cfg).run(&graph);
            MergePlan::from_report(&report, graph.n_roles(), true)
        });
    });
    for rounds in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new("mining/greedy-cover", rounds),
            &rounds,
            |b, &rounds| {
                let cfg = MiningConfig {
                    candidates: CandidateConfig {
                        closure_rounds: rounds,
                        ..CandidateConfig::default()
                    },
                };
                b.iter(|| mine_greedy_cover(&upam, &cfg));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, mining_vs_diet);
criterion_main!(benches);
