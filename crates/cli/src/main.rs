//! `rolediet` — command-line RBAC inefficiency detector.
//!
//! ```text
//! rolediet detect      --users a.csv --perms g.csv [--strategy custom] [--threshold 1]
//!                      [--no-similar] [--threads N] [--memory-budget BYTES]
//!                      [--hnsw-batch N] [--json report.json] [--names N]
//! rolediet stats       --users a.csv --perms g.csv
//! rolediet consolidate --users a.csv --perms g.csv [--apply PREFIX] [--keep-standalone]
//! rolediet mine        --users a.csv --perms g.csv [--threads N]
//!                      [--max-candidates N] [--min-shared N]
//! rolediet generate    [--profile small|ing] [--scale F] [--seed N] --out PREFIX
//! ```
//!
//! CSV formats: the user file holds `role,user` records; the permission
//! file holds `role,permission` records (header optional, `#` comments
//! allowed).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;

use rolediet_core::consolidate::verify_preserves_access;
use rolediet_core::{DetectionConfig, MergePlan, Parallelism, Pipeline, Report, Strategy};
use rolediet_model::io::csv::{read_edges, write_edges, EdgeKind};
use rolediet_model::{DatasetStats, RbacDataset, RoleId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rolediet: {e}");
            ExitCode::from(1)
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn run(args: &[String]) -> CliResult {
    let Some(cmd) = args.first() else {
        print_help();
        return Err("missing command".into());
    };
    match cmd.as_str() {
        "detect" => detect(&args[1..]),
        "stats" => stats(&args[1..]),
        "consolidate" => consolidate(&args[1..]),
        "mine" => mine(&args[1..]),
        "suggest" => suggest(&args[1..]),
        "diff" => diff_cmd(&args[1..]),
        "access" => access(&args[1..]),
        "trend" => trend(&args[1..]),
        "generate" => generate(&args[1..]),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => {
            print_help();
            Err(format!("unknown command {other:?}").into())
        }
    }
}

fn print_help() {
    eprintln!(
        "rolediet — detect RBAC data inefficiencies (IAM Role Diet)\n\
         \n\
         commands:\n\
         \x20 detect       run all detectors, print the inefficiency table\n\
         \x20 stats        print dataset shape statistics\n\
         \x20 consolidate  plan (and optionally apply) duplicate-role merges\n\
         \x20 mine         regenerate a role set from scratch (lazy-greedy cover)\n\
         \x20 suggest      subset roles, provably redundant roles, merge deltas\n\
         \x20 diff         compare two snapshots (--old-users/--old-perms vs --users/--perms)\n\
         \x20 access       effective user→permission analysis (review classes)\n\
         \x20 trend        append this run's counts to a CSV trend file (--trend-file)\n\
         \x20 generate     write a synthetic organization as CSV\n\
         \n\
         run `rolediet <command> --bad-flag` to see each command's flags"
    );
}

/// `--key value` lookup over raw args.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn load_dataset(args: &[String]) -> Result<RbacDataset, Box<dyn std::error::Error>> {
    let users = flag_value(args, "--users").ok_or("--users <file> is required")?;
    let perms = flag_value(args, "--perms").ok_or("--perms <file> is required")?;
    let mut ds = RbacDataset::new();
    read_edges(
        BufReader::new(File::open(users)?),
        &mut ds,
        EdgeKind::UserAssignments,
    )?;
    read_edges(
        BufReader::new(File::open(perms)?),
        &mut ds,
        EdgeKind::PermissionGrants,
    )?;
    Ok(ds)
}

fn parse_strategy(args: &[String]) -> Result<Strategy, Box<dyn std::error::Error>> {
    Ok(match flag_value(args, "--strategy").unwrap_or("custom") {
        "custom" => Strategy::Custom,
        "dbscan" => Strategy::ExactDbscan,
        "hnsw" => Strategy::hnsw_default(),
        "minhash" => Strategy::minhash_default(),
        other => return Err(format!("unknown strategy {other:?}").into()),
    })
}

fn build_config(args: &[String]) -> Result<DetectionConfig, Box<dyn std::error::Error>> {
    let mut cfg = DetectionConfig::with_strategy(parse_strategy(args)?);
    if let Some(t) = flag_value(args, "--threshold") {
        cfg.similarity.threshold = t.parse()?;
    }
    if flag_present(args, "--no-similar") {
        cfg.skip_similarity = true;
    }
    if let Some(n) = flag_value(args, "--threads") {
        cfg.parallelism = Parallelism::Threads(n.parse()?);
    }
    if let Some(b) = flag_value(args, "--memory-budget") {
        cfg.memory_budget_bytes = b.parse()?;
    }
    if let Some(b) = flag_value(args, "--hnsw-batch") {
        cfg.hnsw_batch = b.parse()?;
    }
    if let Some(n) = flag_value(args, "--max-candidates") {
        cfg.mining.candidates.max_candidates = n.parse()?;
    }
    if let Some(n) = flag_value(args, "--min-shared") {
        cfg.mining.candidates.min_shared = n.parse()?;
    }
    Ok(cfg)
}

fn detect(args: &[String]) -> CliResult {
    let ds = load_dataset(args)?;
    let cfg = build_config(args)?;
    let report = Pipeline::new(cfg).run(ds.graph());
    print!("{}", report.summary_table());
    println!(
        "detection time: {:.2?} (strategy: {})",
        report.timings.total(),
        cfg.strategy.name()
    );
    let show = flag_value(args, "--names")
        .map(str::parse)
        .transpose()?
        .unwrap_or(5usize);
    print_named_findings(&ds, &report, show);
    if let Some(path) = flag_value(args, "--json") {
        let f = BufWriter::new(File::create(path)?);
        serde_json::to_writer_pretty(f, &report)?;
        println!("report written to {path}");
    }
    if let Some(path) = flag_value(args, "--markdown") {
        let md = rolediet_core::render::render_markdown(
            &report,
            &ds,
            &rolediet_core::render::RenderOptions::default(),
        );
        std::fs::write(path, md)?;
        println!("markdown report written to {path}");
    }
    Ok(())
}

/// Prints the first `show` findings of each group type with their names,
/// so the administrator can review concrete roles.
fn print_named_findings(ds: &RbacDataset, report: &Report, show: usize) {
    if show == 0 {
        return;
    }
    let name = |r: usize| ds.role_name(RoleId::from_index(r));
    if !report.same_user_groups.is_empty() {
        println!("\nroles sharing the same users (first {show} groups):");
        for g in report.same_user_groups.iter().take(show) {
            let names: Vec<&str> = g.iter().map(|&r| name(r)).collect();
            println!("  {}", names.join(", "));
        }
    }
    if !report.same_permission_groups.is_empty() {
        println!("roles sharing the same permissions (first {show} groups):");
        for g in report.same_permission_groups.iter().take(show) {
            let names: Vec<&str> = g.iter().map(|&r| name(r)).collect();
            println!("  {}", names.join(", "));
        }
    }
    if !report.similar_user_pairs.is_empty() {
        println!("roles with similar users (first {show} pairs):");
        for p in report.similar_user_pairs.iter().take(show) {
            println!("  {} ~ {} (distance {})", name(p.a), name(p.b), p.distance);
        }
    }
}

fn stats(args: &[String]) -> CliResult {
    let ds = load_dataset(args)?;
    println!("{}", DatasetStats::compute(ds.graph()));
    Ok(())
}

fn consolidate(args: &[String]) -> CliResult {
    let ds = load_dataset(args)?;
    let cfg = DetectionConfig {
        skip_similarity: true,
        ..DetectionConfig::default()
    };
    let report = Pipeline::new(cfg).run(ds.graph());
    let drop_standalone = !flag_present(args, "--keep-standalone");
    let plan = MergePlan::from_report(&report, ds.graph().n_roles(), drop_standalone);
    println!(
        "plan: {} merges, {} standalone roles to drop, {} roles removable of {}",
        plan.merges.len(),
        plan.drop_standalone.len(),
        plan.roles_removed(),
        ds.graph().n_roles()
    );
    for m in plan.merges.iter().take(10) {
        let absorbed: Vec<&str> = m.absorbed.iter().map(|r| ds.role_name(*r)).collect();
        println!(
            "  keep {} <- absorb {} ({:?})",
            ds.role_name(m.keep),
            absorbed.join(", "),
            m.basis
        );
    }
    if let Some(prefix) = flag_value(args, "--apply") {
        let outcome = plan.apply(ds.graph());
        let violations = verify_preserves_access(ds.graph(), &outcome.graph);
        if !violations.is_empty() {
            return Err(format!(
                "refusing to write: consolidation would change access for {} users",
                violations.len()
            )
            .into());
        }
        let merged = ds.rebuild_with_role_map(&outcome.role_map, outcome.graph.n_roles())?;
        write_dataset(&merged, prefix)?;
        println!(
            "applied: {} roles removed, verified access-preserving; written to {prefix}-*.csv",
            outcome.roles_removed
        );
    }
    Ok(())
}

/// Regenerates a role set from the user→permission assignments with the
/// lazy-greedy (CELF) cover engine and contrasts it against the dataset's
/// existing roles — the "regenerate" side of the refine-vs-regenerate
/// comparison (`repro mining` runs it on churned organizations).
fn mine(args: &[String]) -> CliResult {
    let ds = load_dataset(args)?;
    let cfg = build_config(args)?;
    let threads = cfg.parallelism.threads();
    let start = std::time::Instant::now();
    let upam = ds.graph().upam_sparse_with(threads);
    let result = rolediet_mining::mine_greedy_cover_with(&upam, &cfg.mining, threads)?;
    let elapsed = start.elapsed();
    rolediet_mining::verify_exact_cover(&upam, &result.roles)?;
    println!(
        "mined {} roles / {} assignments from {} candidates in {elapsed:.2?} (verified exact)",
        result.n_roles(),
        result.n_assignments(),
        result.candidates_considered,
    );
    println!(
        "existing model: {} roles / {} assignments for {} users, {} permissions",
        ds.graph().n_roles(),
        ds.graph().n_user_assignments(),
        ds.graph().n_users(),
        ds.graph().n_permissions()
    );
    let show = flag_value(args, "--names")
        .map(str::parse)
        .transpose()?
        .unwrap_or(5usize);
    for (i, role) in result.roles.iter().take(show).enumerate() {
        println!(
            "  mined role {i}: {} permission(s), {} user(s)",
            role.permissions.len(),
            role.users.len()
        );
    }
    Ok(())
}

/// Consolidation suggestions beyond exact duplicates: role-containment
/// pairs, provably redundant single-link roles, and access deltas for the
/// similar-role merges.
fn suggest(args: &[String]) -> CliResult {
    use rolediet_core::suggest::{
        redundant_single_link_roles, subset_pairs, unsafe_similar_merges,
    };
    let ds = load_dataset(args)?;
    let cfg = build_config(args)?;
    let report = Pipeline::new(cfg).run(ds.graph());
    let show = flag_value(args, "--names")
        .map(str::parse)
        .transpose()?
        .unwrap_or(10usize);

    let ruam = ds.graph().ruam_sparse();
    let subsets = subset_pairs(&ruam, &ruam.transpose());
    println!("role-containment pairs (user side): {}", subsets.len());
    for s in subsets.iter().take(show) {
        println!(
            "  users({}) ⊂ users({})",
            ds.role_name(rolediet_model::RoleId::from_index(s.sub)),
            ds.role_name(rolediet_model::RoleId::from_index(s.sup))
        );
    }

    let redundant = redundant_single_link_roles(ds.graph(), &report);
    println!(
        "\nprovably redundant single-link roles (safe to delete): {}",
        redundant.len()
    );
    for r in redundant.iter().take(show) {
        println!(
            "  {} (covers {} user-permission pairs elsewhere)",
            ds.role_name(r.role),
            r.covered_pairs
        );
    }

    let unsafe_user = unsafe_similar_merges(
        ds.graph(),
        &report.similar_user_pairs,
        rolediet_core::Side::User,
    );
    println!(
        "\nsimilar-user merge candidates: {} total, {} would grant new access",
        report.similar_user_pairs.len(),
        unsafe_user.len()
    );
    for (idx, delta) in unsafe_user.iter().take(show) {
        let p = report.similar_user_pairs[*idx];
        println!(
            "  {} ~ {}: would grant {} new user-permission pairs",
            ds.role_name(rolediet_model::RoleId::from_index(p.a)),
            ds.role_name(rolediet_model::RoleId::from_index(p.b)),
            delta.granted_pairs()
        );
    }
    Ok(())
}

/// Compares two snapshots and reports node/edge changes plus users whose
/// effective access changed.
fn diff_cmd(args: &[String]) -> CliResult {
    let old_users = flag_value(args, "--old-users").ok_or("--old-users <file> is required")?;
    let old_perms = flag_value(args, "--old-perms").ok_or("--old-perms <file> is required")?;
    let mut old = RbacDataset::new();
    read_edges(
        BufReader::new(File::open(old_users)?),
        &mut old,
        EdgeKind::UserAssignments,
    )?;
    read_edges(
        BufReader::new(File::open(old_perms)?),
        &mut old,
        EdgeKind::PermissionGrants,
    )?;
    let new = load_dataset(args)?;
    let d = rolediet_model::diff::diff(&old, &new);
    if d.is_empty() {
        println!("no changes");
        return Ok(());
    }
    println!(
        "{} changes: +{}/-{} roles, +{}/-{} users, +{}/-{} permissions, \
         +{}/-{} assignments, +{}/-{} grants",
        d.change_count(),
        d.roles_added.len(),
        d.roles_removed.len(),
        d.users_added.len(),
        d.users_removed.len(),
        d.permissions_added.len(),
        d.permissions_removed.len(),
        d.assignments_added.len(),
        d.assignments_removed.len(),
        d.grants_added.len(),
        d.grants_removed.len(),
    );
    println!(
        "users with effective-access changes: {}",
        d.users_with_access_changes.len()
    );
    for u in d.users_with_access_changes.iter().take(20) {
        println!("  {u}");
    }
    Ok(())
}

fn generate(args: &[String]) -> CliResult {
    let prefix = flag_value(args, "--out").ok_or("--out <prefix> is required")?;
    let seed: u64 = flag_value(args, "--seed")
        .map(str::parse)
        .transpose()?
        .unwrap_or(7);
    let profile = flag_value(args, "--profile").unwrap_or("small");
    let org = match profile {
        "small" => rolediet_synth::generate_org(rolediet_synth::profiles::small_org(seed)),
        "ing" => {
            let scale: f64 = flag_value(args, "--scale")
                .map(str::parse)
                .transpose()?
                .unwrap_or(0.05);
            rolediet_synth::profiles::generate_ing_like(scale, seed)
        }
        other => return Err(format!("unknown profile {other:?} (small|ing)").into()),
    };
    let ds = RbacDataset::from_graph(org.graph);
    write_dataset(&ds, prefix)?;
    println!(
        "generated {} users, {} roles, {} permissions -> {prefix}-users.csv / {prefix}-perms.csv",
        ds.graph().n_users(),
        ds.graph().n_roles(),
        ds.graph().n_permissions()
    );
    Ok(())
}

/// Appends this run's taxonomy counts to a JSON trend file and prints
/// the series as CSV plus the delta against the previous run — the
/// periodic-operations view.
fn trend(args: &[String]) -> CliResult {
    use rolediet_core::history::Trend;
    let ds = load_dataset(args)?;
    let cfg = build_config(args)?;
    let report = Pipeline::new(cfg).run(ds.graph());
    let path = flag_value(args, "--trend-file").ok_or("--trend-file <file> is required")?;
    let mut series: Trend = match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Trend::new(),
        Err(e) => return Err(e.into()),
    };
    let label = flag_value(args, "--label")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("run-{}", series.len() + 1));
    series.record(&label, &report, ds.graph());
    std::fs::write(path, serde_json::to_string_pretty(&series)?)?;
    print!("{}", series.to_csv());
    if let Some(delta) = series.latest_delta() {
        println!("\ndelta vs previous run:");
        for (kind, d) in delta {
            if d != 0 {
                println!("  {:<14} {:+}", kind.label(), d);
            }
        }
    }
    Ok(())
}

/// Effective-access analysis: review equivalence classes, zero-access
/// users, containment pairs.
fn access(args: &[String]) -> CliResult {
    let ds = load_dataset(args)?;
    let a = rolediet_core::access::analyze_access(ds.graph());
    println!(
        "{} users fall into {} access-review items \
         ({} identical-access classes, {} users with no access)",
        ds.graph().n_users(),
        a.review_items,
        a.identical_access_groups.len(),
        a.no_access_users.len()
    );
    let show = flag_value(args, "--names")
        .map(str::parse)
        .transpose()?
        .unwrap_or(5usize);
    for g in a.identical_access_groups.iter().take(show) {
        let names: Vec<&str> = g
            .iter()
            .map(|&u| ds.user_name(rolediet_model::UserId::from_index(u)))
            .collect();
        println!("  identical access: {}", names.join(", "));
    }
    println!(
        "containment pairs (access ⊂ access): {}",
        a.containment_pairs.len()
    );
    Ok(())
}

fn write_dataset(ds: &RbacDataset, prefix: &str) -> CliResult {
    let users = format!("{prefix}-users.csv");
    let perms = format!("{prefix}-perms.csv");
    let mut f = BufWriter::new(File::create(&users)?);
    write_edges(&mut f, ds, EdgeKind::UserAssignments)?;
    f.flush()?;
    let mut f = BufWriter::new(File::create(&perms)?);
    write_edges(&mut f, ds, EdgeKind::PermissionGrants)?;
    f.flush()?;
    Ok(())
}
