//! End-to-end smoke tests of the `rolediet` binary: generate → stats →
//! detect → consolidate on real files in a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rolediet"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rolediet-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_lists_commands() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("detect"));
    assert!(text.contains("consolidate"));
}

#[test]
fn missing_command_fails() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_flag_fails_cleanly() {
    let out = bin().args(["detect", "--nope"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn missing_input_files_fail_with_message() {
    let out = bin().args(["detect"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--users"));

    let out = bin()
        .args([
            "detect",
            "--users",
            "/nonexistent.csv",
            "--perms",
            "/nonexistent.csv",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn bad_strategy_name_rejected() {
    let dir = tmpdir("badstrategy");
    let f = dir.join("x.csv");
    std::fs::write(&f, "r,u\n").unwrap();
    let out = bin()
        .args([
            "detect",
            "--users",
            f.to_str().unwrap(),
            "--perms",
            f.to_str().unwrap(),
            "--strategy",
            "kmeans",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("kmeans"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_strategies_run_on_tiny_input() {
    let dir = tmpdir("strategies");
    let users = dir.join("u.csv");
    let perms = dir.join("p.csv");
    std::fs::write(&users, "r1,u1\nr2,u1\n").unwrap();
    std::fs::write(&perms, "r1,p1\nr2,p1\n").unwrap();
    for strategy in ["custom", "dbscan", "hnsw", "minhash"] {
        let out = bin()
            .args([
                "detect",
                "--users",
                users.to_str().unwrap(),
                "--perms",
                perms.to_str().unwrap(),
                "--strategy",
                strategy,
                "--threshold",
                "2",
                "--threads",
                "2",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "strategy {strategy}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        // r1 and r2 share user u1 and permission p1 → both T4 groups.
        assert!(text.contains("r1, r2"), "strategy {strategy}: {text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_stats_detect_consolidate_roundtrip() {
    let dir = tmpdir("roundtrip");
    let prefix = dir.join("org");
    let prefix = prefix.to_str().unwrap();

    // generate
    let out = bin()
        .args([
            "generate",
            "--profile",
            "small",
            "--seed",
            "3",
            "--out",
            prefix,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let users = format!("{prefix}-users.csv");
    let perms = format!("{prefix}-perms.csv");
    assert!(std::path::Path::new(&users).exists());

    // stats
    let out = bin()
        .args(["stats", "--users", &users, "--perms", &perms])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("RUAM density"), "{text}");

    // detect (with JSON and Markdown reports)
    let json = dir.join("report.json");
    let md = dir.join("report.md");
    let out = bin()
        .args([
            "detect",
            "--users",
            &users,
            "--perms",
            &perms,
            "--strategy",
            "custom",
            "--json",
            json.to_str().unwrap(),
            "--markdown",
            md.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("T4 roles sharing the same users"), "{text}");
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert!(report.get("same_user_groups").is_some());
    let md_text = std::fs::read_to_string(&md).unwrap();
    assert!(
        md_text.starts_with("# RBAC inefficiency report"),
        "{md_text}"
    );

    // suggest
    let out = bin()
        .args(["suggest", "--users", &users, "--perms", &perms])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("role-containment pairs"), "{text}");
    assert!(text.contains("redundant single-link roles"), "{text}");

    // consolidate --apply
    let merged = dir.join("merged");
    let out = bin()
        .args([
            "consolidate",
            "--users",
            &users,
            "--perms",
            &perms,
            "--apply",
            merged.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("verified access-preserving"), "{text}");
    assert!(merged.with_file_name("merged-users.csv").exists());

    // Note: the CSV edge-list format cannot carry standalone nodes, so a
    // detect over the merged files must show zero duplicate findings.
    let out = bin()
        .args([
            "detect",
            "--users",
            &format!("{}-users.csv", merged.to_str().unwrap()),
            "--perms",
            &format!("{}-perms.csv", merged.to_str().unwrap()),
            "--no-similar",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let line = text
        .lines()
        .find(|l| l.contains("T4 roles sharing the same users"))
        .unwrap();
    assert!(line.trim_end().ends_with(" 0"), "{line}");

    // diff: merged vs original shows removed roles, no access changes.
    let merged_users = format!("{}-users.csv", merged.to_str().unwrap());
    let merged_perms = format!("{}-perms.csv", merged.to_str().unwrap());
    let out = bin()
        .args([
            "diff",
            "--old-users",
            &users,
            "--old-perms",
            &perms,
            "--users",
            &merged_users,
            "--perms",
            &merged_perms,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("users with effective-access changes: 0") || text.contains("no changes"),
        "{text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn access_subcommand_reports_classes() {
    let dir = tmpdir("access");
    let users = dir.join("u.csv");
    let perms = dir.join("p.csv");
    // Two roles, both granting p1 to u1/u2 → one identical-access class.
    std::fs::write(&users, "r1,u1\nr2,u2\n").unwrap();
    std::fs::write(&perms, "r1,p1\nr2,p1\n").unwrap();
    let out = bin()
        .args([
            "access",
            "--users",
            users.to_str().unwrap(),
            "--perms",
            perms.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("identical access: u1, u2"), "{text}");
    assert!(text.contains("1 identical-access classes"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trend_subcommand_accumulates_runs() {
    let dir = tmpdir("trend");
    let users = dir.join("u.csv");
    let perms = dir.join("p.csv");
    std::fs::write(&users, "r1,u1\nr2,u1\n").unwrap();
    std::fs::write(&perms, "r1,p1\nr2,p1\n").unwrap();
    let trend = dir.join("trend.json");
    for label in ["q1", "q2"] {
        let out = bin()
            .args([
                "trend",
                "--users",
                users.to_str().unwrap(),
                "--perms",
                perms.to_str().unwrap(),
                "--trend-file",
                trend.to_str().unwrap(),
                "--label",
                label,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = bin()
        .args([
            "trend",
            "--users",
            users.to_str().unwrap(),
            "--perms",
            perms.to_str().unwrap(),
            "--trend-file",
            trend.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("q1,"), "{text}");
    assert!(text.contains("q2,"), "{text}");
    assert!(text.contains("run-3,"), "{text}");
    assert!(text.contains("delta vs previous run"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn detect_on_figure1_csvs() {
    let dir = tmpdir("figure1");
    let users = dir.join("users.csv");
    let perms = dir.join("perms.csv");
    std::fs::write(
        &users,
        "role,user\nR01,U01\nR02,U02\nR02,U03\nR04,U02\nR04,U03\nR05,U04\n",
    )
    .unwrap();
    std::fs::write(
        &perms,
        "role,permission\nR01,P02\nR01,P03\nR03,P04\nR04,P05\nR04,P06\nR05,P05\nR05,P06\n",
    )
    .unwrap();
    let out = bin()
        .args([
            "detect",
            "--users",
            users.to_str().unwrap(),
            "--perms",
            perms.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // R02=R04 same users, R04=R05 same permissions.
    assert!(text.contains("R02, R04"), "{text}");
    assert!(text.contains("R04, R05"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}
