//! Exact-cover verification for mined role sets.

use std::error::Error;
use std::fmt;

use rolediet_matrix::{BitVec, CsrMatrix, RowMatrix};

use crate::greedy::MinedRole;

/// Why a mined role set fails to reproduce the UPAM.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoverError {
    /// A role grants a user a permission the UPAM does not contain.
    OverGrant {
        /// Offending user index.
        user: usize,
        /// Number of extra permissions granted.
        extra: usize,
    },
    /// A user ends up with fewer permissions than the UPAM row.
    UnderGrant {
        /// Offending user index.
        user: usize,
        /// Number of missing permissions.
        missing: usize,
    },
    /// A role references an out-of-range user or permission.
    OutOfRange {
        /// Index of the offending mined role.
        role: usize,
    },
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::OverGrant { user, extra } => {
                write!(f, "user {user} would gain {extra} extra permission(s)")
            }
            CoverError::UnderGrant { user, missing } => {
                write!(f, "user {user} would lose {missing} permission(s)")
            }
            CoverError::OutOfRange { role } => {
                write!(f, "mined role {role} references an out-of-range index")
            }
        }
    }
}

impl Error for CoverError {}

/// Checks that assigning `roles` reproduces `upam` exactly: every user's
/// union of assigned role permissions equals their UPAM row.
///
/// # Errors
///
/// Returns the first [`CoverError`] found (lowest user index; over-grants
/// reported before under-grants for the same user).
#[allow(clippy::needless_range_loop)] // u indexes two parallel structures
pub fn verify_exact_cover(upam: &CsrMatrix, roles: &[MinedRole]) -> Result<(), CoverError> {
    let (n_users, n_perms) = (upam.rows(), upam.cols());
    let mut granted: Vec<BitVec> = (0..n_users).map(|_| BitVec::new(n_perms)).collect();
    for (ri, role) in roles.iter().enumerate() {
        if role.users.iter().any(|&u| u >= n_users)
            || role.permissions.iter().any(|&p| p >= n_perms)
        {
            return Err(CoverError::OutOfRange { role: ri });
        }
        let perms = BitVec::from_indices(n_perms, &role.permissions).expect("range checked above");
        for &u in &role.users {
            granted[u].union_with(&perms).expect("widths equal");
        }
    }
    for u in 0..n_users {
        let want = upam.row_bitvec(u);
        let have = &granted[u];
        let mut extra = have.clone();
        extra.difference_with(&want).expect("widths equal");
        if !extra.is_zero() {
            return Err(CoverError::OverGrant {
                user: u,
                extra: extra.count_ones(),
            });
        }
        let mut missing = want;
        missing.difference_with(have).expect("widths equal");
        if !missing.is_zero() {
            return Err(CoverError::UnderGrant {
                user: u,
                missing: missing.count_ones(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upam(rows: &[Vec<usize>], cols: usize) -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(rows.len(), cols, rows).unwrap()
    }

    #[test]
    fn exact_cover_passes() {
        let m = upam(&[vec![0, 1], vec![1]], 2);
        let roles = vec![
            MinedRole {
                permissions: vec![0],
                users: vec![0],
            },
            MinedRole {
                permissions: vec![1],
                users: vec![0, 1],
            },
        ];
        verify_exact_cover(&m, &roles).unwrap();
    }

    #[test]
    fn over_grant_detected() {
        let m = upam(&[vec![0]], 2);
        let roles = vec![MinedRole {
            permissions: vec![0, 1],
            users: vec![0],
        }];
        assert_eq!(
            verify_exact_cover(&m, &roles),
            Err(CoverError::OverGrant { user: 0, extra: 1 })
        );
    }

    #[test]
    fn under_grant_detected() {
        let m = upam(&[vec![0, 1]], 2);
        let roles = vec![MinedRole {
            permissions: vec![0],
            users: vec![0],
        }];
        assert_eq!(
            verify_exact_cover(&m, &roles),
            Err(CoverError::UnderGrant {
                user: 0,
                missing: 1
            })
        );
    }

    #[test]
    fn out_of_range_detected() {
        let m = upam(&[vec![0]], 2);
        let bad_user = vec![MinedRole {
            permissions: vec![0],
            users: vec![5],
        }];
        assert_eq!(
            verify_exact_cover(&m, &bad_user),
            Err(CoverError::OutOfRange { role: 0 })
        );
        let bad_perm = vec![MinedRole {
            permissions: vec![9],
            users: vec![0],
        }];
        assert_eq!(
            verify_exact_cover(&m, &bad_perm),
            Err(CoverError::OutOfRange { role: 0 })
        );
    }

    #[test]
    fn empty_roles_cover_empty_upam_only() {
        let empty = upam(&[vec![], vec![]], 2);
        verify_exact_cover(&empty, &[]).unwrap();
        let nonempty = upam(&[vec![0]], 2);
        assert!(verify_exact_cover(&nonempty, &[]).is_err());
    }

    #[test]
    fn error_messages() {
        assert_eq!(
            CoverError::OverGrant { user: 3, extra: 2 }.to_string(),
            "user 3 would gain 2 extra permission(s)"
        );
        assert_eq!(
            CoverError::OutOfRange { role: 1 }.to_string(),
            "mined role 1 references an out-of-range index"
        );
    }
}
