//! Exact-cover verification for mined role sets.
//!
//! The checker is sparse end-to-end: assignments are inverted into
//! per-user role lists with a counting sort, and each user's granted set
//! is the sorted merge of their roles' permission lists, compared
//! against the UPAM row with one intersection count. Peak memory is
//! O(assignments + max per-user grant) — no dense `users × width`
//! matrix, so the oracle runs at the same realorg scale as the lazy
//! cover engine it certifies.

use std::error::Error;
use std::fmt;

use rolediet_matrix::{setops, CsrMatrix, RowMatrix};

use crate::greedy::MinedRole;

/// Why a mined role set fails to reproduce the UPAM.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoverError {
    /// A role grants a user a permission the UPAM does not contain.
    OverGrant {
        /// Offending user index.
        user: usize,
        /// Number of extra permissions granted.
        extra: usize,
    },
    /// A user ends up with fewer permissions than the UPAM row.
    UnderGrant {
        /// Offending user index.
        user: usize,
        /// Number of missing permissions.
        missing: usize,
    },
    /// A role references an out-of-range user or permission.
    OutOfRange {
        /// Index of the offending mined role.
        role: usize,
    },
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::OverGrant { user, extra } => {
                write!(f, "user {user} would gain {extra} extra permission(s)")
            }
            CoverError::UnderGrant { user, missing } => {
                write!(f, "user {user} would lose {missing} permission(s)")
            }
            CoverError::OutOfRange { role } => {
                write!(f, "mined role {role} references an out-of-range index")
            }
        }
    }
}

impl Error for CoverError {}

/// Checks that assigning `roles` reproduces `upam` exactly: every user's
/// union of assigned role permissions equals their UPAM row.
///
/// # Errors
///
/// Returns the first [`CoverError`] found (lowest user index; over-grants
/// reported before under-grants for the same user).
pub fn verify_exact_cover(upam: &CsrMatrix, roles: &[MinedRole]) -> Result<(), CoverError> {
    let (n_users, n_perms) = (upam.rows(), upam.cols());
    // Range checks plus the per-user assignment counts in one pass.
    let mut counts = vec![0usize; n_users + 1];
    for (ri, role) in roles.iter().enumerate() {
        if role.users.iter().any(|&u| u >= n_users)
            || role.permissions.iter().any(|&p| p >= n_perms)
        {
            return Err(CoverError::OutOfRange { role: ri });
        }
        for &u in &role.users {
            counts[u + 1] += 1;
        }
    }
    // Counting sort: user → ids of the roles assigned to them.
    for u in 0..n_users {
        counts[u + 1] += counts[u];
    }
    let mut assigned = vec![0u32; counts[n_users]];
    let mut cursor = counts.clone();
    for (ri, role) in roles.iter().enumerate() {
        for &u in &role.users {
            assigned[cursor[u]] = ri as u32;
            cursor[u] += 1;
        }
    }
    // Per user: the union of assigned role permissions must equal the
    // UPAM row. One reusable scratch vector; over-grants are reported
    // before under-grants for the same user, lowest user first.
    let mut granted: Vec<u32> = Vec::new();
    for (u, span) in counts.windows(2).enumerate() {
        granted.clear();
        for &ri in &assigned[span[0]..span[1]] {
            granted.extend(roles[ri as usize].permissions.iter().map(|&p| p as u32));
        }
        granted.sort_unstable();
        granted.dedup();
        let want = upam.row(u);
        let shared = setops::intersect_count(&granted, want);
        if granted.len() > shared {
            return Err(CoverError::OverGrant {
                user: u,
                extra: granted.len() - shared,
            });
        }
        if want.len() > shared {
            return Err(CoverError::UnderGrant {
                user: u,
                missing: want.len() - shared,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upam(rows: &[Vec<usize>], cols: usize) -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(rows.len(), cols, rows).unwrap()
    }

    #[test]
    fn exact_cover_passes() {
        let m = upam(&[vec![0, 1], vec![1]], 2);
        let roles = vec![
            MinedRole {
                permissions: vec![0],
                users: vec![0],
            },
            MinedRole {
                permissions: vec![1],
                users: vec![0, 1],
            },
        ];
        verify_exact_cover(&m, &roles).unwrap();
    }

    #[test]
    fn over_grant_detected() {
        let m = upam(&[vec![0]], 2);
        let roles = vec![MinedRole {
            permissions: vec![0, 1],
            users: vec![0],
        }];
        assert_eq!(
            verify_exact_cover(&m, &roles),
            Err(CoverError::OverGrant { user: 0, extra: 1 })
        );
    }

    #[test]
    fn under_grant_detected() {
        let m = upam(&[vec![0, 1]], 2);
        let roles = vec![MinedRole {
            permissions: vec![0],
            users: vec![0],
        }];
        assert_eq!(
            verify_exact_cover(&m, &roles),
            Err(CoverError::UnderGrant {
                user: 0,
                missing: 1
            })
        );
    }

    #[test]
    fn out_of_range_detected() {
        let m = upam(&[vec![0]], 2);
        let bad_user = vec![MinedRole {
            permissions: vec![0],
            users: vec![5],
        }];
        assert_eq!(
            verify_exact_cover(&m, &bad_user),
            Err(CoverError::OutOfRange { role: 0 })
        );
        let bad_perm = vec![MinedRole {
            permissions: vec![9],
            users: vec![0],
        }];
        assert_eq!(
            verify_exact_cover(&m, &bad_perm),
            Err(CoverError::OutOfRange { role: 0 })
        );
    }

    #[test]
    fn empty_roles_cover_empty_upam_only() {
        let empty = upam(&[vec![], vec![]], 2);
        verify_exact_cover(&empty, &[]).unwrap();
        let nonempty = upam(&[vec![0]], 2);
        assert!(verify_exact_cover(&nonempty, &[]).is_err());
    }

    #[test]
    fn error_messages() {
        assert_eq!(
            CoverError::OverGrant { user: 3, extra: 2 }.to_string(),
            "user 3 would gain 2 extra permission(s)"
        );
        assert_eq!(
            CoverError::OutOfRange { role: 1 }.to_string(),
            "mined role 1 references an out-of-range index"
        );
    }
}
