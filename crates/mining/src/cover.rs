//! Lazy-greedy (CELF) role-mining cover with delta-maintained gains and
//! sparse coverage state — the organization-scale engine.
//!
//! Greedy set cover maximizes a monotone submodular function, so a
//! candidate's marginal gain can only *shrink* as roles are committed.
//! CELF (lazy greedy) exploits that: cached gains are upper bounds, so a
//! max-heap of cached gains only needs the top entry re-evaluated —
//! when the refreshed top still dominates every (upper-bounded) rival it
//! is the true argmax, and the round ends without touching the rest of
//! the pool. Two refinements make the re-evaluation itself cheap:
//!
//! * **Delta-dirtying** — committing a role can only change the gain of
//!   candidates that overlap the newly covered cells. An inverted
//!   permission→candidate index marks exactly those candidates dirty;
//!   a clean cached gain is *exact*, not just an upper bound, so a clean
//!   heap top is selected with no re-evaluation at all.
//! * **Sparse state** — coverage is kept as sorted per-user index sets
//!   (`O(nnz)` total) walked with [`rolediet_matrix::setops`], never as
//!   dense `users × width` bit rows, so the engine runs at the realorg
//!   scale where the dense oracle's state alone would be gigabytes.
//!
//! Selection order is bit-identical to the eager oracle in
//! [`greedy`](crate::greedy): the heap is keyed `(gain, Reverse(pool
//! index))`, so equal exact gains resolve to the earlier-generated
//! candidate, exactly like the oracle's `>`-only best tracking. The
//! equivalence is proptested across thread counts and configurations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rolediet_matrix::parallel::par_map_rows;
use rolediet_matrix::{setops, CsrMatrix, RowMatrix};
use rolediet_model::ModelError;

use crate::candidates::{generate_candidates_with, CandidatePool};
use crate::greedy::{MinedRole, MiningConfig, MiningResult};

/// Mines a role set that exactly covers `upam` (users × permissions)
/// with the lazy-greedy engine, sequentially.
///
/// Bit-identical to [`mine_eager_cover`](crate::mine_eager_cover) and to
/// [`mine_greedy_cover_with`] at every thread count.
///
/// # Errors
///
/// [`ModelError::CoverStalled`] if the candidate pool cannot cover the
/// matrix — unreachable here because the generated pool contains every
/// distinct user row.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::CsrMatrix;
/// use rolediet_mining::{mine_greedy_cover, MiningConfig};
///
/// // Three users, two of them identical: two roles suffice.
/// let upam = CsrMatrix::from_rows_of_indices(3, 3, &[
///     vec![0, 1], vec![0, 1], vec![2],
/// ]).unwrap();
/// let result = mine_greedy_cover(&upam, &MiningConfig::default()).unwrap();
/// assert_eq!(result.n_roles(), 2);
/// ```
pub fn mine_greedy_cover(
    upam: &CsrMatrix,
    config: &MiningConfig,
) -> Result<MiningResult, ModelError> {
    mine_greedy_cover_with(upam, config, 1)
}

/// Mines a role set that exactly covers `upam` with the lazy-greedy
/// engine, fanning candidate generation and eligibility precompute out
/// on up to `threads` workers.
///
/// The result is bit-identical at every thread count (the cover loop
/// itself is sequential by nature; the parallel phases join in range
/// order).
///
/// # Errors
///
/// [`ModelError::CoverStalled`] — see [`mine_greedy_cover`].
pub fn mine_greedy_cover_with(
    upam: &CsrMatrix,
    config: &MiningConfig,
    threads: usize,
) -> Result<MiningResult, ModelError> {
    let pool = generate_candidates_with(upam, &config.candidates, threads);
    mine_lazy_from_pool(upam, &pool, threads)
}

/// Mines an exact cover of `upam` from an explicit candidate pool with
/// the lazy-greedy engine.
///
/// Peak memory is O(nnz + assignments): sorted-index coverage sets, the
/// per-candidate eligibility lists, and the inverted permission→candidate
/// index — no dense `users × width` allocation anywhere.
///
/// # Errors
///
/// [`ModelError::CoverStalled`] if no positive-gain candidate remains
/// while cells are still uncovered, and [`ModelError::UnknownId`] if the
/// pool's permission width differs from the UPAM's (both possible only
/// for hand-built pools).
pub fn mine_lazy_from_pool(
    upam: &CsrMatrix,
    pool: &CandidatePool,
    threads: usize,
) -> Result<MiningResult, ModelError> {
    check_width(upam, pool)?;
    let threads = threads.max(1);
    let n = pool.len();
    // Inverted UPAM: permission → users holding it, ascending.
    let users_of_perm = upam.transpose_with(threads);
    // eligible[ci] = users whose row contains the candidate (assignment
    // never over-grants). Resolved through the candidate's rarest
    // permission: only that column's users can possibly qualify.
    let mut eligible: Vec<Vec<u32>> = par_map_rows(n, threads, |range| {
        range
            .map(|ci| {
                let set = pool.get(ci);
                let mut probe: Option<(usize, u32)> = None;
                for &p in set {
                    let support = users_of_perm.row_norm(p as usize);
                    if probe.is_none_or(|best| (support, p) < best) {
                        probe = Some((support, p));
                    }
                }
                let Some((_, p)) = probe else {
                    return Vec::new();
                };
                users_of_perm
                    .row(p as usize)
                    .iter()
                    .copied()
                    .filter(|&u| setops::is_subset(set, upam.row(u as usize)))
                    .collect()
            })
            .collect()
    });
    // Inverted pool: permission → candidates containing it (two-pass
    // counting build, candidate ids ascending within each permission).
    let cols = upam.cols();
    let mut perm_indptr = vec![0usize; cols + 1];
    for ci in 0..n {
        for &p in pool.get(ci) {
            perm_indptr[p as usize + 1] += 1;
        }
    }
    for p in 0..cols {
        perm_indptr[p + 1] += perm_indptr[p];
    }
    let mut cands_of_perm = vec![0u32; perm_indptr[cols]];
    let mut cursor = perm_indptr.clone();
    for ci in 0..n {
        for &p in pool.get(ci) {
            cands_of_perm[cursor[p as usize]] = ci as u32;
            cursor[p as usize] += 1;
        }
    }
    // Sparse coverage state: still-uncovered permissions per user.
    let mut uncovered: Vec<Vec<u32>> = (0..upam.rows()).map(|u| upam.row(u).to_vec()).collect();
    let mut remaining: usize = upam.nnz();
    // Cached gains. Initially every eligible user's whole candidate set
    // is uncovered, so the exact gain is |set| × |eligible| — no merges.
    let mut gain: Vec<u64> = (0..n)
        .map(|ci| (pool.get(ci).len() * eligible[ci].len()) as u64)
        .collect();
    let mut dirty: Vec<bool> = vec![false; n];
    let mut dead: Vec<bool> = vec![false; n];
    let mut heap: BinaryHeap<(u64, Reverse<u32>)> = BinaryHeap::with_capacity(n);
    for (ci, &g) in gain.iter().enumerate() {
        if g > 0 {
            heap.push((g, Reverse(ci as u32)));
        } else {
            dead[ci] = true;
        }
    }
    let mut roles = Vec::new();
    while remaining > 0 {
        let Some((g, Reverse(ci))) = heap.pop() else {
            return Err(ModelError::CoverStalled { remaining });
        };
        let ci = ci as usize;
        if dead[ci] || g != gain[ci] {
            continue; // dead, or a stale duplicate of a re-pushed entry
        }
        if dirty[ci] {
            // Re-evaluate: the cached value is only an upper bound.
            let set = pool.get(ci);
            let fresh: u64 = eligible[ci]
                .iter()
                .map(|&u| setops::intersect_count(set, &uncovered[u as usize]) as u64)
                .sum();
            gain[ci] = fresh;
            dirty[ci] = false;
            if fresh > 0 {
                heap.push((fresh, Reverse(ci as u32)));
            } else {
                dead[ci] = true; // gains never grow back
            }
            continue;
        }
        // Clean top: the cached gain is exact and dominates every upper
        // bound below it — this is the eager loop's argmax, ties to the
        // earlier pool index via Reverse ordering.
        dead[ci] = true;
        let set = pool.get(ci);
        let assigned = std::mem::take(&mut eligible[ci]);
        for &u in &assigned {
            remaining -= setops::difference_in_place(&mut uncovered[u as usize], set);
        }
        // Delta maintenance: only candidates sharing a permission with
        // the committed role can have lost gain.
        for &p in set {
            let span = perm_indptr[p as usize]..perm_indptr[p as usize + 1];
            for &cj in &cands_of_perm[span] {
                if !dead[cj as usize] {
                    dirty[cj as usize] = true;
                }
            }
        }
        roles.push(MinedRole {
            permissions: set.iter().map(|&p| p as usize).collect(),
            users: assigned.iter().map(|&u| u as usize).collect(),
        });
    }
    Ok(MiningResult {
        roles,
        candidates_considered: pool.len(),
        cells_covered: upam.nnz(),
    })
}

/// Rejects pools whose permission index space differs from the UPAM's.
pub(crate) fn check_width(upam: &CsrMatrix, pool: &CandidatePool) -> Result<(), ModelError> {
    if pool.cols() == upam.cols() {
        return Ok(());
    }
    Err(ModelError::UnknownId {
        kind: rolediet_model::EntityKind::Permission,
        id: pool.cols() as u32,
        bound: upam.cols() as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::mine_eager_from_pool;
    use crate::verify::verify_exact_cover;

    fn upam(rows: &[Vec<usize>], cols: usize) -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(rows.len(), cols, rows).unwrap()
    }

    #[test]
    fn matches_eager_on_small_shapes() {
        let shapes: &[(&[Vec<usize>], usize)] = &[
            (&[vec![], vec![]], 3),
            (&[vec![0, 2]], 3),
            (&[vec![0, 1, 2], vec![0, 1, 3], vec![0, 1]], 4),
            (&[vec![1, 2], vec![1, 2], vec![1, 2], vec![3]], 4),
            (&[vec![0, 1, 2, 7], vec![0, 1, 3, 7]], 9),
        ];
        for (rows, cols) in shapes {
            let m = upam(rows, *cols);
            let eager = mine_eager_cover_default(&m);
            for threads in [1, 2, 4, 8] {
                let lazy = mine_greedy_cover_with(&m, &MiningConfig::default(), threads).unwrap();
                assert_eq!(lazy, eager, "diverged at {threads} threads on {rows:?}");
            }
            verify_exact_cover(&m, &eager.roles).unwrap();
        }
    }

    fn mine_eager_cover_default(m: &CsrMatrix) -> MiningResult {
        crate::greedy::mine_eager_cover(m, &MiningConfig::default()).unwrap()
    }

    #[test]
    fn cap_exceeding_distinct_rows_no_longer_panic() {
        // Regression (PR 10 satellite): the seed-era generator truncated
        // the whole pool to `max_candidates`, dropping initial rows and
        // driving the greedy loop into its `unreachable!()`. Initial
        // rows are now uncappable, so a cap far below the distinct-row
        // count still mines an exact cover.
        let rows: Vec<Vec<usize>> = (0..8).map(|i| vec![i]).collect();
        let m = upam(&rows, 8);
        let cfg = MiningConfig {
            candidates: crate::CandidateConfig {
                max_candidates: 2,
                ..crate::CandidateConfig::default()
            },
        };
        let r = mine_greedy_cover(&m, &cfg).unwrap();
        verify_exact_cover(&m, &r.roles).unwrap();
        assert_eq!(r.n_roles(), 8);
    }

    #[test]
    fn stalls_with_typed_error_on_insufficient_pool() {
        let m = upam(&[vec![0, 1], vec![1]], 2);
        let pool = CandidatePool::from_sets(2, vec![vec![1]]).unwrap();
        let err = mine_lazy_from_pool(&m, &pool, 1).unwrap_err();
        assert!(matches!(err, ModelError::CoverStalled { remaining: 1 }));
    }

    #[test]
    fn lazy_equals_eager_on_explicit_pools() {
        let m = upam(&[vec![0, 1, 2], vec![0, 1], vec![2, 3]], 4);
        let pool = CandidatePool::from_sets(
            4,
            vec![vec![0, 1, 2], vec![0, 1], vec![2, 3], vec![2], vec![3]],
        )
        .unwrap();
        let eager = mine_eager_from_pool(&m, &pool).unwrap();
        let lazy = mine_lazy_from_pool(&m, &pool, 2).unwrap();
        assert_eq!(eager, lazy);
        verify_exact_cover(&m, &eager.roles).unwrap();
    }
}
