//! The eager greedy cover — the bit-identity oracle for the lazy engine.
//!
//! Given the UPAM and a candidate pool, repeatedly pick the candidate
//! role that covers the most still-uncovered user–permission cells,
//! assign it to every user whose permission set contains it, and repeat
//! until every cell is covered. Because the generated candidate pool
//! always contains every distinct user row, the loop terminates with an
//! *exact* cover: mined roles grant exactly the permissions users
//! already had — never more (assignment requires containment) and never
//! less (coverage is run to completion).
//!
//! This is the standard baseline heuristic for the (NP-hard) Role
//! Minimization Problem; greedy set cover gives the classic `ln n`
//! approximation guarantee. The implementation here is deliberately the
//! seed-era one — dense per-user `BitVec` state and a full rescan of
//! every live candidate's gain each round, O(rounds × candidates × users
//! × width) — kept as the oracle the scalable engine in
//! [`cover`](crate::cover) is proptested bit-identical against, and as
//! the baseline the `mining_eager_baseline` bench row measures.
//!
//! Note that greedy optimizes *covered cells per step*, not the final
//! role count: factoring out a large shared intersection can leave
//! per-user residues that each need their own role, occasionally
//! exceeding the trivial one-role-per-distinct-profile cover (pinned in
//! the `greedy_can_exceed_distinct_profiles` test).

use serde::{Deserialize, Serialize};

use rolediet_matrix::{BitVec, CsrMatrix, RowMatrix};
use rolediet_model::ModelError;

use crate::candidates::{generate_candidates, CandidateConfig, CandidatePool};

/// One mined role: a permission set and the users it is assigned to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinedRole {
    /// Permission indices granted by the role, ascending.
    pub permissions: Vec<usize>,
    /// User indices assigned the role, ascending.
    pub users: Vec<usize>,
}

/// Mining configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MiningConfig {
    /// Candidate generation settings.
    pub candidates: CandidateConfig,
}

/// The outcome of a mining run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiningResult {
    /// The mined roles, in selection order (best coverage first).
    pub roles: Vec<MinedRole>,
    /// Number of candidates considered.
    pub candidates_considered: usize,
    /// Total user–permission cells covered (the UPAM's nnz).
    pub cells_covered: usize,
}

impl MiningResult {
    /// Number of mined roles.
    pub fn n_roles(&self) -> usize {
        self.roles.len()
    }

    /// Total user–role assignments in the mined model.
    pub fn n_assignments(&self) -> usize {
        self.roles.iter().map(|r| r.users.len()).sum()
    }
}

/// Mines an exact cover of `upam` with the eager full-rescan loop (the
/// oracle; use [`mine_greedy_cover`](crate::mine_greedy_cover) for the
/// scalable engine — both return bit-identical results).
///
/// # Errors
///
/// [`ModelError::CoverStalled`] if the candidate pool cannot cover the
/// matrix — unreachable with a generated pool, which always contains
/// every distinct user row.
pub fn mine_eager_cover(
    upam: &CsrMatrix,
    config: &MiningConfig,
) -> Result<MiningResult, ModelError> {
    let pool = generate_candidates(upam, &config.candidates);
    mine_eager_from_pool(upam, &pool)
}

/// Mines an exact cover of `upam` from an explicit candidate pool with
/// the eager full-rescan loop.
///
/// Deterministic: ties in coverage gain break toward the
/// earlier-generated candidate (pool order: larger sets first).
///
/// # Errors
///
/// [`ModelError::CoverStalled`] if no positive-gain candidate remains
/// while cells are still uncovered, and [`ModelError::UnknownId`] if the
/// pool's permission width differs from the UPAM's (both possible only
/// for hand-built pools).
pub fn mine_eager_from_pool(
    upam: &CsrMatrix,
    pool: &CandidatePool,
) -> Result<MiningResult, ModelError> {
    crate::cover::check_width(upam, pool)?;
    let n_users = upam.rows();
    let candidates: Vec<BitVec> = pool
        .sets()
        .iter()
        .map(|set| {
            // Pool indices are validated `< cols` by `CandidatePool`.
            let mut bv = BitVec::new(pool.cols());
            for &p in set {
                bv.set(p as usize, true);
            }
            bv
        })
        .collect();
    let user_rows: Vec<BitVec> = (0..n_users).map(|u| upam.row_bitvec(u)).collect();
    // uncovered[u] = cells of user u not yet granted by a mined role.
    let mut uncovered: Vec<BitVec> = user_rows.clone();
    let mut remaining: usize = upam.nnz();
    let mut roles = Vec::new();
    // For each candidate, precompute the users that can take it
    // (containment): assignment never over-grants.
    let eligible: Vec<Vec<usize>> = candidates
        .iter()
        .map(|cand| {
            (0..n_users)
                .filter(|&u| {
                    cand.is_subset_of(&user_rows[u])
                        .expect("candidate width matches UPAM")
                })
                .collect()
        })
        .collect();
    let mut alive: Vec<bool> = vec![true; candidates.len()];
    while remaining > 0 {
        // Pick the candidate with the largest uncovered-cell gain.
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (ci, cand) in candidates.iter().enumerate() {
            if !alive[ci] {
                continue;
            }
            let mut gain = 0usize;
            for &u in &eligible[ci] {
                gain += cand
                    .intersection_count(&uncovered[u])
                    .expect("width matches");
            }
            if gain == 0 {
                alive[ci] = false;
                continue;
            }
            if best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, ci));
            }
        }
        let Some((_, ci)) = best else {
            return Err(ModelError::CoverStalled { remaining });
        };
        let cand = &candidates[ci];
        let mut assigned_users = Vec::new();
        for &u in &eligible[ci] {
            let before = uncovered[u].count_ones();
            uncovered[u].difference_with(cand).expect("width matches");
            let after = uncovered[u].count_ones();
            remaining -= before - after;
            assigned_users.push(u);
        }
        alive[ci] = false;
        roles.push(MinedRole {
            permissions: cand.to_indices(),
            users: assigned_users,
        });
    }
    Ok(MiningResult {
        roles,
        candidates_considered: pool.len(),
        cells_covered: upam.nnz(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::mine_greedy_cover;
    use crate::verify::verify_exact_cover;

    fn upam(rows: &[Vec<usize>], cols: usize) -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(rows.len(), cols, rows).unwrap()
    }

    #[test]
    fn trivial_cases() {
        // Empty UPAM → no roles.
        let m = upam(&[vec![], vec![]], 3);
        let r = mine_eager_cover(&m, &MiningConfig::default()).unwrap();
        assert_eq!(r.n_roles(), 0);
        assert_eq!(r.cells_covered, 0);
        // One user → one role.
        let m = upam(&[vec![0, 2]], 3);
        let r = mine_eager_cover(&m, &MiningConfig::default()).unwrap();
        assert_eq!(r.n_roles(), 1);
        assert_eq!(r.roles[0].permissions, vec![0, 2]);
        assert_eq!(r.roles[0].users, vec![0]);
    }

    #[test]
    fn shared_core_is_factored_out() {
        // Users: {0,1,2}, {0,1,3}, {0,1} — greedy picks {0,1} (gain 6),
        // then the two leftovers; or the full rows first. Either way the
        // cover is exact; with the shared core the count is 3.
        let m = upam(&[vec![0, 1, 2], vec![0, 1, 3], vec![0, 1]], 4);
        let r = mine_eager_cover(&m, &MiningConfig::default()).unwrap();
        verify_exact_cover(&m, &r.roles).unwrap();
        assert!(r.n_roles() <= 3);
        assert!(r
            .roles
            .iter()
            .any(|role| role.permissions == vec![0, 1] && role.users == vec![0, 1, 2]));
    }

    #[test]
    fn duplicate_users_share_one_role() {
        let m = upam(&[vec![1, 2], vec![1, 2], vec![1, 2], vec![3]], 4);
        let r = mine_eager_cover(&m, &MiningConfig::default()).unwrap();
        verify_exact_cover(&m, &r.roles).unwrap();
        assert_eq!(r.n_roles(), 2);
        assert_eq!(r.roles[0].users, vec![0, 1, 2]);
    }

    #[test]
    fn cover_is_exact_on_figure1_upam() {
        let g = rolediet_model::TripartiteGraph::figure1_example();
        let m = g.upam_sparse();
        let r = mine_eager_cover(&m, &MiningConfig::default()).unwrap();
        verify_exact_cover(&m, &r.roles).unwrap();
        // Figure 1 has 3 distinct non-empty access profiles
        // (U01: {P02,P03}, U02=U03=U04: {P05,P06}) → 2 roles.
        assert_eq!(r.n_roles(), 2);
    }

    #[test]
    fn deterministic_and_matches_lazy_engine() {
        let g = rolediet_model::TripartiteGraph::figure1_example();
        let m = g.upam_sparse();
        let a = mine_eager_cover(&m, &MiningConfig::default()).unwrap();
        let b = mine_eager_cover(&m, &MiningConfig::default()).unwrap();
        assert_eq!(a, b);
        let lazy = mine_greedy_cover(&m, &MiningConfig::default()).unwrap();
        assert_eq!(a, lazy);
    }

    #[test]
    fn stalls_with_typed_error_on_insufficient_pool() {
        let m = upam(&[vec![0, 1]], 2);
        // A pool that can only ever cover cell 0.
        let pool = CandidatePool::from_sets(2, vec![vec![0]]).unwrap();
        let err = mine_eager_from_pool(&m, &pool).unwrap_err();
        assert!(matches!(err, ModelError::CoverStalled { remaining: 1 }));
        // An empty pool can cover nothing at all.
        let empty = CandidatePool::from_sets(2, vec![]).unwrap();
        let err = mine_eager_from_pool(&m, &empty).unwrap_err();
        assert!(matches!(err, ModelError::CoverStalled { remaining: 2 }));
    }

    #[test]
    fn mined_model_never_over_grants_on_random_input() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for trial in 0..10 {
            let rows: Vec<Vec<usize>> = (0..30)
                .map(|_| (0..20).filter(|_| rng.gen_bool(0.25)).collect())
                .collect();
            let m = upam(&rows, 20);
            let r = mine_eager_cover(&m, &MiningConfig::default()).unwrap();
            verify_exact_cover(&m, &r.roles).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            assert_eq!(r.cells_covered, m.nnz());
        }
    }

    #[test]
    fn mining_compresses_an_organization_scale_upam() {
        let org = rolediet_synth::generate_org(rolediet_synth::profiles::small_org(2));
        let m = org.graph.upam_sparse();
        let r = mine_eager_cover(&m, &MiningConfig::default()).unwrap();
        verify_exact_cover(&m, &r.roles).unwrap();
        // On organization-shaped data (users clustered by department),
        // shared cores dominate and greedy compresses well below the
        // user count. (Greedy is not *guaranteed* below the distinct-
        // profile count — see greedy_can_exceed_distinct_profiles — but
        // on this seeded dataset it lands far under it.)
        assert!(
            r.n_roles() * 2 < m.rows(),
            "{} roles for {} users",
            r.n_roles(),
            m.rows()
        );
    }
}
