//! Bottom-up role mining: the organization-scale "regenerate" backend.
//!
//! The paper's related work (Section II) contrasts two philosophies for
//! fixing role bloat: *role mining* — throw the existing roles away and
//! regenerate a role set from the user–permission assignments (Vaidya et
//! al.'s RoleMiner, Molloy et al., Tripunitara's biclique formulation) —
//! and the paper's own *refinement* approach, which only combines
//! existing roles. Following D'Antoni et al., the paper claims refining
//! is better (or at least as effective) than regenerating.
//!
//! This crate implements the regeneration side so the claim can be
//! measured instead of cited — at the same realorg scale the rest of the
//! system reaches:
//!
//! * [`candidates`] — biclique-flavored candidate generation: every
//!   distinct user permission-set ("initial roles", never capped — they
//!   guarantee an exact cover exists) plus shared-core intersections of
//!   co-occurring rows enumerated through the inverted permission→row
//!   index, fanned out on the parallel substrate and bit-identical at
//!   every thread count.
//! * [`cover`] — the lazy-greedy (CELF) cover engine: a max-heap of
//!   cached gain upper bounds (valid because greedy set cover is
//!   submodular, so gains only shrink), delta-dirtying through an
//!   inverted permission→candidate index, and sorted-index coverage
//!   state in O(nnz) memory. This is the production path
//!   ([`mine_greedy_cover`] / [`mine_greedy_cover_with`]).
//! * [`greedy`] — the seed-era eager loop (dense state, full rescan per
//!   round), kept as the bit-identity oracle the lazy engine is
//!   proptested against and as the benchmark baseline.
//! * [`verify`] — sparse exact-cover checking: mined roles must
//!   reproduce every user's effective permissions bit-for-bit, never
//!   over-granting (the same safety bar the diet's consolidation is held
//!   to).
//!
//! The `mining_vs_diet` example and `repro mining` compare the mined role
//! count against the diet's consolidated count on the same (optionally
//! churned) organizations.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod candidates;
pub mod cover;
pub mod greedy;
pub mod verify;

pub use candidates::{
    generate_candidates, generate_candidates_with, CandidateConfig, CandidatePool,
};
pub use cover::{mine_greedy_cover, mine_greedy_cover_with, mine_lazy_from_pool};
pub use greedy::{mine_eager_cover, mine_eager_from_pool, MinedRole, MiningConfig, MiningResult};
pub use verify::{verify_exact_cover, CoverError};
