//! Bottom-up role mining baselines.
//!
//! The paper's related work (Section II) contrasts two philosophies for
//! fixing role bloat: *role mining* — throw the existing roles away and
//! regenerate a role set from the user–permission assignments (Vaidya et
//! al.'s RoleMiner, Molloy et al., Tripunitara's biclique formulation) —
//! and the paper's own *refinement* approach, which only combines
//! existing roles. Following D'Antoni et al., the paper claims refining
//! is better (or at least as effective) than regenerating.
//!
//! This crate implements the regeneration side so the claim can be
//! measured instead of cited:
//!
//! * [`candidates`] — RoleMiner-style candidate role generation: the
//!   distinct user permission-sets ("initial roles") closed under
//!   pairwise intersection, with a configurable cap.
//! * [`greedy`] — the classic greedy heuristic for the Role Minimization
//!   Problem (basic RMP): repeatedly pick the candidate covering the most
//!   still-uncovered user–permission cells, until the UPAM is exactly
//!   covered.
//! * [`verify`] — exact-cover checking: mined roles must reproduce every
//!   user's effective permissions bit-for-bit, never over-granting (the
//!   same safety bar the diet's consolidation is held to).
//!
//! The `mining_vs_diet` example and `repro mining` compare the mined role
//! count against the diet's consolidated count on the same organizations.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod candidates;
pub mod greedy;
pub mod verify;

pub use candidates::{generate_candidates, CandidateConfig};
pub use greedy::{mine_greedy_cover, MinedRole, MiningConfig, MiningResult};
pub use verify::{verify_exact_cover, CoverError};
