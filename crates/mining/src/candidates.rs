//! Candidate role generation (RoleMiner's `GenerateRoles` idea).
//!
//! Candidates are permission sets that could become roles:
//!
//! 1. every *distinct* user permission-set (the "initial roles" — these
//!    alone already guarantee an exact cover exists);
//! 2. pairwise intersections of initial roles (the sets of permissions
//!    shared by user groups — where the compression comes from), applied
//!    repeatedly up to a closure bound.
//!
//! The candidate pool is deduplicated, empty sets are dropped, and the
//! pool is capped (intersection closure can explode combinatorially; the
//! cap keeps mining polynomial, trading optimality like every practical
//! role miner does).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use rolediet_matrix::{BitVec, CsrMatrix, RowMatrix};

/// Candidate generation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateConfig {
    /// Maximum number of candidate permission-sets kept.
    pub max_candidates: usize,
    /// Number of intersection-closure rounds over the initial roles
    /// (1 = pairwise intersections of initial roles only).
    pub closure_rounds: usize,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            max_candidates: 10_000,
            closure_rounds: 1,
        }
    }
}

/// Generates candidate permission sets from a UPAM (users × permissions).
///
/// The result always contains every distinct non-empty user row (so an
/// exact cover is always constructible), ordered largest-first, then by
/// bit pattern for determinism.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::CsrMatrix;
/// use rolediet_mining::{generate_candidates, CandidateConfig};
///
/// // Two users share {0,1}; a third has {0,1,2}.
/// let upam = CsrMatrix::from_rows_of_indices(3, 3, &[
///     vec![0, 1], vec![0, 1], vec![0, 1, 2],
/// ]).unwrap();
/// let cands = generate_candidates(&upam, &CandidateConfig::default());
/// // {0,1,2}, {0,1} — the intersection adds nothing new here.
/// assert_eq!(cands.len(), 2);
/// ```
pub fn generate_candidates(upam: &CsrMatrix, config: &CandidateConfig) -> Vec<BitVec> {
    let cols = upam.cols();
    let mut seen: HashSet<BitVec> = HashSet::new();
    let mut initial: Vec<BitVec> = Vec::new();
    for u in 0..upam.rows() {
        if upam.row_norm(u) == 0 {
            continue;
        }
        let row = upam.row_bitvec(u);
        if seen.insert(row.clone()) {
            initial.push(row);
        }
    }
    let mut pool = initial.clone();
    let mut frontier = initial.clone();
    for _ in 0..config.closure_rounds {
        if pool.len() >= config.max_candidates {
            break;
        }
        let mut next = Vec::new();
        'outer: for (i, a) in frontier.iter().enumerate() {
            for b in initial.iter().skip(i + 1) {
                let mut inter = a.clone();
                inter
                    .intersect_with(b)
                    .expect("candidates share the UPAM width");
                if inter.is_zero() {
                    continue;
                }
                if seen.insert(inter.clone()) {
                    next.push(inter);
                    if seen.len() >= config.max_candidates {
                        break 'outer;
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        pool.extend(next.iter().cloned());
        frontier = next;
    }
    pool.truncate(config.max_candidates);
    // Deterministic order: larger sets first (better greedy seeds), ties
    // by bit pattern.
    pool.sort_by(|a, b| {
        b.count_ones()
            .cmp(&a.count_ones())
            .then_with(|| a.as_words().cmp(b.as_words()))
    });
    debug_assert!(pool.iter().all(|c| c.len() == cols));
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upam(rows: &[Vec<usize>], cols: usize) -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(rows.len(), cols, rows).unwrap()
    }

    #[test]
    fn initial_roles_are_distinct_user_rows() {
        let m = upam(&[vec![0, 1], vec![0, 1], vec![2], vec![]], 3);
        let cands = generate_candidates(&m, &CandidateConfig::default());
        // {0,1} and {2}; empty row dropped; duplicates merged; the
        // intersection {0,1}∩{2} is empty and dropped.
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].to_indices(), vec![0, 1]);
        assert_eq!(cands[1].to_indices(), vec![2]);
    }

    #[test]
    fn intersections_surface_shared_subsets() {
        // Users: {0,1,2}, {0,1,3} — intersection {0,1} is the shared
        // "real role" no single user exposes.
        let m = upam(&[vec![0, 1, 2], vec![0, 1, 3]], 4);
        let cands = generate_candidates(&m, &CandidateConfig::default());
        assert!(cands.iter().any(|c| c.to_indices() == vec![0, 1]));
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn closure_rounds_deepen_the_pool() {
        // Three users whose pairwise intersections differ from the triple
        // intersection: rounds=1 finds pairwise; rounds=2 also finds the
        // intersection of an intersection with the third row.
        let m = upam(&[vec![0, 1, 2], vec![0, 1, 3], vec![0, 2, 3]], 4);
        let one = generate_candidates(
            &m,
            &CandidateConfig {
                closure_rounds: 1,
                ..CandidateConfig::default()
            },
        );
        let two = generate_candidates(
            &m,
            &CandidateConfig {
                closure_rounds: 2,
                ..CandidateConfig::default()
            },
        );
        assert!(two.len() >= one.len());
        assert!(two.iter().any(|c| c.to_indices() == vec![0]));
    }

    #[test]
    fn cap_is_respected() {
        let rows: Vec<Vec<usize>> = (0..12)
            .map(|i| (0..12).filter(|j| (i + j) % 3 != 0).collect())
            .collect();
        let m = upam(&rows, 12);
        let cands = generate_candidates(
            &m,
            &CandidateConfig {
                max_candidates: 5,
                closure_rounds: 3,
            },
        );
        assert!(cands.len() <= 5);
    }

    #[test]
    fn deterministic_and_sorted_largest_first() {
        let m = upam(&[vec![0], vec![1, 2], vec![1, 2, 3]], 4);
        let a = generate_candidates(&m, &CandidateConfig::default());
        let b = generate_candidates(&m, &CandidateConfig::default());
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].count_ones() >= w[1].count_ones());
        }
    }

    #[test]
    fn empty_upam_yields_no_candidates() {
        let m = upam(&[vec![], vec![]], 3);
        assert!(generate_candidates(&m, &CandidateConfig::default()).is_empty());
    }
}
