//! Candidate role generation (RoleMiner's `GenerateRoles` idea,
//! biclique-flavored).
//!
//! Candidates are permission sets that could become roles:
//!
//! 1. every *distinct* non-empty user permission-set (the "initial
//!    roles") — these alone already guarantee an exact cover exists, so
//!    they are **never capped**;
//! 2. *shared cores*: intersections of distinct rows that co-occur on a
//!    permission, enumerated through the inverted permission→row index
//!    the way maximal-biclique miners walk the bipartite graph. For each
//!    distinct row the probe column is its rarest permission shared with
//!    at least one other row, which bounds the pairing work by that
//!    column's support instead of the quadratic all-pairs closure the
//!    seed implementation used.
//!
//! The shared-core pool is deduplicated, restricted to proper subsets of
//! at least [`CandidateConfig::min_shared`] permissions, and capped at
//! [`CandidateConfig::max_candidates`] (largest first) — the cap keeps
//! mining polynomial, trading optimality like every practical role miner
//! does, but can no longer starve the cover of the initial rows it needs
//! to terminate.
//!
//! Enumeration fans out over [`rolediet_matrix::parallel`] and is
//! bit-identical at every thread count: workers emit per-row candidate
//! lists that are joined in row order, and the final pool order is a
//! pure function of the set contents (larger sets first, ties by
//! lexicographic index order).

use serde::{Deserialize, Serialize};

use rolediet_matrix::parallel::par_map_rows;
use rolediet_matrix::{setops, CsrMatrix, RowMatrix};
use rolediet_model::{EntityKind, ModelError};

/// Candidate generation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateConfig {
    /// Maximum number of *shared-core* (derived) candidates kept. The
    /// distinct user rows are exempt: they are what makes an exact cover
    /// always constructible, so capping them would break termination.
    pub max_candidates: usize,
    /// Minimum size of a derived shared-core candidate (initial rows are
    /// exempt). Values below 1 are treated as 1.
    pub min_shared: usize,
    /// Maximum co-occurring rows probed per distinct row during
    /// shared-core enumeration (the first `probe_limit` rows of the
    /// probe column, in row order — deterministic). Bounds the worst
    /// case on columns with huge support.
    pub probe_limit: usize,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            max_candidates: 10_000,
            min_shared: 2,
            probe_limit: 128,
        }
    }
}

/// A generated candidate pool: sorted permission-index sets in the
/// canonical mining order (larger sets first, ties lexicographic).
///
/// The pool always contains every distinct non-empty user row of the
/// UPAM it was generated from ([`CandidatePool::n_initial`] of them), so
/// the greedy cover always terminates; derived shared cores follow under
/// the configured cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidatePool {
    cols: usize,
    sets: Vec<Vec<u32>>,
    n_initial: usize,
}

impl CandidatePool {
    /// Builds a pool from hand-picked permission sets (for tests and
    /// ablations; [`generate_candidates`] is the production path).
    ///
    /// Sets are sorted, deduplicated (within and across sets), stripped
    /// of empties, and put in the canonical pool order. All sets count
    /// as derived (`n_initial` = 0): a hand-built pool carries no
    /// termination guarantee, and the cover engines surface that as
    /// [`ModelError::CoverStalled`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownId`] if a set references a permission index
    /// `>= cols`.
    pub fn from_sets(cols: usize, sets: Vec<Vec<u32>>) -> Result<CandidatePool, ModelError> {
        let mut canon: Vec<Vec<u32>> = Vec::with_capacity(sets.len());
        for mut set in sets {
            set.sort_unstable();
            set.dedup();
            if let Some(&max) = set.last() {
                if max as usize >= cols {
                    return Err(ModelError::UnknownId {
                        kind: EntityKind::Permission,
                        id: max,
                        bound: cols as u32,
                    });
                }
                canon.push(set);
            }
        }
        canon.sort_unstable();
        canon.dedup();
        sort_pool(&mut canon);
        Ok(CandidatePool {
            cols,
            sets: canon,
            n_initial: 0,
        })
    }

    /// Number of candidate sets in the pool.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Permission-index width the sets are drawn from.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// How many pool members are distinct user rows (the uncappable
    /// cover-guaranteeing subset).
    pub fn n_initial(&self) -> usize {
        self.n_initial
    }

    /// All candidate sets in pool order.
    pub fn sets(&self) -> &[Vec<u32>] {
        &self.sets
    }

    /// One candidate's sorted permission indices.
    pub fn get(&self, i: usize) -> &[u32] {
        &self.sets[i]
    }
}

/// Canonical pool order: larger sets first (better greedy seeds), ties
/// by lexicographic index order. A pure function of the set contents,
/// so the order is identical however the sets were produced.
fn sort_pool(sets: &mut [Vec<u32>]) {
    sets.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
}

/// Generates candidate permission sets from a UPAM (users ×
/// permissions), sequentially. See [`generate_candidates_with`].
///
/// # Examples
///
/// ```
/// use rolediet_matrix::CsrMatrix;
/// use rolediet_mining::{generate_candidates, CandidateConfig};
///
/// // Two users share {0,1}; a third has {0,1,2}.
/// let upam = CsrMatrix::from_rows_of_indices(3, 3, &[
///     vec![0, 1], vec![0, 1], vec![0, 1, 2],
/// ]).unwrap();
/// let pool = generate_candidates(&upam, &CandidateConfig::default());
/// // {0,1,2} and {0,1} — the shared core {0,1} is already a user row.
/// assert_eq!(pool.len(), 2);
/// assert_eq!(pool.get(0), &[0, 1, 2]);
/// assert_eq!(pool.get(1), &[0, 1]);
/// ```
pub fn generate_candidates(upam: &CsrMatrix, config: &CandidateConfig) -> CandidatePool {
    generate_candidates_with(upam, config, 1)
}

/// Generates candidate permission sets from a UPAM on up to `threads`
/// workers.
///
/// The result is bit-identical at every thread count: per-row shared
/// cores are joined in row order and the pool order is content-defined.
/// The pool always contains every distinct non-empty user row (exempt
/// from [`CandidateConfig::max_candidates`]); shared cores are
/// intersections of co-occurring distinct rows probed through the
/// inverted permission→row index.
pub fn generate_candidates_with(
    upam: &CsrMatrix,
    config: &CandidateConfig,
    threads: usize,
) -> CandidatePool {
    let cols = upam.cols();
    let threads = threads.max(1);
    // Distinct non-empty user rows, deduplicated by content.
    let mut rows: Vec<&[u32]> = (0..upam.rows())
        .map(|u| upam.row(u))
        .filter(|r| !r.is_empty())
        .collect();
    rows.sort_unstable();
    rows.dedup();
    let d = rows.len();
    // The distinct-row matrix and its inverted index (permission →
    // distinct rows that contain it).
    let distinct = CsrMatrix::from_row_iter_two_pass(d, cols, threads, |i| rows[i].iter().copied());
    let inverted = distinct.transpose_with(threads);
    let min_shared = config.min_shared.max(1);
    // Shared-core enumeration, one distinct row per work item.
    let per_row: Vec<Vec<Vec<u32>>> = par_map_rows(d, threads, |range| {
        range
            .map(|i| {
                let ri = distinct.row(i);
                // Probe column: the rarest permission of this row that at
                // least one *other* row shares (support >= 2). Rows whose
                // every permission is private share no core with anyone.
                let mut probe: Option<(usize, u32)> = None;
                for &p in ri {
                    let support = inverted.row_norm(p as usize);
                    if support >= 2 && probe.is_none_or(|best| (support, p) < best) {
                        probe = Some((support, p));
                    }
                }
                let Some((_, p)) = probe else {
                    return Vec::new();
                };
                let mut cores: Vec<Vec<u32>> = Vec::new();
                for &j in inverted.row(p as usize).iter().take(config.probe_limit) {
                    if j as usize == i {
                        continue;
                    }
                    let core = setops::intersect(ri, distinct.row(j as usize));
                    // Proper subsets only: a core equal to the row itself
                    // is already an initial candidate.
                    if core.len() >= min_shared && core.len() < ri.len() {
                        cores.push(core);
                    }
                }
                cores.sort_unstable();
                cores.dedup();
                cores
            })
            .collect()
    });
    let mut derived: Vec<Vec<u32>> = per_row.into_iter().flatten().collect();
    derived.sort_unstable();
    derived.dedup();
    // A shared core can coincide with some *other* initial row; keep the
    // pool duplicate-free (initial rows win — they are uncapped).
    derived.retain(|c| rows.binary_search_by(|r| (*r).cmp(c.as_slice())).is_err());
    // The cap applies to derived candidates only, largest first.
    sort_pool(&mut derived);
    derived.truncate(config.max_candidates);
    let mut sets: Vec<Vec<u32>> = rows.iter().map(|r| r.to_vec()).collect();
    sets.extend(derived);
    sort_pool(&mut sets);
    CandidatePool {
        cols,
        sets,
        n_initial: d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upam(rows: &[Vec<usize>], cols: usize) -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(rows.len(), cols, rows).unwrap()
    }

    #[test]
    fn initial_roles_are_distinct_user_rows() {
        let m = upam(&[vec![0, 1], vec![0, 1], vec![2], vec![]], 3);
        let pool = generate_candidates(&m, &CandidateConfig::default());
        // {0,1} and {2}; empty row dropped; duplicates merged; the rows
        // share no permission so no cores are derived.
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.n_initial(), 2);
        assert_eq!(pool.get(0), &[0, 1]);
        assert_eq!(pool.get(1), &[2]);
    }

    #[test]
    fn shared_cores_surface_shared_subsets() {
        // Users: {0,1,2}, {0,1,3} — the shared core {0,1} is the "real
        // role" no single user exposes.
        let m = upam(&[vec![0, 1, 2], vec![0, 1, 3]], 4);
        let pool = generate_candidates(&m, &CandidateConfig::default());
        assert!(pool.sets().iter().any(|c| c == &[0, 1]));
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.n_initial(), 2);
    }

    #[test]
    fn min_shared_prunes_small_cores() {
        let m = upam(&[vec![0, 1, 2], vec![0, 1, 3], vec![0, 4, 5]], 6);
        let loose = generate_candidates(
            &m,
            &CandidateConfig {
                min_shared: 1,
                ..CandidateConfig::default()
            },
        );
        // {0} is the (singleton) core shared by all three rows.
        assert!(loose.sets().iter().any(|c| c == &[0]));
        let strict = generate_candidates(&m, &CandidateConfig::default());
        assert!(strict.sets().iter().all(|c| c.len() >= 2));
    }

    #[test]
    fn cap_never_drops_initial_rows() {
        // 12 distinct rows with a cap of 5: every row must survive; only
        // derived shared cores (here {0,1} and its extensions) are capped.
        let rows: Vec<Vec<usize>> = (0..12).map(|i| vec![0, 1, i + 2]).collect();
        let m = upam(&rows, 14);
        let pool = generate_candidates(
            &m,
            &CandidateConfig {
                max_candidates: 5,
                ..CandidateConfig::default()
            },
        );
        assert_eq!(pool.n_initial(), 12);
        assert!(pool.len() >= 12);
        assert!(pool.len() <= 12 + 5);
        for row in &rows {
            let want: Vec<u32> = row.iter().map(|&p| p as u32).collect();
            assert!(pool.sets().iter().any(|c| c == &want));
        }
    }

    #[test]
    fn deterministic_and_sorted_largest_first_at_every_thread_count() {
        let m = upam(&[vec![0], vec![1, 2], vec![1, 2, 3], vec![1, 3]], 4);
        let reference = generate_candidates(&m, &CandidateConfig::default());
        for threads in [1, 2, 4, 8] {
            let pool = generate_candidates_with(&m, &CandidateConfig::default(), threads);
            assert_eq!(pool, reference, "pool diverged at {threads} threads");
        }
        for w in reference.sets().windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn empty_upam_yields_no_candidates() {
        let m = upam(&[vec![], vec![]], 3);
        assert!(generate_candidates(&m, &CandidateConfig::default()).is_empty());
    }

    #[test]
    fn from_sets_canonicalizes_and_validates() {
        let pool =
            CandidatePool::from_sets(5, vec![vec![3, 1, 1], vec![], vec![4], vec![1, 3]]).unwrap();
        assert_eq!(pool.sets(), &[vec![1, 3], vec![4]]);
        assert_eq!(pool.n_initial(), 0);
        let err = CandidatePool::from_sets(3, vec![vec![0, 7]]).unwrap_err();
        assert!(matches!(
            err,
            ModelError::UnknownId {
                kind: EntityKind::Permission,
                id: 7,
                bound: 3,
            }
        ));
    }
}
