//! Property tests for the mining engines: the lazy-greedy (CELF) cover
//! must be bit-identical to the eager oracle at every thread count and
//! configuration, covers must be exact on arbitrary UPAMs, candidates
//! must be sound, and cap-exceeding pools must mine without panicking.

use proptest::collection::vec;
use proptest::prelude::*;

use rolediet_matrix::{CsrMatrix, RowMatrix};
use rolediet_mining::{
    generate_candidates, generate_candidates_with, mine_eager_cover, mine_greedy_cover,
    mine_greedy_cover_with, verify_exact_cover, CandidateConfig, MiningConfig,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn upam_inputs() -> impl Strategy<Value = (usize, usize, Vec<Vec<usize>>)> {
    (1usize..16, 1usize..14).prop_flat_map(|(users, perms)| {
        vec(vec(0..perms, 0..=6), users).prop_map(move |data| (users, perms, data))
    })
}

/// Mining configurations the equivalence is pinned across: the default,
/// a loose pool (singleton cores allowed), and a starved cap that forces
/// the pool down to (nearly) the uncappable initial rows.
fn configs() -> Vec<MiningConfig> {
    vec![
        MiningConfig::default(),
        MiningConfig {
            candidates: CandidateConfig {
                min_shared: 1,
                ..CandidateConfig::default()
            },
        },
        MiningConfig {
            candidates: CandidateConfig {
                max_candidates: 1,
                probe_limit: 3,
                ..CandidateConfig::default()
            },
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lazy_greedy_matches_eager_oracle_across_threads((users, perms, data) in upam_inputs()) {
        let upam = CsrMatrix::from_rows_of_indices(users, perms, &data).unwrap();
        for config in configs() {
            let oracle = mine_eager_cover(&upam, &config).unwrap();
            verify_exact_cover(&upam, &oracle.roles).unwrap();
            for threads in THREAD_COUNTS {
                let lazy = mine_greedy_cover_with(&upam, &config, threads).unwrap();
                prop_assert_eq!(
                    &lazy, &oracle,
                    "lazy engine diverged from the eager oracle at {} threads", threads
                );
            }
        }
    }

    #[test]
    fn greedy_cover_is_always_exact((users, perms, data) in upam_inputs()) {
        let upam = CsrMatrix::from_rows_of_indices(users, perms, &data).unwrap();
        let result = mine_greedy_cover(&upam, &MiningConfig::default()).unwrap();
        verify_exact_cover(&upam, &result.roles).unwrap();
        prop_assert_eq!(result.cells_covered, upam.nnz());
        // Greedy optimizes covered cells per step, not role count, so it
        // can exceed the trivial distinct-profile cover (see the
        // `greedy_can_exceed_distinct_profiles` regression test); the
        // guaranteed bounds are structural:
        prop_assert!(result.n_roles() <= upam.nnz().max(1));
        prop_assert!(result.n_roles() <= result.candidates_considered);
        // Every mined role is non-empty and has at least one user.
        for role in &result.roles {
            prop_assert!(!role.permissions.is_empty());
            prop_assert!(!role.users.is_empty());
        }
    }

    #[test]
    fn candidates_are_sound((users, perms, data) in upam_inputs()) {
        let upam = CsrMatrix::from_rows_of_indices(users, perms, &data).unwrap();
        let pool = generate_candidates(&upam, &CandidateConfig::default());
        // Every candidate is sorted, non-empty, unique, within width,
        // and a subset of at least one user's permissions (candidates
        // are rows and their pairwise intersections).
        for (i, c) in pool.sets().iter().enumerate() {
            prop_assert!(!c.is_empty());
            prop_assert!(c.windows(2).all(|w| w[0] < w[1]), "unsorted candidate");
            prop_assert!(c.last().copied().unwrap() < perms as u32);
            prop_assert!(
                !pool.sets()[..i].contains(c),
                "duplicate candidate"
            );
            let contained = (0..users).any(|u| {
                rolediet_matrix::setops::is_subset(c, upam.row(u))
            });
            prop_assert!(contained, "candidate not grounded in any user row");
        }
        // Every distinct non-empty user row is present, cap or no cap.
        let starved = generate_candidates(
            &upam,
            &CandidateConfig { max_candidates: 0, ..CandidateConfig::default() },
        );
        for u in 0..users {
            if upam.row_norm(u) > 0 {
                prop_assert!(pool.sets().iter().any(|c| c.as_slice() == upam.row(u)));
                prop_assert!(starved.sets().iter().any(|c| c.as_slice() == upam.row(u)));
            }
        }
        prop_assert_eq!(starved.len(), starved.n_initial());
    }

    #[test]
    fn candidate_pools_are_thread_count_invariant((users, perms, data) in upam_inputs()) {
        let upam = CsrMatrix::from_rows_of_indices(users, perms, &data).unwrap();
        let reference = generate_candidates(&upam, &CandidateConfig::default());
        for threads in THREAD_COUNTS {
            let pool = generate_candidates_with(&upam, &CandidateConfig::default(), threads);
            prop_assert_eq!(&pool, &reference, "pool diverged at {} threads", threads);
        }
    }

    #[test]
    fn mining_is_deterministic((users, perms, data) in upam_inputs()) {
        let upam = CsrMatrix::from_rows_of_indices(users, perms, &data).unwrap();
        let a = mine_greedy_cover(&upam, &MiningConfig::default()).unwrap();
        let b = mine_greedy_cover(&upam, &MiningConfig::default()).unwrap();
        prop_assert_eq!(a, b);
    }
}

/// Lazy == eager on organization-shaped UPAMs (department-clustered
/// users, duplicate profiles, standalone users, empty rows), across
/// thread counts. Heavier than the random-shape proptest, so a few
/// seeds instead of 64 cases.
#[test]
fn lazy_greedy_matches_eager_oracle_on_org_shaped_upams() {
    for seed in [2, 17] {
        let org = rolediet_synth::generate_org(rolediet_synth::profiles::small_org(seed));
        let upam = org.graph.upam_sparse();
        let oracle = mine_eager_cover(&upam, &MiningConfig::default()).unwrap();
        verify_exact_cover(&upam, &oracle.roles).unwrap();
        for threads in THREAD_COUNTS {
            let lazy = mine_greedy_cover_with(&upam, &MiningConfig::default(), threads).unwrap();
            assert_eq!(
                lazy, oracle,
                "seed {seed}: lazy diverged from eager at {threads} threads"
            );
        }
    }
}

/// Regression (PR 10 satellite): with more distinct non-empty rows than
/// `max_candidates`, the seed-era generator truncated initial rows out
/// of the pool and the greedy loop died on its `unreachable!()`. The cap
/// now applies to derived candidates only, so this mines fine — and a
/// genuinely insufficient (hand-built) pool returns the typed
/// `ModelError::CoverStalled` instead of panicking.
#[test]
fn cap_exceeding_pools_mine_without_panicking() {
    let rows: Vec<Vec<usize>> = (0..10).map(|i| vec![i, (i + 1) % 10]).collect();
    let upam = CsrMatrix::from_rows_of_indices(10, 10, &rows).unwrap();
    let cfg = MiningConfig {
        candidates: CandidateConfig {
            max_candidates: 3,
            ..CandidateConfig::default()
        },
    };
    let eager = mine_eager_cover(&upam, &cfg).unwrap();
    let lazy = mine_greedy_cover(&upam, &cfg).unwrap();
    assert_eq!(eager, lazy);
    verify_exact_cover(&upam, &lazy.roles).unwrap();

    let pool = rolediet_mining::CandidatePool::from_sets(10, vec![vec![0]]).unwrap();
    let err = rolediet_mining::mine_lazy_from_pool(&upam, &pool, 1).unwrap_err();
    assert!(matches!(
        err,
        rolediet_model::ModelError::CoverStalled { .. }
    ));
    let err = rolediet_mining::mine_eager_from_pool(&upam, &pool).unwrap_err();
    assert!(matches!(
        err,
        rolediet_model::ModelError::CoverStalled { .. }
    ));
}

/// Regression pin (found by the property above in an earlier form):
/// greedy picks the shared intersection {0,1,7} first (gain 6 beats
/// either full row's gain 4), then needs two leftover roles — 3 roles
/// where the trivial distinct-profile cover uses 2. This is inherent to
/// greedy set cover, not a bug; it trades role count for assignment
/// sparsity (4 user–role assignments instead of 2, but 7 role-permission
/// grants instead of 8).
#[test]
fn greedy_can_exceed_distinct_profiles() {
    let upam =
        CsrMatrix::from_rows_of_indices(2, 9, &[vec![0, 1, 2, 7], vec![0, 1, 3, 7]]).unwrap();
    let result = mine_greedy_cover(&upam, &MiningConfig::default()).unwrap();
    verify_exact_cover(&upam, &result.roles).unwrap();
    assert_eq!(result.n_roles(), 3);
    assert_eq!(result.roles[0].permissions, vec![0, 1, 7]);
    assert_eq!(result.roles[0].users, vec![0, 1]);
}
