//! Property tests for the mining baselines: exact cover on arbitrary
//! UPAMs, candidate soundness, and the distinct-profile upper bound.

use proptest::collection::vec;
use proptest::prelude::*;

use rolediet_matrix::{CsrMatrix, RowMatrix};
use rolediet_mining::{
    generate_candidates, mine_greedy_cover, verify_exact_cover, CandidateConfig, MiningConfig,
};

fn upam_inputs() -> impl Strategy<Value = (usize, usize, Vec<Vec<usize>>)> {
    (1usize..16, 1usize..14).prop_flat_map(|(users, perms)| {
        vec(vec(0..perms, 0..=6), users).prop_map(move |data| (users, perms, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_cover_is_always_exact((users, perms, data) in upam_inputs()) {
        let upam = CsrMatrix::from_rows_of_indices(users, perms, &data).unwrap();
        let result = mine_greedy_cover(&upam, &MiningConfig::default());
        verify_exact_cover(&upam, &result.roles).unwrap();
        prop_assert_eq!(result.cells_covered, upam.nnz());
        // Greedy optimizes covered cells per step, not role count, so it
        // can exceed the trivial distinct-profile cover (see the
        // `greedy_can_exceed_distinct_profiles` regression test); the
        // guaranteed bounds are structural:
        prop_assert!(result.n_roles() <= upam.nnz().max(1));
        prop_assert!(result.n_roles() <= result.candidates_considered);
        // Every mined role is non-empty and has at least one user.
        for role in &result.roles {
            prop_assert!(!role.permissions.is_empty());
            prop_assert!(!role.users.is_empty());
        }
    }

    #[test]
    fn candidates_are_sound((users, perms, data) in upam_inputs()) {
        let upam = CsrMatrix::from_rows_of_indices(users, perms, &data).unwrap();
        let cands = generate_candidates(&upam, &CandidateConfig::default());
        // Every candidate is non-empty, unique, within width, and is a
        // subset of at least one user's permissions (candidates come from
        // rows and their intersections).
        let mut seen = std::collections::HashSet::new();
        for c in &cands {
            prop_assert_eq!(c.len(), perms);
            prop_assert!(!c.is_zero());
            prop_assert!(seen.insert(c.clone()), "duplicate candidate");
            let contained = (0..users).any(|u| {
                c.is_subset_of(&upam.row_bitvec(u)).unwrap()
            });
            prop_assert!(contained, "candidate not grounded in any user row");
        }
        // Every distinct non-empty user row is present.
        for u in 0..users {
            if upam.row_norm(u) > 0 {
                prop_assert!(cands.contains(&upam.row_bitvec(u)));
            }
        }
    }

    #[test]
    fn mining_is_deterministic((users, perms, data) in upam_inputs()) {
        let upam = CsrMatrix::from_rows_of_indices(users, perms, &data).unwrap();
        let a = mine_greedy_cover(&upam, &MiningConfig::default());
        let b = mine_greedy_cover(&upam, &MiningConfig::default());
        prop_assert_eq!(a, b);
    }
}

/// Regression pin (found by the property above in an earlier form):
/// greedy picks the shared intersection {0,1,7} first (gain 6 beats
/// either full row's gain 4), then needs two leftover roles — 3 roles
/// where the trivial distinct-profile cover uses 2. This is inherent to
/// greedy set cover, not a bug; it trades role count for assignment
/// sparsity (4 user–role assignments instead of 2, but 7 role-permission
/// grants instead of 8).
#[test]
fn greedy_can_exceed_distinct_profiles() {
    let upam =
        CsrMatrix::from_rows_of_indices(2, 9, &[vec![0, 1, 2, 7], vec![0, 1, 3, 7]]).unwrap();
    let result = mine_greedy_cover(&upam, &MiningConfig::default());
    verify_exact_cover(&upam, &result.roles).unwrap();
    assert_eq!(result.n_roles(), 3);
    assert_eq!(result.roles[0].permissions, vec![0, 1, 7]);
    assert_eq!(result.roles[0].users, vec![0, 1]);
}
