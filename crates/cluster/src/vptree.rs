//! Vantage-point tree: an exact metric index.
//!
//! DBSCAN's cost in this workspace (and in the paper's scikit-learn
//! baseline) is dominated by brute-force region queries — `O(n)` distance
//! evaluations per point. Hamming distance is a proper metric, so an
//! exact metric index applies: a VP-tree (Yianilos 1993) partitions
//! points by distance to a *vantage point* and prunes entire subtrees
//! with the triangle inequality, answering range queries in sub-linear
//! time on clusterable data while staying **exact** (unlike HNSW, it can
//! never miss a neighbour).
//!
//! This is the "how far can the exact baseline be pushed" ablation: the
//! custom algorithm still wins (it skips distance computation entirely
//! for non-co-occurring pairs), but VP-DBSCAN shows the gap that remains
//! after giving the baseline a real index.
//!
//! Duplicate-heavy data is the best case: all duplicates of the vantage
//! point sit at distance 0 and entire equal-distance shells prune at
//! once.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metric::PointSet;

/// A built VP-tree over the points `0..n` of a [`PointSet`].
///
/// # Examples
///
/// ```
/// use rolediet_cluster::metric::VecPoints;
/// use rolediet_cluster::vptree::VpTree;
///
/// let pts = VecPoints::new((0..100).map(|i| vec![i as f64]).collect());
/// let tree = VpTree::build(&pts, 0);
/// let mut hits = tree.range_query(&pts, 50, 2.0);
/// assert_eq!(hits, vec![48, 49, 50, 51, 52]);
/// ```
#[derive(Debug, Clone)]
pub struct VpTree {
    nodes: Vec<Node>,
    root: Option<usize>,
}

#[derive(Debug, Clone)]
struct Node {
    /// The vantage point (a dataset index).
    point: usize,
    /// Median distance: inside subtree holds points with `d <= radius`.
    radius: f64,
    inside: Option<usize>,
    outside: Option<usize>,
}

impl VpTree {
    /// Builds the tree. `seed` drives vantage-point selection (random
    /// vantage points give balanced trees in expectation); equal seeds
    /// give identical trees.
    pub fn build<P: PointSet>(points: &P, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = VpTree {
            nodes: Vec::with_capacity(points.len()),
            root: None,
        };
        let mut ids: Vec<usize> = (0..points.len()).collect();
        tree.root = tree.build_rec(points, &mut ids[..], &mut rng);
        tree
    }

    fn build_rec<P: PointSet>(
        &mut self,
        points: &P,
        ids: &mut [usize],
        rng: &mut StdRng,
    ) -> Option<usize> {
        if ids.is_empty() {
            return None;
        }
        // Pick a random vantage point and move it to the front.
        let pick = rng.gen_range(0..ids.len());
        ids.swap(0, pick);
        let vantage = ids[0];
        let rest = &mut ids[1..];
        if rest.is_empty() {
            let id = self.nodes.len();
            self.nodes.push(Node {
                point: vantage,
                radius: 0.0,
                inside: None,
                outside: None,
            });
            return Some(id);
        }
        // Partition the rest around the median distance to the vantage.
        let mut with_d: Vec<(usize, f64)> = rest
            .iter()
            .map(|&p| (p, points.distance(vantage, p)))
            .collect();
        with_d.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mid = with_d.len() / 2;
        let radius = with_d[mid].1;
        for (slot, &(p, _)) in rest.iter_mut().zip(&with_d) {
            *slot = p;
        }
        let (inside_ids, outside_ids) = rest.split_at_mut(mid + 1);
        let id = self.nodes.len();
        self.nodes.push(Node {
            point: vantage,
            radius,
            inside: None,
            outside: None,
        });
        let inside = self.build_rec(points, inside_ids, rng);
        let outside = self.build_rec(points, outside_ids, rng);
        self.nodes[id].inside = inside;
        self.nodes[id].outside = outside;
        Some(id)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All points within `eps` of point `query` (inclusive, including the
    /// query itself), ascending — exactly
    /// [`neighbors::range_query`](crate::neighbors::range_query), but
    /// with triangle-inequality pruning.
    pub fn range_query<P: PointSet>(&self, points: &P, query: usize, eps: f64) -> Vec<usize> {
        self.range_query_with(|p| points.distance(query, p), eps)
    }

    /// Range query with a distance oracle from an arbitrary query object
    /// to indexed points.
    pub fn range_query_with<F: Fn(usize) -> f64>(&self, dist: F, eps: f64) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        if let Some(root) = self.root {
            stack.push(root);
        }
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            let d = dist(node.point);
            if d <= eps {
                out.push(node.point);
            }
            // Triangle inequality: a point q at distance d from the
            // vantage can only have neighbours within eps in the inside
            // subtree if d - eps <= radius, and in the outside subtree if
            // d + eps >= radius (bounds inclusive since our balls are
            // closed).
            if let Some(inside) = node.inside {
                if d - eps <= node.radius {
                    stack.push(inside);
                }
            }
            if let Some(outside) = node.outside {
                if d + eps >= node.radius {
                    stack.push(outside);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{BinaryMetric, BinaryRows, VecPoints};
    use crate::neighbors::range_query as brute_range;
    use rolediet_matrix::BitMatrix;

    #[test]
    fn empty_and_singleton() {
        let pts = VecPoints::new(vec![]);
        let tree = VpTree::build(&pts, 0);
        assert!(tree.is_empty());
        assert!(tree.range_query_with(|_| 0.0, 1.0).is_empty());

        let one = VecPoints::new(vec![vec![3.0]]);
        let tree = VpTree::build(&one, 0);
        assert_eq!(tree.range_query(&one, 0, 0.0), vec![0]);
    }

    #[test]
    fn matches_brute_force_on_line() {
        let pts = VecPoints::new((0..60).map(|i| vec![i as f64]).collect());
        let tree = VpTree::build(&pts, 7);
        for q in 0..60 {
            for eps in [0.0, 1.0, 2.5, 10.0] {
                assert_eq!(
                    tree.range_query(&pts, q, eps),
                    brute_range(&pts, q, eps),
                    "q={q} eps={eps}"
                );
            }
        }
    }

    #[test]
    fn matches_brute_force_on_binary_rows() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let rows: Vec<Vec<usize>> = (0..150)
            .map(|_| (0..40).filter(|_| rng.gen_bool(0.2)).collect())
            .collect();
        let m = BitMatrix::from_rows_of_indices(150, 40, &rows).unwrap();
        let pts = BinaryRows::new(&m, BinaryMetric::Hamming);
        let tree = VpTree::build(&pts, 3);
        for q in (0..150).step_by(7) {
            for eps in [0.0, 1.0, 3.0] {
                assert_eq!(
                    tree.range_query(&pts, q, eps),
                    brute_range(&pts, q, eps),
                    "q={q} eps={eps}"
                );
            }
        }
    }

    #[test]
    fn exact_on_duplicate_heavy_data() {
        // The RBAC case: many identical rows. The tree must return every
        // duplicate at eps=0.
        let rows: Vec<Vec<usize>> = (0..90)
            .map(|i| match i % 3 {
                0 => vec![0, 1],
                1 => vec![2],
                _ => vec![0, 1, 2, 3],
            })
            .collect();
        let m = BitMatrix::from_rows_of_indices(90, 5, &rows).unwrap();
        let pts = BinaryRows::new(&m, BinaryMetric::Hamming);
        let tree = VpTree::build(&pts, 11);
        let dups = tree.range_query(&pts, 0, 0.0);
        assert_eq!(dups.len(), 30);
        assert!(dups.iter().all(|&r| r % 3 == 0));
    }

    #[test]
    fn packed_adapter_matches_scalar_oracle() {
        // Routing distance evaluations through PackedPointSet must give
        // the same tree structure and the same query results as the
        // scalar BinaryRows oracle — the tree only ever sees distance
        // values, and the packed kernels compute the identical metric.
        use crate::metric::PackedPointSet;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(97);
        let mut rows: Vec<Vec<usize>> = (0..130)
            .map(|_| (0..70).filter(|_| rng.gen_bool(0.15)).collect())
            .collect();
        rows.push(Vec::new()); // empty row
        rows.push(rows[0].clone()); // duplicate row
        let m = BitMatrix::from_rows_of_indices(rows.len(), 70, &rows).unwrap();
        let scalar = BinaryRows::new(&m, BinaryMetric::Hamming);
        let packed = PackedPointSet::from_matrix(&m, 2);
        let tree_s = VpTree::build(&scalar, 3);
        let tree_p = VpTree::build(&packed, 3);
        assert_eq!(tree_s.len(), tree_p.len());
        for q in 0..rows.len() {
            for eps in [0.0, 1.0, 4.0, 70.0] {
                let hits = tree_p.range_query(&packed, q, eps);
                assert_eq!(hits, tree_s.range_query(&scalar, q, eps), "q={q} eps={eps}");
                assert_eq!(hits, brute_range(&scalar, q, eps), "q={q} eps={eps}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = VecPoints::new((0..40).map(|i| vec![(i * i % 17) as f64]).collect());
        let a = VpTree::build(&pts, 5);
        let b = VpTree::build(&pts, 5);
        for q in 0..40 {
            assert_eq!(a.range_query(&pts, q, 2.0), b.range_query(&pts, q, 2.0));
        }
    }
}
