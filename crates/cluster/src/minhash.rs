//! MinHash LSH — locality-sensitive hashing for Jaccard similarity.
//!
//! The paper's approximate baseline comes from the `datasketch` library,
//! whose flagship structure is MinHash LSH; we implement it as a second
//! approximate method for the ablation study (`abl-recall` in DESIGN.md).
//! Each role's user set is sketched into `num_perm` MinHash values; the
//! signature is split into bands, and roles colliding in any band become
//! *candidate pairs*. Identical sets always collide (probability 1), so
//! duplicate-role detection has perfect recall; near-duplicates collide
//! with probability `1 − (1 − s^r)^b` for Jaccard similarity `s`, `r` rows
//! per band and `b` bands.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rolediet_matrix::parallel::par_map_rows;
use serde::{Deserialize, Serialize};

/// Mersenne prime 2⁶¹ − 1: modulus of the universal hash family.
const PRIME: u128 = (1u128 << 61) - 1;

/// Sentinel MinHash value of an empty set.
const EMPTY: u64 = u64::MAX;

/// MinHash LSH parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHashLshParams {
    /// Number of hash permutations (signature length).
    pub num_perm: usize,
    /// Number of bands the signature is split into. Must divide
    /// `num_perm`.
    pub bands: usize,
    /// RNG seed for the hash family.
    pub seed: u64,
}

impl Default for MinHashLshParams {
    fn default() -> Self {
        MinHashLshParams {
            num_perm: 128,
            bands: 32,
            seed: 0x5EED,
        }
    }
}

/// A built MinHash LSH index over item sets.
///
/// # Examples
///
/// ```
/// use rolediet_cluster::minhash::{MinHashLsh, MinHashLshParams};
///
/// let sets = vec![
///     vec![1u32, 2, 3],
///     vec![1, 2, 3],      // duplicate of set 0
///     vec![100, 200],
/// ];
/// let lsh = MinHashLsh::build(&sets, MinHashLshParams::default());
/// assert!(lsh.candidate_pairs().contains(&(0, 1)));
/// ```
#[derive(Debug, Clone)]
pub struct MinHashLsh {
    params: MinHashLshParams,
    signatures: Vec<Vec<u64>>,
}

impl MinHashLsh {
    /// Sketches every set and builds the index.
    ///
    /// # Panics
    ///
    /// Panics if `bands` does not divide `num_perm` or either is zero.
    pub fn build(sets: &[Vec<u32>], params: MinHashLshParams) -> Self {
        Self::build_with(sets, params, 1)
    }

    /// [`build`](Self::build) with the sketching pass split over
    /// `threads` workers on the shared
    /// [`parallel`](rolediet_matrix::parallel) substrate.
    ///
    /// The hash family is drawn once on the caller thread (the RNG
    /// stream is untouched by the thread count); each worker sketches a
    /// contiguous range of sets and the per-range signature vectors are
    /// joined in range order, so the signature table — and therefore the
    /// band tables and candidate pairs derived from it — is bit-identical
    /// to the sequential build for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `bands` does not divide `num_perm` or either is zero.
    pub fn build_with(sets: &[Vec<u32>], params: MinHashLshParams, threads: usize) -> Self {
        assert!(
            params.num_perm > 0 && params.bands > 0,
            "parameters must be positive"
        );
        assert_eq!(
            params.num_perm % params.bands,
            0,
            "bands must divide num_perm"
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        let coeffs: Vec<(u64, u64)> = (0..params.num_perm)
            .map(|_| {
                (
                    rng.gen_range(1..(PRIME as u64)),
                    rng.gen_range(0..(PRIME as u64)),
                )
            })
            .collect();
        let signatures = par_map_rows(sets.len(), threads, |range| {
            sets[range]
                .iter()
                .map(|set| {
                    coeffs
                        .iter()
                        .map(|&(a, b)| {
                            set.iter()
                                .map(|&x| {
                                    ((u128::from(a) * u128::from(x) + u128::from(b)) % PRIME) as u64
                                })
                                .min()
                                .unwrap_or(EMPTY)
                        })
                        .collect()
                })
                .collect()
        });
        MinHashLsh { params, signatures }
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> MinHashLshParams {
        self.params
    }

    /// Number of indexed sets.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Returns `true` if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Estimated Jaccard similarity between sets `i` and `j`: the fraction
    /// of matching signature components.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn estimate_jaccard(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (&self.signatures[i], &self.signatures[j]);
        let eq = a.iter().zip(b).filter(|(x, y)| x == y).count();
        eq as f64 / self.params.num_perm as f64
    }

    /// All candidate pairs `(i, j)`, `i < j`, that collide in at least one
    /// band, sorted and deduplicated.
    pub fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        self.candidate_pairs_with(1)
    }

    /// [`candidate_pairs`](Self::candidate_pairs) with the banding pass
    /// split over `threads` workers: each worker builds the band tables
    /// for a contiguous range of bands, and the per-range pair lists are
    /// joined in band order before the final sort + dedup, so the result
    /// is identical to the sequential pass for every thread count.
    pub fn candidate_pairs_with(&self, threads: usize) -> Vec<(usize, usize)> {
        use std::collections::HashMap;
        let rows = self.params.num_perm / self.params.bands;
        let mut pairs = par_map_rows(self.params.bands, threads, |band_range| {
            let mut out = Vec::new();
            for band in band_range {
                let lo = band * rows;
                let hi = lo + rows;
                let mut buckets: HashMap<&[u64], Vec<usize>> = HashMap::new();
                for (i, sig) in self.signatures.iter().enumerate() {
                    buckets.entry(&sig[lo..hi]).or_default().push(i);
                }
                for members in buckets.into_values() {
                    if members.len() < 2 {
                        continue;
                    }
                    for (x, &i) in members.iter().enumerate() {
                        for &j in &members[x + 1..] {
                            out.push((i, j));
                        }
                    }
                }
            }
            out
        });
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_always_collide() {
        let sets = vec![vec![5u32, 9, 100], vec![5, 9, 100], vec![5, 9, 100]];
        let lsh = MinHashLsh::build(&sets, MinHashLshParams::default());
        let pairs = lsh.candidate_pairs();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(lsh.estimate_jaccard(0, 1), 1.0);
    }

    #[test]
    fn disjoint_sets_rarely_collide() {
        let sets: Vec<Vec<u32>> = (0..20)
            .map(|i| ((i * 50)..(i * 50 + 10)).collect())
            .collect();
        let lsh = MinHashLsh::build(&sets, MinHashLshParams::default());
        // With 4 rows per band and Jaccard 0, collisions are overwhelmingly
        // unlikely; allow a small number for robustness.
        assert!(lsh.candidate_pairs().len() <= 1);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        // |A∩B| = 50, |A∪B| = 150 → J = 1/3.
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (50..150).collect();
        let lsh = MinHashLsh::build(
            &[a, b],
            MinHashLshParams {
                num_perm: 256,
                bands: 32,
                seed: 1,
            },
        );
        let est = lsh.estimate_jaccard(0, 1);
        assert!((est - 1.0 / 3.0).abs() < 0.12, "estimate {est} too far");
    }

    #[test]
    fn empty_sets_collide_with_each_other_only() {
        let sets = vec![vec![], vec![], vec![1u32, 2]];
        let lsh = MinHashLsh::build(&sets, MinHashLshParams::default());
        assert_eq!(lsh.candidate_pairs(), vec![(0, 1)]);
        assert_eq!(lsh.estimate_jaccard(0, 1), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let sets = vec![vec![1u32, 2, 3], vec![2, 3, 4], vec![9, 10]];
        let a = MinHashLsh::build(&sets, MinHashLshParams::default());
        let b = MinHashLsh::build(&sets, MinHashLshParams::default());
        assert_eq!(a.candidate_pairs(), b.candidate_pairs());
        assert_eq!(a.estimate_jaccard(0, 1), b.estimate_jaccard(0, 1));
    }

    #[test]
    fn parallel_build_and_banding_match_sequential() {
        let sets: Vec<Vec<u32>> = (0..50)
            .map(|i| (0..8).map(|k| (i * 3 + k * 7) % 40).collect())
            .collect();
        let seq = MinHashLsh::build(&sets, MinHashLshParams::default());
        let seq_pairs = seq.candidate_pairs();
        for threads in [1, 2, 4, 8] {
            let par = MinHashLsh::build_with(&sets, MinHashLshParams::default(), threads);
            assert_eq!(par.signatures, seq.signatures, "threads={threads}");
            assert_eq!(
                par.candidate_pairs_with(threads),
                seq_pairs,
                "threads={threads}"
            );
        }
        // Degenerate inputs: nothing indexed, all-empty sets.
        for threads in [2, 8] {
            let empty = MinHashLsh::build_with(&[], MinHashLshParams::default(), threads);
            assert!(empty.candidate_pairs_with(threads).is_empty());
            let blanks = MinHashLsh::build_with(
                &[vec![], vec![], vec![]],
                MinHashLshParams::default(),
                threads,
            );
            assert_eq!(
                blanks.candidate_pairs_with(threads),
                vec![(0, 1), (0, 2), (1, 2)]
            );
        }
    }

    #[test]
    #[should_panic(expected = "bands must divide num_perm")]
    fn bad_band_count_panics() {
        MinHashLsh::build(
            &[vec![1]],
            MinHashLshParams {
                num_perm: 10,
                bands: 3,
                seed: 0,
            },
        );
    }

    #[test]
    fn len_and_empty() {
        let lsh = MinHashLsh::build(&[], MinHashLshParams::default());
        assert!(lsh.is_empty());
        assert!(lsh.candidate_pairs().is_empty());
    }
}
