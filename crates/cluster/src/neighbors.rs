//! Brute-force neighbour queries, and their engine-backed fast paths.
//!
//! The generic scans over [`PointSet`] are the exact reference that
//! (a) DBSCAN uses for its region queries and (b)
//! [`recall`](crate::recall) measures the approximate indexes against.
//! For binary rows under Hamming distance — the only metric the paper's
//! T4/T5 detectors use — each query also has a `*_packed` variant riding
//! the [`PackedRows`] bounded-distance engine (norm-band pruning +
//! early-exit kernels), with bit-identical output; the scalar scans
//! survive as the ablation oracle the engine is pinned against.

use rolediet_matrix::PackedRows;

use crate::metric::PointSet;

/// Ordering for `(index, distance)` candidates: by distance then index.
/// `total_cmp` gives NaN-free inputs the same order as `partial_cmp`
/// while staying total (no panic paths) on adversarial metrics.
fn by_distance_then_index(a: &(usize, f64), b: &(usize, f64)) -> std::cmp::Ordering {
    a.1.total_cmp(&b.1).then(a.0.cmp(&b.0))
}

/// Integer Hamming bound equivalent to a float `eps`: Hamming distances
/// are integers, so `d as f64 <= eps` iff `d <= floor(eps)`. `None` when
/// `eps` is negative or NaN — no distance (not even the self-distance 0)
/// qualifies.
fn hamming_bound(eps: f64) -> Option<usize> {
    if eps >= 0.0 {
        Some(eps as usize)
    } else {
        None
    }
}

/// All points within distance `eps` of point `i` (inclusive), including
/// `i` itself, ascending by index.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn range_query<P: PointSet>(points: &P, i: usize, eps: f64) -> Vec<usize> {
    (0..points.len())
        .filter(|&j| points.distance(i, j) <= eps)
        .collect()
}

/// All `n` range queries at once, computed on `threads` workers via the
/// shared [`parallel`](rolediet_matrix::parallel) substrate and joined
/// in range order (deterministic for every thread count).
///
/// Row `p` is exactly [`range_query`]`(points, p, eps)`: ascending,
/// duplicate-free, and including `p` itself — so consumers (the DBSCAN
/// grouping kernel) never need a per-row dedup pass.
pub fn all_range_queries_with<P: PointSet + Sync>(
    points: &P,
    eps: f64,
    threads: usize,
) -> Vec<Vec<usize>> {
    rolediet_matrix::parallel::par_map_rows(points.len(), threads, |range| {
        range.map(|p| range_query(points, p, eps)).collect()
    })
}

/// [`all_range_queries_with`] for binary rows under Hamming distance,
/// riding the [`PackedRows`] bounded-distance engine: the float `eps` is
/// converted to its exact integer bound and every query row walks only
/// its norm band with early-exit kernels.
///
/// Output is bit-identical to the scalar scan over
/// [`BinaryRows`](crate::metric::BinaryRows) with
/// [`Hamming`](crate::metric::BinaryMetric::Hamming) at every thread
/// count (pinned in tests); the scalar path survives as the ablation
/// oracle.
pub fn all_range_queries_packed(rows: &PackedRows, eps: f64, threads: usize) -> Vec<Vec<usize>> {
    match hamming_bound(eps) {
        Some(bound) => rows.range_queries_within(bound, threads),
        None => vec![Vec::new(); rows.rows()],
    }
}

/// [`all_range_queries_packed`] under an explicit memory budget: the
/// matrix is split into norm-contiguous shard blocks by
/// [`PackedShards`](rolediet_matrix::PackedShards) and streamed as
/// shard×shard tile passes, so only two shard blocks (plus the output)
/// are resident at a time.
///
/// Output is bit-identical to [`all_range_queries_packed`] over
/// `PackedRows::from_matrix(matrix, ..)` — and hence to the scalar
/// oracle — at every thread count *and* every budget (pinned in tests).
/// `memory_budget_bytes == 0` means unbounded: one shard, delegating
/// byte-for-byte to the flat engine.
pub fn all_range_queries_sharded<M: rolediet_matrix::RowMatrix + Sync + ?Sized>(
    matrix: &M,
    eps: f64,
    memory_budget_bytes: usize,
    threads: usize,
) -> Vec<Vec<usize>> {
    match hamming_bound(eps) {
        Some(bound) => rolediet_matrix::PackedShards::new(matrix, memory_budget_bytes, threads)
            .range_queries_within(bound),
        None => vec![Vec::new(); matrix.rows()],
    }
}

/// The `k` nearest neighbours of point `i` (excluding `i`), sorted by
/// distance then index. Returns fewer than `k` when the set is small.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn knn<P: PointSet>(points: &P, i: usize, k: usize) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = (0..points.len())
        .filter(|&j| j != i)
        .map(|j| (j, points.distance(i, j)))
        .collect();
    if k == 0 {
        return Vec::new();
    }
    // Select the k smallest before sorting: O(n + k log k) instead of
    // sorting all n distances. The comparator is a total order over
    // unique (distance, index) keys, so the kept prefix — and the final
    // sort — match the full-sort output exactly (tie-break pinned by
    // `knn_ties_break_by_index`).
    if all.len() > k {
        all.select_nth_unstable_by(k, by_distance_then_index);
        all.truncate(k);
    }
    all.sort_unstable_by(by_distance_then_index);
    all
}

/// [`knn`] for binary rows under Hamming distance, riding the
/// [`PackedRows`] engine: candidates are visited in rings of increasing
/// norm distance (a lower bound on Hamming distance), each checked with
/// the bounded kernel against the current k-th best, and the walk stops
/// as soon as the next ring cannot improve the result. Output is
/// identical to the scalar [`knn`] (distance then index order).
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn knn_packed(rows: &PackedRows, i: usize, k: usize) -> Vec<(usize, f64)> {
    assert!(i < rows.rows(), "point index out of range");
    if k == 0 {
        return Vec::new();
    }
    let ni = rows.row_norm(i);
    let max_norm = rows.max_norm();
    // Max-heap of the k best (distance, index) pairs seen so far; the
    // root is the current worst, so a candidate wins iff it compares
    // below the root under the same (distance, index) order `knn` uses.
    let mut heap: std::collections::BinaryHeap<(usize, usize)> =
        std::collections::BinaryHeap::new();
    for delta in 0..=ni.max(max_norm.saturating_sub(ni)) {
        if let Some(&(worst, _)) = heap.peek() {
            if heap.len() == k && delta > worst {
                break; // every later ring has distance >= delta > worst
            }
        }
        let above = ni + delta;
        let norms = ni
            .checked_sub(delta)
            .into_iter()
            .chain((delta > 0 && above <= max_norm).then_some(above));
        for norm in norms {
            for &j in rows.rows_with_norm(norm) {
                let j = j as usize;
                if j == i {
                    continue;
                }
                if heap.len() < k {
                    if let Some(d) = rows.bounded_hamming(i, j, rows.cols()) {
                        heap.push((d, j));
                    }
                } else if let Some(&(worst, worst_j)) = heap.peek() {
                    // bound = worst keeps equal distances in play so the
                    // index tie-break below can still improve the set.
                    if let Some(d) = rows.bounded_hamming(i, j, worst) {
                        if (d, j) < (worst, worst_j) {
                            heap.pop();
                            heap.push((d, j));
                        }
                    }
                }
            }
        }
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|(d, j)| (j, d as f64))
        .collect()
}

/// The sorted k-distance curve: for every point, the distance to its
/// `k`-th nearest neighbour, descending.
///
/// This is the standard instrument for choosing DBSCAN's `eps` (Ester et
/// al. §4.2): plot the curve and pick the "elbow". For the RBAC problem
/// the paper derives `eps` analytically (0 for T4, `t` for T5), but the
/// curve remains useful for diagnosing how separated the duplicate
/// clusters are from the background.
///
/// Points with fewer than `k` neighbours contribute `f64::INFINITY`.
pub fn k_distance_curve<P: PointSet>(points: &P, k: usize) -> Vec<f64> {
    let mut out: Vec<f64> = (0..points.len())
        .map(|i| {
            let nn = knn(points, i, k);
            if nn.len() < k {
                f64::INFINITY
            } else {
                nn[k - 1].1
            }
        })
        .collect();
    out.sort_unstable_by(|a, b| b.total_cmp(a));
    out
}

/// [`k_distance_curve`] for binary rows under Hamming distance, riding
/// the [`PackedRows`] engine — and parallel: the per-point k-NN queries
/// fan out over `threads` workers (joined in range order) before the
/// final descending sort, so the output is identical to the scalar curve
/// at every thread count.
pub fn k_distance_curve_packed(rows: &PackedRows, k: usize, threads: usize) -> Vec<f64> {
    let mut out: Vec<f64> =
        rolediet_matrix::parallel::par_map_rows(rows.rows(), threads, |range| {
            range
                .map(|i| {
                    let nn = knn_packed(rows, i, k);
                    if nn.len() < k {
                        f64::INFINITY
                    } else {
                        nn[k - 1].1
                    }
                })
                .collect()
        });
    out.sort_unstable_by(|a, b| b.total_cmp(a));
    out
}

/// Every unordered pair `(i, j)`, `i < j`, within distance `eps` —
/// the exact ground-truth pair set for a similarity threshold.
pub fn all_pairs_within<P: PointSet>(points: &P, eps: f64) -> Vec<(usize, usize)> {
    let n = points.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if points.distance(i, j) <= eps {
                out.push((i, j));
            }
        }
    }
    out
}

/// [`all_pairs_within`] for binary rows under Hamming distance, riding
/// the [`PackedRows`] engine. Pair order matches the sequential double
/// loop (`i` ascending, then `j`) at every thread count, so recall
/// measurements can diff the two ground truths directly; the scalar
/// scan survives as the ablation oracle.
pub fn all_pairs_within_packed(rows: &PackedRows, eps: f64, threads: usize) -> Vec<(usize, usize)> {
    match hamming_bound(eps) {
        Some(bound) => rows
            .pairs_within(bound, threads)
            .into_iter()
            .map(|(i, j, _)| (i, j))
            .collect(),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::VecPoints;

    fn line() -> VecPoints {
        VecPoints::new(vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
    }

    #[test]
    fn range_query_includes_self() {
        let p = line();
        assert_eq!(range_query(&p, 0, 1.0), vec![0, 1]);
        assert_eq!(range_query(&p, 1, 1.0), vec![0, 1, 2]);
        assert_eq!(range_query(&p, 3, 0.5), vec![3]);
    }

    #[test]
    fn all_range_queries_match_per_point_queries() {
        let p = line();
        let expected: Vec<Vec<usize>> = (0..4).map(|i| range_query(&p, i, 1.0)).collect();
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                all_range_queries_with(&p, 1.0, threads),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn knn_sorted_by_distance() {
        let p = line();
        let nn = knn(&p, 0, 2);
        assert_eq!(nn, vec![(1, 1.0), (2, 2.0)]);
        let nn = knn(&p, 0, 10);
        assert_eq!(nn.len(), 3, "never returns self or phantom points");
    }

    #[test]
    fn knn_ties_break_by_index() {
        let p = VecPoints::new(vec![vec![0.0], vec![1.0], vec![-1.0]]);
        let nn = knn(&p, 0, 2);
        assert_eq!(nn, vec![(1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn k_distance_curve_shapes() {
        let p = line();
        // 1-distances: [1, 1, 1, 8] → sorted descending [8, 1, 1, 1].
        assert_eq!(k_distance_curve(&p, 1), vec![8.0, 1.0, 1.0, 1.0]);
        // k larger than available neighbours → all infinite.
        let curve = k_distance_curve(&p, 5);
        assert!(curve.iter().all(|d| d.is_infinite()));
        // Duplicate points put a 0 on the curve.
        let dup = VecPoints::new(vec![vec![0.0], vec![0.0], vec![9.0]]);
        let curve = k_distance_curve(&dup, 1);
        assert_eq!(curve.last(), Some(&0.0));
    }

    #[test]
    fn all_pairs_within_eps() {
        let p = line();
        assert_eq!(all_pairs_within(&p, 1.0), vec![(0, 1), (1, 2)]);
        assert_eq!(all_pairs_within(&p, 2.0), vec![(0, 1), (0, 2), (1, 2)]);
        assert!(all_pairs_within(&p, 0.5).is_empty());
    }

    /// A random binary matrix with an empty row and a duplicate pair,
    /// plus its scalar point-set view and both engine representations.
    fn binary_fixture() -> (rolediet_matrix::BitMatrix, Vec<PackedRows>) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let mut rows: Vec<Vec<usize>> = (0..60)
            .map(|_| (0..90).filter(|_| rng.gen_bool(0.15)).collect())
            .collect();
        rows.push(Vec::new());
        rows.push(rows[0].clone());
        let m = rolediet_matrix::BitMatrix::from_rows_of_indices(62, 90, &rows).unwrap();
        let packed = vec![
            PackedRows::packed_from_matrix(&m, 3),
            PackedRows::sparse_from_matrix(&m, 3),
        ];
        (m, packed)
    }

    #[test]
    fn packed_range_queries_match_scalar_oracle() {
        use crate::metric::{BinaryMetric, BinaryRows};
        let (m, reprs) = binary_fixture();
        let points = BinaryRows::new(&m, BinaryMetric::Hamming);
        for eps in [-1.0, 0.0, 1e-9, 1.0 + 1e-9, 3.0 + 1e-9, 7.5] {
            let expected = all_range_queries_with(&points, eps, 1);
            for rows in &reprs {
                for threads in [1usize, 2, 4, 8] {
                    assert_eq!(
                        all_range_queries_packed(rows, eps, threads),
                        expected,
                        "eps={eps} threads={threads} packed={}",
                        rows.is_packed()
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_range_queries_match_scalar_oracle_under_tiny_budgets() {
        use crate::metric::{BinaryMetric, BinaryRows};
        let (m, _) = binary_fixture();
        let points = BinaryRows::new(&m, BinaryMetric::Hamming);
        for eps in [-1.0, 0.0, 1.0 + 1e-9, 3.0 + 1e-9] {
            let expected = all_range_queries_with(&points, eps, 1);
            // Budget 1 forces one-row shards; 2 KiB a handful; 0 means a
            // single shard delegating to the flat engine.
            for budget in [1usize, 2048, 0] {
                for threads in [1usize, 2, 4, 8] {
                    assert_eq!(
                        all_range_queries_sharded(&m, eps, budget, threads),
                        expected,
                        "eps={eps} budget={budget} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_pairs_match_scalar_ground_truth() {
        use crate::metric::{BinaryMetric, BinaryRows};
        let (m, reprs) = binary_fixture();
        let points = BinaryRows::new(&m, BinaryMetric::Hamming);
        for eps in [-0.5, 1e-9, 2.0 + 1e-9, 6.0] {
            let expected = all_pairs_within(&points, eps);
            for rows in &reprs {
                for threads in [1usize, 2, 4, 8] {
                    assert_eq!(
                        all_pairs_within_packed(rows, eps, threads),
                        expected,
                        "eps={eps} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_knn_and_curve_match_scalar() {
        use crate::metric::{BinaryMetric, BinaryRows};
        let (m, reprs) = binary_fixture();
        let points = BinaryRows::new(&m, BinaryMetric::Hamming);
        for rows in &reprs {
            for k in [1usize, 2, 5, 61, 100] {
                for i in [0usize, 7, 60, 61] {
                    assert_eq!(
                        knn_packed(rows, i, k),
                        knn(&points, i, k),
                        "i={i} k={k} packed={}",
                        rows.is_packed()
                    );
                }
                for threads in [1usize, 2, 4, 8] {
                    assert_eq!(
                        k_distance_curve_packed(rows, k, threads),
                        k_distance_curve(&points, k),
                        "k={k} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn knn_packed_handles_k_zero_and_empty() {
        let (_, reprs) = binary_fixture();
        assert!(knn_packed(&reprs[0], 0, 0).is_empty());
        let empty = PackedRows::from_matrix(&rolediet_matrix::CsrMatrix::zeros(0, 4), 1);
        assert!(all_range_queries_packed(&empty, 1.0, 2).is_empty());
        assert!(all_pairs_within_packed(&empty, 1.0, 2).is_empty());
    }
}
