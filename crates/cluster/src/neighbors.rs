//! Brute-force neighbour queries.
//!
//! These O(n) scans are the exact reference that (a) DBSCAN uses for its
//! region queries and (b) [`recall`](crate::recall) measures the
//! approximate indexes against.

use crate::metric::PointSet;

/// All points within distance `eps` of point `i` (inclusive), including
/// `i` itself, ascending by index.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn range_query<P: PointSet>(points: &P, i: usize, eps: f64) -> Vec<usize> {
    (0..points.len())
        .filter(|&j| points.distance(i, j) <= eps)
        .collect()
}

/// All `n` range queries at once, computed on `threads` workers via the
/// shared [`parallel`](rolediet_matrix::parallel) substrate and joined
/// in range order (deterministic for every thread count).
///
/// Row `p` is exactly [`range_query`]`(points, p, eps)`: ascending,
/// duplicate-free, and including `p` itself — so consumers (the DBSCAN
/// grouping kernel) never need a per-row dedup pass.
pub fn all_range_queries_with<P: PointSet + Sync>(
    points: &P,
    eps: f64,
    threads: usize,
) -> Vec<Vec<usize>> {
    rolediet_matrix::parallel::par_map_rows(points.len(), threads, |range| {
        range.map(|p| range_query(points, p, eps)).collect()
    })
}

/// The `k` nearest neighbours of point `i` (excluding `i`), sorted by
/// distance then index. Returns fewer than `k` when the set is small.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn knn<P: PointSet>(points: &P, i: usize, k: usize) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = (0..points.len())
        .filter(|&j| j != i)
        .map(|j| (j, points.distance(i, j)))
        .collect();
    all.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("no NaN distances")
            .then(a.0.cmp(&b.0))
    });
    all.truncate(k);
    all
}

/// The sorted k-distance curve: for every point, the distance to its
/// `k`-th nearest neighbour, descending.
///
/// This is the standard instrument for choosing DBSCAN's `eps` (Ester et
/// al. §4.2): plot the curve and pick the "elbow". For the RBAC problem
/// the paper derives `eps` analytically (0 for T4, `t` for T5), but the
/// curve remains useful for diagnosing how separated the duplicate
/// clusters are from the background.
///
/// Points with fewer than `k` neighbours contribute `f64::INFINITY`.
pub fn k_distance_curve<P: PointSet>(points: &P, k: usize) -> Vec<f64> {
    let mut out: Vec<f64> = (0..points.len())
        .map(|i| {
            let nn = knn(points, i, k);
            if nn.len() < k {
                f64::INFINITY
            } else {
                nn[k - 1].1
            }
        })
        .collect();
    out.sort_by(|a, b| b.partial_cmp(a).expect("no NaN distances"));
    out
}

/// Every unordered pair `(i, j)`, `i < j`, within distance `eps` —
/// the exact ground-truth pair set for a similarity threshold.
pub fn all_pairs_within<P: PointSet>(points: &P, eps: f64) -> Vec<(usize, usize)> {
    let n = points.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if points.distance(i, j) <= eps {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::VecPoints;

    fn line() -> VecPoints {
        VecPoints::new(vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
    }

    #[test]
    fn range_query_includes_self() {
        let p = line();
        assert_eq!(range_query(&p, 0, 1.0), vec![0, 1]);
        assert_eq!(range_query(&p, 1, 1.0), vec![0, 1, 2]);
        assert_eq!(range_query(&p, 3, 0.5), vec![3]);
    }

    #[test]
    fn all_range_queries_match_per_point_queries() {
        let p = line();
        let expected: Vec<Vec<usize>> = (0..4).map(|i| range_query(&p, i, 1.0)).collect();
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                all_range_queries_with(&p, 1.0, threads),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn knn_sorted_by_distance() {
        let p = line();
        let nn = knn(&p, 0, 2);
        assert_eq!(nn, vec![(1, 1.0), (2, 2.0)]);
        let nn = knn(&p, 0, 10);
        assert_eq!(nn.len(), 3, "never returns self or phantom points");
    }

    #[test]
    fn knn_ties_break_by_index() {
        let p = VecPoints::new(vec![vec![0.0], vec![1.0], vec![-1.0]]);
        let nn = knn(&p, 0, 2);
        assert_eq!(nn, vec![(1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn k_distance_curve_shapes() {
        let p = line();
        // 1-distances: [1, 1, 1, 8] → sorted descending [8, 1, 1, 1].
        assert_eq!(k_distance_curve(&p, 1), vec![8.0, 1.0, 1.0, 1.0]);
        // k larger than available neighbours → all infinite.
        let curve = k_distance_curve(&p, 5);
        assert!(curve.iter().all(|d| d.is_infinite()));
        // Duplicate points put a 0 on the curve.
        let dup = VecPoints::new(vec![vec![0.0], vec![0.0], vec![9.0]]);
        let curve = k_distance_curve(&dup, 1);
        assert_eq!(curve.last(), Some(&0.0));
    }

    #[test]
    fn all_pairs_within_eps() {
        let p = line();
        assert_eq!(all_pairs_within(&p, 1.0), vec![(0, 1), (1, 2)]);
        assert_eq!(all_pairs_within(&p, 2.0), vec![(0, 1), (0, 2), (1, 2)]);
        assert!(all_pairs_within(&p, 0.5).is_empty());
    }
}
