//! DBSCAN — Density-Based Spatial Clustering of Applications with Noise.
//!
//! A from-scratch implementation of Ester et al. (KDD 1996), matching the
//! semantics of the scikit-learn implementation the paper benchmarks as
//! its *exact clustering* baseline: points with at least `min_pts`
//! neighbours within `eps` (neighbourhoods include the point itself) are
//! *core points*; clusters are grown from core points by breadth-first
//! expansion; non-core points reachable from a core point join its cluster
//! as border points; everything else is noise (label −1).
//!
//! For the role-grouping problem the paper fixes `min_pts = 2` (a group of
//! two akin roles already matters) and sets `eps = 0` (+ a small float
//! tolerance) to find *identical* roles or `eps = t` to find roles within
//! Hamming distance `t`.

use serde::{Deserialize, Serialize};

use rolediet_matrix::PackedRows;

use crate::metric::PointSet;
use crate::neighbors::{all_range_queries_packed, all_range_queries_with, range_query};
use crate::unionfind::UnionFind;

/// Label assigned to noise points.
pub const NOISE: i64 = -1;

/// DBSCAN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbscanParams {
    /// Maximum distance between two samples for one to be considered in
    /// the neighbourhood of the other (inclusive).
    pub eps: f64,
    /// Number of samples in a neighbourhood (including the point itself)
    /// for a point to be a core point.
    pub min_pts: usize,
}

impl DbscanParams {
    /// Parameters for finding *identical* rows: `eps` slightly above zero
    /// (the paper adds a small ε for float-comparison robustness; all true
    /// distances here are integers so any ε < 1 is exact) and
    /// `min_pts = 2`.
    pub fn exact_duplicates() -> Self {
        DbscanParams {
            eps: 1e-9,
            min_pts: 2,
        }
    }

    /// Parameters for finding rows within Hamming distance `threshold`:
    /// `eps = threshold + ε`, `min_pts = 2`.
    pub fn similar(threshold: usize) -> Self {
        DbscanParams {
            eps: threshold as f64 + 1e-9,
            min_pts: 2,
        }
    }
}

impl Default for DbscanParams {
    fn default() -> Self {
        DbscanParams::exact_duplicates()
    }
}

/// Cluster assignment produced by [`Dbscan::fit`].
///
/// Mirrors scikit-learn's `fit_predict` output: `labels()[i]` is the
/// cluster id of point `i`, or [`NOISE`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterLabels {
    labels: Vec<i64>,
    n_clusters: usize,
}

impl ClusterLabels {
    /// Per-point labels (cluster id or [`NOISE`]).
    pub fn labels(&self) -> &[i64] {
        &self.labels
    }

    /// Number of clusters found.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Number of noise points.
    pub fn n_noise(&self) -> usize {
        self.labels.iter().filter(|&&l| l == NOISE).count()
    }

    /// Clusters as sorted member lists, ordered by cluster id (which is
    /// also the order of their first-discovered member — deterministic).
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_clusters];
        for (i, &l) in self.labels.iter().enumerate() {
            if l >= 0 {
                out[l as usize].push(i);
            }
        }
        out
    }
}

/// The DBSCAN algorithm. See the [module docs](self) for semantics.
///
/// # Examples
///
/// ```
/// use rolediet_cluster::dbscan::{Dbscan, DbscanParams};
/// use rolediet_cluster::metric::VecPoints;
///
/// let pts = VecPoints::new(vec![
///     vec![0.0], vec![0.1], vec![0.2],   // a dense blob
///     vec![9.0],                          // noise
/// ]);
/// let labels = Dbscan::new(DbscanParams { eps: 0.15, min_pts: 2 }).fit(&pts);
/// assert_eq!(labels.n_clusters(), 1);
/// assert_eq!(labels.n_noise(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dbscan {
    params: DbscanParams,
}

impl Dbscan {
    /// Creates a DBSCAN instance with the given parameters.
    pub fn new(params: DbscanParams) -> Self {
        Dbscan { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> DbscanParams {
        self.params
    }

    /// Runs the clustering over `points`.
    ///
    /// Deterministic: points are seeded in index order, so cluster ids are
    /// stable across runs.
    pub fn fit<P: PointSet>(&self, points: &P) -> ClusterLabels {
        self.expand(points.len(), |p| range_query(points, p, self.params.eps))
    }

    /// Like [`fit`](Self::fit), but all `n` region queries — the O(n²)
    /// part — are precomputed on `threads` worker threads (via the shared
    /// [`parallel`](rolediet_matrix::parallel) substrate), and for
    /// `min_pts <= 2` the cluster assignment itself runs as the parallel
    /// connected-components grouping kernel
    /// ([`group_cached_with`](Self::group_cached_with)) instead of the
    /// sequential expansion.
    ///
    /// Produces exactly the same labels as `fit` at every thread count
    /// (asserted in tests and proptests) at the cost of `O(Σ|N(p)|)`
    /// extra memory. This is the parallel ablation of DESIGN.md
    /// (`abl-parallel`); scikit-learn's `n_jobs` parallelizes only the
    /// region queries.
    pub fn fit_with_threads<P: PointSet + Sync>(
        &self,
        points: &P,
        threads: usize,
    ) -> ClusterLabels {
        let n = points.len();
        let threads = threads.max(1);
        if n == 0 {
            return self.fit(points);
        }
        if self.params.min_pts <= 2 {
            // Every clustered point is a core point, so DBSCAN reduces to
            // connected components of the eps-graph (DESIGN.md §5).
            let neighborhoods = all_range_queries_with(points, self.params.eps, threads);
            return self.group_cached_with(&neighborhoods, threads);
        }
        if threads == 1 {
            return self.fit(points);
        }
        let neighborhoods = all_range_queries_with(points, self.params.eps, threads);
        self.fit_cached(&neighborhoods)
    }

    /// Like [`fit_with_threads`](Self::fit_with_threads), but the O(n²)
    /// region queries run through the packed bounded-distance engine
    /// ([`PackedRows`]) instead of scalar [`PointSet`] distance calls.
    ///
    /// The engine returns exactly the scalar neighbour lists (pinned by
    /// proptests in `rolediet-matrix` and the oracle tests in
    /// [`neighbors`](crate::neighbors)), so the labels are bit-identical
    /// to `fit` on the equivalent Hamming point set at every thread
    /// count.
    pub fn fit_packed_with(&self, rows: &PackedRows, threads: usize) -> ClusterLabels {
        let threads = threads.max(1);
        let neighborhoods = all_range_queries_packed(rows, self.params.eps, threads);
        if self.params.min_pts <= 2 {
            self.group_cached_with(&neighborhoods, threads)
        } else {
            self.fit_cached(&neighborhoods)
        }
    }

    /// Sequential DBSCAN expansion over pre-computed neighbour lists
    /// (`neighborhoods[p]` must be `range_query(points, p, eps)`).
    ///
    /// This is the general-`min_pts` path and the test/ablation oracle
    /// the grouping kernel is pinned against; it borrows the cached
    /// lists, so repeated timing runs share one precompute.
    pub fn fit_cached(&self, neighborhoods: &[Vec<usize>]) -> ClusterLabels {
        self.expand(neighborhoods.len(), |p| neighborhoods[p].as_slice())
    }

    /// Parallel grouping kernel: DBSCAN as connected components over
    /// cached neighbour lists, for `min_pts <= 2`.
    ///
    /// With `min_pts <= 2` and a symmetric distance, `q ∈ N(p)` implies
    /// `p ∈ N(q)`, so both endpoints of every eps-edge are core points:
    /// there are no border points and clusters are exactly the connected
    /// components of the eps-graph. The kernel enumerates eps-edges with
    /// [`par_map_ranges`](rolediet_matrix::parallel::par_map_ranges)
    /// (one local [`UnionFind`] forest per range, processing only
    /// `q > p` so each unordered edge is seen once — the dedup is hoisted
    /// out of the region callback because the cached lists are already
    /// sorted and duplicate-free), joins the forests in range order
    /// ([`UnionFind::merge_from`]), then runs a canonical relabeling
    /// pass: scanning `p` ascending and assigning a fresh cluster id at
    /// each component's first-seen member reproduces the sequential
    /// expansion's ids (which ascend by smallest cluster member)
    /// bit-identically at every thread count. Noise (`|N(p)| < min_pts`)
    /// stays [`NOISE`].
    ///
    /// # Panics
    ///
    /// Panics if `min_pts > 2` (border points would exist, breaking the
    /// reduction), if a neighbour index is out of range, or if the lists
    /// are asymmetric (a noise point appears in a core point's list —
    /// impossible under a metric), identically at every thread count.
    pub fn group_cached_with(&self, neighborhoods: &[Vec<usize>], threads: usize) -> ClusterLabels {
        assert!(
            self.params.min_pts <= 2,
            "grouping kernel requires min_pts <= 2 (no border points)"
        );
        let n = neighborhoods.len();
        let min_pts = self.params.min_pts;
        let mut uf = rolediet_matrix::parallel::par_map_reduce_ranges(
            n,
            threads.max(1),
            |range| {
                let mut local = UnionFind::new(n);
                for p in range {
                    let neigh = &neighborhoods[p];
                    if neigh.len() < min_pts {
                        continue; // noise contributes no edges
                    }
                    for &q in neigh {
                        assert!(q < n, "neighbour index {q} out of range for {n} points");
                        if q > p {
                            local.union(p, q);
                        }
                    }
                }
                local
            },
            |acc, part| acc.merge_from(&part),
        )
        .unwrap_or_else(|| UnionFind::new(0));
        // Canonical relabeling: first-seen member of each component (in
        // ascending index order) opens its cluster id.
        let mut labels = vec![NOISE; n];
        let mut cluster_of_root = vec![NOISE; n];
        let mut next: i64 = 0;
        let mut n_noise = 0usize;
        for (p, neigh) in neighborhoods.iter().enumerate() {
            if neigh.len() < min_pts {
                n_noise += 1;
                continue;
            }
            let root = uf.find(p);
            if cluster_of_root[root] == NOISE {
                cluster_of_root[root] = next;
                next += 1;
            }
            labels[p] = cluster_of_root[root];
        }
        assert_eq!(
            uf.components(),
            next as usize + n_noise,
            "grouping kernel: noise point merged into a cluster (asymmetric neighbourhoods)"
        );
        ClusterLabels {
            labels,
            n_clusters: next as usize,
        }
    }

    /// Like [`fit`](Self::fit), but region queries go through a
    /// pre-built [`VpTree`](crate::vptree::VpTree) instead of brute
    /// force. Still exact — the tree prunes with the triangle inequality
    /// — and label-identical to `fit`; the speedup depends on how
    /// clusterable the data is (ablation `abl-signature`).
    ///
    /// # Panics
    ///
    /// Panics if `tree` was built over a different point set size.
    pub fn fit_with_vptree<P: PointSet>(
        &self,
        points: &P,
        tree: &crate::vptree::VpTree,
    ) -> ClusterLabels {
        assert_eq!(tree.len(), points.len(), "index/point-set size mismatch");
        self.expand(points.len(), |p| {
            tree.range_query(points, p, self.params.eps)
        })
    }

    /// Core DBSCAN expansion over a region-query oracle. Generic over the
    /// oracle's return type so cached callers can lend `&[usize]` rows
    /// without cloning while lazy callers keep returning owned `Vec`s.
    fn expand<R, F>(&self, n: usize, mut region: F) -> ClusterLabels
    where
        R: std::borrow::Borrow<[usize]>,
        F: FnMut(usize) -> R,
    {
        const UNVISITED: i64 = -2;
        let mut labels = vec![UNVISITED; n];
        let mut cluster: i64 = 0;
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for p in 0..n {
            if labels[p] != UNVISITED {
                continue;
            }
            let neigh = region(p);
            let neigh = neigh.borrow();
            if neigh.len() < self.params.min_pts {
                labels[p] = NOISE;
                continue;
            }
            // p is a core point: start a new cluster and expand.
            labels[p] = cluster;
            queue.clear();
            for &q in neigh {
                if q != p {
                    queue.push_back(q);
                }
            }
            while let Some(q) = queue.pop_front() {
                if labels[q] == NOISE {
                    labels[q] = cluster; // border point
                    continue;
                }
                if labels[q] != UNVISITED {
                    continue;
                }
                labels[q] = cluster;
                let q_neigh = region(q);
                let q_neigh = q_neigh.borrow();
                if q_neigh.len() >= self.params.min_pts {
                    for &r in q_neigh {
                        if labels[r] == UNVISITED || labels[r] == NOISE {
                            queue.push_back(r);
                        }
                    }
                }
            }
            cluster += 1;
        }
        ClusterLabels {
            labels,
            n_clusters: cluster as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{BinaryMetric, BinaryRows, VecPoints};
    use rolediet_matrix::BitMatrix;

    #[test]
    fn two_blobs_and_noise() {
        let pts = VecPoints::new(vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![100.0, 100.0],
        ]);
        let labels = Dbscan::new(DbscanParams {
            eps: 0.2,
            min_pts: 2,
        })
        .fit(&pts);
        assert_eq!(labels.n_clusters(), 2);
        assert_eq!(labels.n_noise(), 1);
        assert_eq!(labels.clusters(), vec![vec![0, 1, 2], vec![3, 4]]);
        assert_eq!(labels.labels()[5], NOISE);
    }

    #[test]
    fn chain_connectivity_through_core_points() {
        // 0-1-2-3 each 1.0 apart: with eps=1, every interior point is core
        // (3 neighbours incl. self), endpoints border → one cluster.
        let pts = VecPoints::new(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let labels = Dbscan::new(DbscanParams {
            eps: 1.0,
            min_pts: 3,
        })
        .fit(&pts);
        assert_eq!(labels.n_clusters(), 1);
        assert_eq!(labels.clusters(), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn border_points_join_their_core_cluster() {
        // min_pts=3, eps=1.0 on the line 0,1,2,3.5: only point 1 is core
        // ({0,1,2}); 0 and 2 are border points of its cluster; 3.5 is
        // noise. Point 0 is visited first and provisionally marked noise,
        // then rescued as a border point — the classic DBSCAN subtlety.
        let pts = VecPoints::new(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.5]]);
        let labels = Dbscan::new(DbscanParams {
            eps: 1.0,
            min_pts: 3,
        })
        .fit(&pts);
        assert_eq!(labels.n_clusters(), 1);
        assert_eq!(labels.clusters(), vec![vec![0, 1, 2]]);
        assert_eq!(labels.labels()[3], NOISE);
    }

    #[test]
    fn all_noise_when_eps_too_small() {
        let pts = VecPoints::new(vec![vec![0.0], vec![1.0], vec![2.0]]);
        let labels = Dbscan::new(DbscanParams {
            eps: 0.1,
            min_pts: 2,
        })
        .fit(&pts);
        assert_eq!(labels.n_clusters(), 0);
        assert_eq!(labels.n_noise(), 3);
        assert!(labels.clusters().is_empty());
    }

    #[test]
    fn exact_duplicates_on_binary_rows() {
        // Paper usage: eps≈0, min_pts=2 finds identical role rows.
        let ruam = BitMatrix::from_rows_of_indices(
            5,
            4,
            &[vec![0], vec![1, 2], vec![3], vec![1, 2], vec![0]],
        )
        .unwrap();
        let points = BinaryRows::new(&ruam, BinaryMetric::Hamming);
        let labels = Dbscan::new(DbscanParams::exact_duplicates()).fit(&points);
        assert_eq!(labels.clusters(), vec![vec![0, 4], vec![1, 3]]);
        assert_eq!(labels.labels()[2], NOISE);
    }

    #[test]
    fn similar_threshold_on_binary_rows() {
        // Rows 0 and 1 differ in exactly one position; row 2 in three.
        let ruam =
            BitMatrix::from_rows_of_indices(3, 6, &[vec![0, 1, 2], vec![0, 1, 2, 3], vec![4, 5]])
                .unwrap();
        let points = BinaryRows::new(&ruam, BinaryMetric::Hamming);
        let labels = Dbscan::new(DbscanParams::similar(1)).fit(&points);
        assert_eq!(labels.clusters(), vec![vec![0, 1]]);
    }

    #[test]
    fn transitive_chaining_of_similarity_is_dbscan_semantics() {
        // Rows: {}, {0}, {0,1} — each adjacent pair at Hamming 1, the ends
        // at Hamming 2. With min_pts=2 every point is core → one chained
        // cluster. This is exactly why "similar" groups need admin review:
        // group diameter can exceed the threshold.
        let ruam = BitMatrix::from_rows_of_indices(3, 4, &[vec![], vec![0], vec![0, 1]]).unwrap();
        let points = BinaryRows::new(&ruam, BinaryMetric::Hamming);
        let labels = Dbscan::new(DbscanParams::similar(1)).fit(&points);
        assert_eq!(labels.clusters(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn parallel_fit_matches_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let rows: Vec<Vec<usize>> = (0..150)
            .map(|_| (0..24).filter(|_| rng.gen_bool(0.2)).collect())
            .collect();
        let m = BitMatrix::from_rows_of_indices(150, 24, &rows).unwrap();
        let points = BinaryRows::new(&m, BinaryMetric::Hamming);
        for params in [
            DbscanParams::exact_duplicates(),
            DbscanParams::similar(2),
            DbscanParams {
                eps: 4.0,
                min_pts: 3,
            },
        ] {
            let dbscan = Dbscan::new(params);
            let seq = dbscan.fit(&points);
            for threads in [1usize, 2, 4, 7] {
                assert_eq!(
                    dbscan.fit_with_threads(&points, threads),
                    seq,
                    "params {params:?}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn packed_fit_matches_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut rows: Vec<Vec<usize>> = (0..120)
            .map(|_| (0..40).filter(|_| rng.gen_bool(0.12)).collect())
            .collect();
        rows.push(Vec::new());
        rows.push(rows[0].clone());
        let m = BitMatrix::from_rows_of_indices(122, 40, &rows).unwrap();
        let points = BinaryRows::new(&m, BinaryMetric::Hamming);
        for packed in [
            PackedRows::packed_from_matrix(&m, 3),
            PackedRows::sparse_from_matrix(&m, 3),
        ] {
            for params in [
                DbscanParams::exact_duplicates(),
                DbscanParams::similar(3),
                DbscanParams {
                    eps: 5.0,
                    min_pts: 3,
                },
            ] {
                let dbscan = Dbscan::new(params);
                let seq = dbscan.fit(&points);
                for threads in [1usize, 2, 4, 8] {
                    assert_eq!(
                        dbscan.fit_packed_with(&packed, threads),
                        seq,
                        "params {params:?}, threads {threads}, packed {}",
                        packed.is_packed()
                    );
                }
            }
        }
    }

    #[test]
    fn grouping_kernel_matches_fit_on_edge_cases() {
        let cases: Vec<(&str, VecPoints)> = vec![
            ("empty input", VecPoints::new(vec![])),
            ("single point", VecPoints::new(vec![vec![0.0]])),
            (
                "all noise",
                VecPoints::new(vec![vec![0.0], vec![10.0], vec![20.0], vec![30.0]]),
            ),
            (
                "one giant cluster",
                VecPoints::new((0..40).map(|i| vec![i as f64 * 0.1]).collect()),
            ),
            (
                "duplicate rows",
                VecPoints::new(vec![
                    vec![1.0],
                    vec![1.0],
                    vec![1.0],
                    vec![50.0],
                    vec![9.0],
                    vec![9.0],
                ]),
            ),
        ];
        for min_pts in [0usize, 1, 2] {
            let dbscan = Dbscan::new(DbscanParams { eps: 0.5, min_pts });
            for (name, pts) in &cases {
                let seq = dbscan.fit(pts);
                for threads in [1usize, 2, 4, 8] {
                    let neigh = crate::neighbors::all_range_queries_with(pts, 0.5, threads);
                    assert_eq!(
                        dbscan.group_cached_with(&neigh, threads),
                        seq,
                        "kernel vs fit: {name}, min_pts={min_pts}, threads={threads}"
                    );
                    assert_eq!(
                        dbscan.fit_with_threads(pts, threads),
                        seq,
                        "fit_with_threads: {name}, min_pts={min_pts}, threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn fit_cached_matches_fit() {
        let pts = VecPoints::new(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.5], vec![9.0]]);
        for params in [
            DbscanParams {
                eps: 1.0,
                min_pts: 3,
            },
            DbscanParams::similar(1),
        ] {
            let dbscan = Dbscan::new(params);
            let neigh = crate::neighbors::all_range_queries_with(&pts, params.eps, 4);
            assert_eq!(dbscan.fit_cached(&neigh), dbscan.fit(&pts), "{params:?}");
        }
    }

    /// Runs `f`, which must panic, with the default hook silenced, and
    /// returns the panic message.
    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = std::panic::catch_unwind(f).expect_err("closure must panic");
        std::panic::set_hook(prev);
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .expect("panic payload should be a message")
    }

    #[test]
    fn relabeling_panic_parity_across_thread_counts() {
        // Hand-built asymmetric lists: point 2 claims only itself (noise)
        // but core point 0 lists it — impossible under a metric. The
        // relabeling invariant must trip with the same message at every
        // thread count (panic parity: workers re-raise via resume_unwind).
        let asymmetric: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![0, 1], vec![2]];
        // And an out-of-range neighbour index must trip the bound check
        // identically everywhere.
        let out_of_range: Vec<Vec<usize>> = vec![vec![0, 5], vec![0, 1]];
        let dbscan = Dbscan::new(DbscanParams {
            eps: 1.0,
            min_pts: 2,
        });
        let mut messages: Vec<(String, String)> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let (d, lists) = (dbscan.clone(), asymmetric.clone());
            let noise_msg = panic_message(move || {
                d.group_cached_with(&lists, threads);
            });
            assert!(
                noise_msg.contains("noise point merged into a cluster"),
                "threads={threads}: {noise_msg}"
            );
            let (d, lists) = (dbscan.clone(), out_of_range.clone());
            let bound_msg = panic_message(move || {
                d.group_cached_with(&lists, threads);
            });
            assert!(
                bound_msg.contains("out of range"),
                "threads={threads}: {bound_msg}"
            );
            messages.push((noise_msg, bound_msg));
        }
        assert!(
            messages.windows(2).all(|w| w[0] == w[1]),
            "panic messages must not depend on the thread count: {messages:?}"
        );
    }

    #[test]
    fn grouping_kernel_rejects_min_pts_above_two() {
        let dbscan = Dbscan::new(DbscanParams {
            eps: 1.0,
            min_pts: 3,
        });
        let msg = panic_message(move || {
            dbscan.group_cached_with(&[vec![0]], 2);
        });
        assert!(msg.contains("min_pts <= 2"), "{msg}");
    }

    #[test]
    fn vptree_fit_matches_brute_force_fit() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let rows: Vec<Vec<usize>> = (0..120)
            .map(|_| (0..20).filter(|_| rng.gen_bool(0.25)).collect())
            .collect();
        let m = BitMatrix::from_rows_of_indices(120, 20, &rows).unwrap();
        let points = BinaryRows::new(&m, BinaryMetric::Hamming);
        let tree = crate::vptree::VpTree::build(&points, 9);
        for params in [DbscanParams::exact_duplicates(), DbscanParams::similar(2)] {
            let dbscan = Dbscan::new(params);
            assert_eq!(
                dbscan.fit_with_vptree(&points, &tree),
                dbscan.fit(&points),
                "params {params:?}"
            );
        }
    }

    #[test]
    fn parallel_fit_handles_empty_input() {
        let pts = VecPoints::new(vec![]);
        let labels = Dbscan::default().fit_with_threads(&pts, 8);
        assert_eq!(labels.n_clusters(), 0);
    }

    #[test]
    fn empty_input() {
        let pts = VecPoints::new(vec![]);
        let labels = Dbscan::default().fit(&pts);
        assert_eq!(labels.n_clusters(), 0);
        assert!(labels.labels().is_empty());
    }

    #[test]
    fn params_constructors() {
        let p = DbscanParams::exact_duplicates();
        assert!(p.eps < 1.0);
        assert_eq!(p.min_pts, 2);
        let s = DbscanParams::similar(3);
        assert!(s.eps > 3.0 && s.eps < 4.0);
    }
}
