//! DBSCAN — Density-Based Spatial Clustering of Applications with Noise.
//!
//! A from-scratch implementation of Ester et al. (KDD 1996), matching the
//! semantics of the scikit-learn implementation the paper benchmarks as
//! its *exact clustering* baseline: points with at least `min_pts`
//! neighbours within `eps` (neighbourhoods include the point itself) are
//! *core points*; clusters are grown from core points by breadth-first
//! expansion; non-core points reachable from a core point join its cluster
//! as border points; everything else is noise (label −1).
//!
//! For the role-grouping problem the paper fixes `min_pts = 2` (a group of
//! two akin roles already matters) and sets `eps = 0` (+ a small float
//! tolerance) to find *identical* roles or `eps = t` to find roles within
//! Hamming distance `t`.

use serde::{Deserialize, Serialize};

use crate::metric::PointSet;
use crate::neighbors::range_query;

/// Label assigned to noise points.
pub const NOISE: i64 = -1;

/// DBSCAN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbscanParams {
    /// Maximum distance between two samples for one to be considered in
    /// the neighbourhood of the other (inclusive).
    pub eps: f64,
    /// Number of samples in a neighbourhood (including the point itself)
    /// for a point to be a core point.
    pub min_pts: usize,
}

impl DbscanParams {
    /// Parameters for finding *identical* rows: `eps` slightly above zero
    /// (the paper adds a small ε for float-comparison robustness; all true
    /// distances here are integers so any ε < 1 is exact) and
    /// `min_pts = 2`.
    pub fn exact_duplicates() -> Self {
        DbscanParams {
            eps: 1e-9,
            min_pts: 2,
        }
    }

    /// Parameters for finding rows within Hamming distance `threshold`:
    /// `eps = threshold + ε`, `min_pts = 2`.
    pub fn similar(threshold: usize) -> Self {
        DbscanParams {
            eps: threshold as f64 + 1e-9,
            min_pts: 2,
        }
    }
}

impl Default for DbscanParams {
    fn default() -> Self {
        DbscanParams::exact_duplicates()
    }
}

/// Cluster assignment produced by [`Dbscan::fit`].
///
/// Mirrors scikit-learn's `fit_predict` output: `labels()[i]` is the
/// cluster id of point `i`, or [`NOISE`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterLabels {
    labels: Vec<i64>,
    n_clusters: usize,
}

impl ClusterLabels {
    /// Per-point labels (cluster id or [`NOISE`]).
    pub fn labels(&self) -> &[i64] {
        &self.labels
    }

    /// Number of clusters found.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Number of noise points.
    pub fn n_noise(&self) -> usize {
        self.labels.iter().filter(|&&l| l == NOISE).count()
    }

    /// Clusters as sorted member lists, ordered by cluster id (which is
    /// also the order of their first-discovered member — deterministic).
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_clusters];
        for (i, &l) in self.labels.iter().enumerate() {
            if l >= 0 {
                out[l as usize].push(i);
            }
        }
        out
    }
}

/// The DBSCAN algorithm. See the [module docs](self) for semantics.
///
/// # Examples
///
/// ```
/// use rolediet_cluster::dbscan::{Dbscan, DbscanParams};
/// use rolediet_cluster::metric::VecPoints;
///
/// let pts = VecPoints::new(vec![
///     vec![0.0], vec![0.1], vec![0.2],   // a dense blob
///     vec![9.0],                          // noise
/// ]);
/// let labels = Dbscan::new(DbscanParams { eps: 0.15, min_pts: 2 }).fit(&pts);
/// assert_eq!(labels.n_clusters(), 1);
/// assert_eq!(labels.n_noise(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dbscan {
    params: DbscanParams,
}

impl Dbscan {
    /// Creates a DBSCAN instance with the given parameters.
    pub fn new(params: DbscanParams) -> Self {
        Dbscan { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> DbscanParams {
        self.params
    }

    /// Runs the clustering over `points`.
    ///
    /// Deterministic: points are seeded in index order, so cluster ids are
    /// stable across runs.
    pub fn fit<P: PointSet>(&self, points: &P) -> ClusterLabels {
        self.expand(points.len(), |p| range_query(points, p, self.params.eps))
    }

    /// Like [`fit`](Self::fit), but all `n` region queries — the O(n²)
    /// part — are precomputed on `threads` worker threads (via the shared
    /// [`parallel`](rolediet_matrix::parallel) substrate) before the
    /// (cheap, sequential) cluster expansion runs over the cached
    /// neighbour lists.
    ///
    /// Produces exactly the same labels as `fit` (asserted in tests) at
    /// the cost of `O(Σ|N(p)|)` extra memory. This is the parallel
    /// ablation of DESIGN.md (`abl-parallel`); scikit-learn's `n_jobs`
    /// parallelizes the same stage.
    pub fn fit_with_threads<P: PointSet + Sync>(
        &self,
        points: &P,
        threads: usize,
    ) -> ClusterLabels {
        let n = points.len();
        if threads.max(1) == 1 || n == 0 {
            return self.fit(points);
        }
        let mut neighborhoods = rolediet_matrix::parallel::par_map_rows(n, threads, |range| {
            range
                .map(|p| range_query(points, p, self.params.eps))
                .collect()
        });
        // Each point's neighbourhood is consumed at most once during
        // expansion, so it can be moved out rather than cloned.
        self.expand(n, |p| std::mem::take(&mut neighborhoods[p]))
    }

    /// Like [`fit`](Self::fit), but region queries go through a
    /// pre-built [`VpTree`](crate::vptree::VpTree) instead of brute
    /// force. Still exact — the tree prunes with the triangle inequality
    /// — and label-identical to `fit`; the speedup depends on how
    /// clusterable the data is (ablation `abl-signature`).
    ///
    /// # Panics
    ///
    /// Panics if `tree` was built over a different point set size.
    pub fn fit_with_vptree<P: PointSet>(
        &self,
        points: &P,
        tree: &crate::vptree::VpTree,
    ) -> ClusterLabels {
        assert_eq!(tree.len(), points.len(), "index/point-set size mismatch");
        self.expand(points.len(), |p| {
            tree.range_query(points, p, self.params.eps)
        })
    }

    /// Core DBSCAN expansion over a region-query oracle.
    fn expand<F: FnMut(usize) -> Vec<usize>>(&self, n: usize, mut region: F) -> ClusterLabels {
        const UNVISITED: i64 = -2;
        let mut labels = vec![UNVISITED; n];
        let mut cluster: i64 = 0;
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for p in 0..n {
            if labels[p] != UNVISITED {
                continue;
            }
            let neigh = region(p);
            if neigh.len() < self.params.min_pts {
                labels[p] = NOISE;
                continue;
            }
            // p is a core point: start a new cluster and expand.
            labels[p] = cluster;
            queue.clear();
            for &q in &neigh {
                if q != p {
                    queue.push_back(q);
                }
            }
            while let Some(q) = queue.pop_front() {
                if labels[q] == NOISE {
                    labels[q] = cluster; // border point
                    continue;
                }
                if labels[q] != UNVISITED {
                    continue;
                }
                labels[q] = cluster;
                let q_neigh = region(q);
                if q_neigh.len() >= self.params.min_pts {
                    for &r in &q_neigh {
                        if labels[r] == UNVISITED || labels[r] == NOISE {
                            queue.push_back(r);
                        }
                    }
                }
            }
            cluster += 1;
        }
        ClusterLabels {
            labels,
            n_clusters: cluster as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{BinaryMetric, BinaryRows, VecPoints};
    use rolediet_matrix::BitMatrix;

    #[test]
    fn two_blobs_and_noise() {
        let pts = VecPoints::new(vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![100.0, 100.0],
        ]);
        let labels = Dbscan::new(DbscanParams {
            eps: 0.2,
            min_pts: 2,
        })
        .fit(&pts);
        assert_eq!(labels.n_clusters(), 2);
        assert_eq!(labels.n_noise(), 1);
        assert_eq!(labels.clusters(), vec![vec![0, 1, 2], vec![3, 4]]);
        assert_eq!(labels.labels()[5], NOISE);
    }

    #[test]
    fn chain_connectivity_through_core_points() {
        // 0-1-2-3 each 1.0 apart: with eps=1, every interior point is core
        // (3 neighbours incl. self), endpoints border → one cluster.
        let pts = VecPoints::new(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let labels = Dbscan::new(DbscanParams {
            eps: 1.0,
            min_pts: 3,
        })
        .fit(&pts);
        assert_eq!(labels.n_clusters(), 1);
        assert_eq!(labels.clusters(), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn border_points_join_their_core_cluster() {
        // min_pts=3, eps=1.0 on the line 0,1,2,3.5: only point 1 is core
        // ({0,1,2}); 0 and 2 are border points of its cluster; 3.5 is
        // noise. Point 0 is visited first and provisionally marked noise,
        // then rescued as a border point — the classic DBSCAN subtlety.
        let pts = VecPoints::new(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.5]]);
        let labels = Dbscan::new(DbscanParams {
            eps: 1.0,
            min_pts: 3,
        })
        .fit(&pts);
        assert_eq!(labels.n_clusters(), 1);
        assert_eq!(labels.clusters(), vec![vec![0, 1, 2]]);
        assert_eq!(labels.labels()[3], NOISE);
    }

    #[test]
    fn all_noise_when_eps_too_small() {
        let pts = VecPoints::new(vec![vec![0.0], vec![1.0], vec![2.0]]);
        let labels = Dbscan::new(DbscanParams {
            eps: 0.1,
            min_pts: 2,
        })
        .fit(&pts);
        assert_eq!(labels.n_clusters(), 0);
        assert_eq!(labels.n_noise(), 3);
        assert!(labels.clusters().is_empty());
    }

    #[test]
    fn exact_duplicates_on_binary_rows() {
        // Paper usage: eps≈0, min_pts=2 finds identical role rows.
        let ruam = BitMatrix::from_rows_of_indices(
            5,
            4,
            &[vec![0], vec![1, 2], vec![3], vec![1, 2], vec![0]],
        )
        .unwrap();
        let points = BinaryRows::new(&ruam, BinaryMetric::Hamming);
        let labels = Dbscan::new(DbscanParams::exact_duplicates()).fit(&points);
        assert_eq!(labels.clusters(), vec![vec![0, 4], vec![1, 3]]);
        assert_eq!(labels.labels()[2], NOISE);
    }

    #[test]
    fn similar_threshold_on_binary_rows() {
        // Rows 0 and 1 differ in exactly one position; row 2 in three.
        let ruam =
            BitMatrix::from_rows_of_indices(3, 6, &[vec![0, 1, 2], vec![0, 1, 2, 3], vec![4, 5]])
                .unwrap();
        let points = BinaryRows::new(&ruam, BinaryMetric::Hamming);
        let labels = Dbscan::new(DbscanParams::similar(1)).fit(&points);
        assert_eq!(labels.clusters(), vec![vec![0, 1]]);
    }

    #[test]
    fn transitive_chaining_of_similarity_is_dbscan_semantics() {
        // Rows: {}, {0}, {0,1} — each adjacent pair at Hamming 1, the ends
        // at Hamming 2. With min_pts=2 every point is core → one chained
        // cluster. This is exactly why "similar" groups need admin review:
        // group diameter can exceed the threshold.
        let ruam = BitMatrix::from_rows_of_indices(3, 4, &[vec![], vec![0], vec![0, 1]]).unwrap();
        let points = BinaryRows::new(&ruam, BinaryMetric::Hamming);
        let labels = Dbscan::new(DbscanParams::similar(1)).fit(&points);
        assert_eq!(labels.clusters(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn parallel_fit_matches_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let rows: Vec<Vec<usize>> = (0..150)
            .map(|_| (0..24).filter(|_| rng.gen_bool(0.2)).collect())
            .collect();
        let m = BitMatrix::from_rows_of_indices(150, 24, &rows).unwrap();
        let points = BinaryRows::new(&m, BinaryMetric::Hamming);
        for params in [
            DbscanParams::exact_duplicates(),
            DbscanParams::similar(2),
            DbscanParams {
                eps: 4.0,
                min_pts: 3,
            },
        ] {
            let dbscan = Dbscan::new(params);
            let seq = dbscan.fit(&points);
            for threads in [1usize, 2, 4, 7] {
                assert_eq!(
                    dbscan.fit_with_threads(&points, threads),
                    seq,
                    "params {params:?}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn vptree_fit_matches_brute_force_fit() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let rows: Vec<Vec<usize>> = (0..120)
            .map(|_| (0..20).filter(|_| rng.gen_bool(0.25)).collect())
            .collect();
        let m = BitMatrix::from_rows_of_indices(120, 20, &rows).unwrap();
        let points = BinaryRows::new(&m, BinaryMetric::Hamming);
        let tree = crate::vptree::VpTree::build(&points, 9);
        for params in [DbscanParams::exact_duplicates(), DbscanParams::similar(2)] {
            let dbscan = Dbscan::new(params);
            assert_eq!(
                dbscan.fit_with_vptree(&points, &tree),
                dbscan.fit(&points),
                "params {params:?}"
            );
        }
    }

    #[test]
    fn parallel_fit_handles_empty_input() {
        let pts = VecPoints::new(vec![]);
        let labels = Dbscan::default().fit_with_threads(&pts, 8);
        assert_eq!(labels.n_clusters(), 0);
    }

    #[test]
    fn empty_input() {
        let pts = VecPoints::new(vec![]);
        let labels = Dbscan::default().fit(&pts);
        assert_eq!(labels.n_clusters(), 0);
        assert!(labels.labels().is_empty());
    }

    #[test]
    fn params_constructors() {
        let p = DbscanParams::exact_duplicates();
        assert!(p.eps < 1.0);
        assert_eq!(p.min_pts, 2);
        let s = DbscanParams::similar(3);
        assert!(s.eps > 3.0 && s.eps < 4.0);
    }
}
