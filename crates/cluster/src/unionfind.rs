//! Disjoint-set (union-find) structure.

/// Union-find with path compression and union by rank.
///
/// Turns a stream of "these two roles belong together" pairs into final
/// groups. Used to assemble duplicate groups (T4) and similar-role
/// candidate components (T5) from pairwise evidence.
///
/// # Examples
///
/// ```
/// use rolediet_cluster::UnionFind;
///
/// let mut uf = UnionFind::new(5);
/// uf.union(0, 3);
/// uf.union(3, 4);
/// assert!(uf.connected(0, 4));
/// assert_eq!(uf.groups_min_size(2), vec![vec![0, 3, 4]]);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not fit in `u32`.
    pub fn new(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "UnionFind size overflows u32");
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x` without mutating the structure
    /// (no path compression).
    ///
    /// Read-only, so parallel workers can resolve roots over a shared
    /// `&UnionFind`; union-by-rank bounds the walk at O(log n) links.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find_root(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        root
    }

    /// Finds the representative of `x`, compressing the path.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Absorbs another forest over the same element space: after the
    /// call, `a` and `b` are connected in `self` iff they were connected
    /// in `self` *or* in `other`.
    ///
    /// This is the join step of the parallel grouping kernels: each
    /// worker builds a local forest from its range's edges, and the
    /// forests are absorbed in range order — a deterministic,
    /// lock-free merge whose final components never depend on the
    /// thread count. Cost is O(n α(n)): one union per element of
    /// `other` that is not its own root.
    ///
    /// # Panics
    ///
    /// Panics if the two structures track different element counts.
    pub fn merge_from(&mut self, other: &UnionFind) {
        assert_eq!(
            self.len(),
            other.len(),
            "merge_from requires forests over the same element space"
        );
        for x in 0..other.len() {
            let root = other.find_root(x);
            if root != x {
                self.union(x, root);
            }
        }
    }

    /// Raw forest arrays plus the tracked component count, for the
    /// structural validator.
    pub(crate) fn raw_parts(&self) -> (&[u32], &[u8], usize) {
        (&self.parent, &self.rank, self.components)
    }

    /// Test-only back door: overwrites a parent link so the validator's
    /// negative cases can construct forests no public path produces.
    #[cfg(test)]
    pub(crate) fn corrupt_parent(&mut self, x: usize, p: usize) {
        self.parent[x] = p as u32;
    }

    /// Test-only back door: overwrites the cached component count.
    #[cfg(test)]
    pub(crate) fn corrupt_components(&mut self, components: usize) {
        self.components = components;
    }

    /// All groups with at least `min_size` members.
    ///
    /// **Stable contract** (relied on by every grouping consumer):
    /// members of each group are sorted ascending, and groups are
    /// ordered by their smallest member — unconditionally, regardless
    /// of the union order that built the forest or of insertion order.
    pub fn groups_min_size(&mut self, min_size: usize) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for x in 0..n {
            by_root.entry(self.find(x)).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root
            .into_values()
            .filter(|g| g.len() >= min_size)
            .collect();
        // Members are pushed in ascending element order above, but the
        // sorted output is a documented invariant, not an accident of
        // the iteration: enforce it unconditionally.
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort_unstable_by_key(|g| g[0]);
        groups
    }

    /// [`groups_min_size`](Self::groups_min_size) with the root
    /// resolution and group assembly split over `threads` workers.
    ///
    /// Phase one resolves every element's root in parallel
    /// (read-only [`find_root`](Self::find_root), joined in range
    /// order); phase two buckets members per root with a counting sort;
    /// phase three partitions the *root* index space by range and
    /// concatenates each range's groups in order. Every phase is
    /// deterministic, so the output is bit-identical to
    /// `groups_min_size` for every thread count (pinned by tests).
    pub fn groups_min_size_with(&mut self, min_size: usize, threads: usize) -> Vec<Vec<usize>> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let shared = &*self;
        let roots: Vec<u32> = rolediet_matrix::parallel::par_map_rows(n, threads, |range| {
            range.map(|x| shared.find_root(x) as u32).collect()
        });
        // Counting sort of members by root: offsets, then a stable
        // ascending fill, so each root's member slice is sorted.
        let mut counts = vec![0u32; n];
        for &r in &roots {
            counts[r as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + counts[i] as usize;
        }
        let mut members = vec![0u32; n];
        let mut cursor = offsets[..n].to_vec();
        for (x, &r) in roots.iter().enumerate() {
            members[cursor[r as usize]] = x as u32;
            cursor[r as usize] += 1;
        }
        // Partition roots by range; concatenation in range order yields
        // groups ascending by root. A group's smallest member *is* not
        // its root in general, so the public order (by smallest member)
        // needs the final sort.
        let mut groups: Vec<Vec<usize>> =
            rolediet_matrix::parallel::par_map_rows(n, threads, |range| {
                range
                    .filter_map(|r| {
                        let g = &members[offsets[r]..offsets[r + 1]];
                        (!g.is_empty() && g.len() >= min_size)
                            .then(|| g.iter().map(|&x| x as usize).collect())
                    })
                    .collect()
            });
        groups.sort_unstable_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.components(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.connected(0, 1));
        assert!(uf.groups_min_size(2).is_empty());
        assert_eq!(uf.groups_min_size(1), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(1, 2));
        assert!(!uf.connected(0, 4));
        assert_eq!(uf.groups_min_size(2), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.components(), 1);
        let g = uf.groups_min_size(2);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].len(), n);
        // After find() with compression all parents point near the root.
        let root = uf.find(0);
        assert_eq!(uf.find(n - 1), root);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.components(), 0);
        assert!(uf.groups_min_size(1).is_empty());
        assert!(uf.groups_min_size_with(1, 4).is_empty());
    }

    #[test]
    fn find_root_is_read_only_and_agrees_with_find() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(5, 6);
        for x in 0..8 {
            assert_eq!(uf.find_root(x), uf.clone().find(x), "element {x}");
        }
    }

    #[test]
    fn merge_from_unions_connectivity() {
        let mut a = UnionFind::new(6);
        a.union(0, 1);
        let mut b = UnionFind::new(6);
        b.union(1, 2);
        b.union(4, 5);
        a.merge_from(&b);
        assert!(a.connected(0, 2));
        assert!(a.connected(4, 5));
        assert!(!a.connected(0, 4));
        assert_eq!(a.components(), 3);
        assert_eq!(a.groups_min_size(2), vec![vec![0, 1, 2], vec![4, 5]]);
    }

    #[test]
    fn merge_from_is_idempotent_on_equal_forests() {
        let mut a = UnionFind::new(5);
        a.union(0, 4);
        let b = a.clone();
        a.merge_from(&b);
        assert_eq!(a.components(), 4);
        assert_eq!(a.groups_min_size(2), vec![vec![0, 4]]);
    }

    #[test]
    #[should_panic(expected = "same element space")]
    fn merge_from_rejects_size_mismatch() {
        let mut a = UnionFind::new(3);
        a.merge_from(&UnionFind::new(4));
    }

    #[test]
    fn range_joined_forests_match_single_forest() {
        // The kernel shape: edges split over ranges, local forests,
        // joined in range order — must equal unioning every edge in one
        // forest, for every partition.
        let edges: Vec<(usize, usize)> = vec![(0, 9), (1, 2), (2, 3), (9, 1), (5, 6), (7, 8)];
        let mut reference = UnionFind::new(10);
        for &(a, b) in &edges {
            reference.union(a, b);
        }
        let expected = reference.groups_min_size(1);
        for threads in [1usize, 2, 3, 4, 8] {
            let forests =
                rolediet_matrix::parallel::par_map_ranges(edges.len(), threads, |range| {
                    let mut uf = UnionFind::new(10);
                    for &(a, b) in &edges[range] {
                        uf.union(a, b);
                    }
                    uf
                });
            let mut iter = forests.into_iter();
            let mut joined = iter.next().unwrap();
            for f in iter {
                joined.merge_from(&f);
            }
            assert_eq!(
                joined.components(),
                reference.components(),
                "threads={threads}"
            );
            assert_eq!(joined.groups_min_size(1), expected, "threads={threads}");
        }
    }

    #[test]
    fn groups_are_sorted_regardless_of_union_order() {
        // Union in an order that leaves high-rank roots on high indices;
        // the sorted contract must hold anyway.
        let mut uf = UnionFind::new(7);
        uf.union(6, 2);
        uf.union(2, 4);
        uf.union(5, 0);
        let groups = uf.groups_min_size(2);
        assert_eq!(groups, vec![vec![0, 5], vec![2, 4, 6]]);
        for g in &groups {
            assert!(g.windows(2).all(|w| w[0] < w[1]), "members sorted");
        }
    }

    #[test]
    fn parallel_groups_match_sequential_for_every_thread_count() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        for n in [1usize, 2, 17, 400] {
            let mut uf = UnionFind::new(n);
            for _ in 0..n {
                uf.union(rng.gen_range(0..n), rng.gen_range(0..n));
            }
            for min_size in [1usize, 2, 3] {
                let expected = uf.clone().groups_min_size(min_size);
                for threads in [1usize, 2, 4, 8] {
                    assert_eq!(
                        uf.clone().groups_min_size_with(min_size, threads),
                        expected,
                        "n={n} min_size={min_size} threads={threads}"
                    );
                }
            }
        }
    }
}
