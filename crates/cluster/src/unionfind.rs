//! Disjoint-set (union-find) structure.

/// Union-find with path compression and union by rank.
///
/// Turns a stream of "these two roles belong together" pairs into final
/// groups. Used to assemble duplicate groups (T4) and similar-role
/// candidate components (T5) from pairwise evidence.
///
/// # Examples
///
/// ```
/// use rolediet_cluster::UnionFind;
///
/// let mut uf = UnionFind::new(5);
/// uf.union(0, 3);
/// uf.union(3, 4);
/// assert!(uf.connected(0, 4));
/// assert_eq!(uf.groups_min_size(2), vec![vec![0, 3, 4]]);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not fit in `u32`.
    pub fn new(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "UnionFind size overflows u32");
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x`, compressing the path.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// All groups with at least `min_size` members, each sorted ascending,
    /// ordered by their smallest member.
    pub fn groups_min_size(&mut self, min_size: usize) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..n {
            by_root.entry(self.find(x)).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root
            .into_values()
            .filter(|g| g.len() >= min_size)
            .collect();
        // members were pushed in ascending order already
        groups.sort_unstable_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.components(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.connected(0, 1));
        assert!(uf.groups_min_size(2).is_empty());
        assert_eq!(uf.groups_min_size(1), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(1, 2));
        assert!(!uf.connected(0, 4));
        assert_eq!(uf.groups_min_size(2), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.components(), 1);
        let g = uf.groups_min_size(2);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].len(), n);
        // After find() with compression all parents point near the root.
        let root = uf.find(0);
        assert_eq!(uf.find(n - 1), root);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.components(), 0);
        assert!(uf.groups_min_size(1).is_empty());
    }
}
