//! HNSW — Hierarchical Navigable Small World graphs.
//!
//! A from-scratch implementation of Malkov & Yashunin (2018), the
//! *approximate clustering* baseline of the paper (there via the
//! `datasketch` library). Points are inserted into a stack of
//! progressively denser proximity graphs; queries greedily descend from
//! the sparse top layer and run a beam search (width `ef`) at layer 0.
//!
//! Approximate means *recall < 1 is possible*: a query can miss true
//! neighbours. The paper argues this is acceptable for RBAC cleanup
//! because the detector runs periodically and converges over runs; the
//! [`recall`](crate::recall) module measures exactly this trade-off.
//!
//! # Construction
//!
//! [`Hnsw::build`] is the textbook sequential insert: each node searches
//! the graph built so far and commits its links before the next node
//! starts. [`Hnsw::build_batched`] processes nodes in *generations*
//! instead: a generation of pending nodes runs its greedy-descent + beam
//! searches concurrently against the frozen graph of all previously
//! committed generations (phase 1, read-only), then a sequential commit
//! phase applies the recorded candidate lists in node-id order (phase 2).
//! A commit re-runs the search only when an earlier commit *within the
//! same generation* touched a link list the recorded search read (or
//! moved the entry point) — the bounded patch-up pass — so the final
//! graph is a pure function of `(points, params)`: bit-identical to the
//! sequential insert at every thread count and generation size (see
//! DESIGN.md §5 for the argument).
//!
//! Determinism: level draws come from a per-node splitmix64 stream keyed
//! on `(params.seed, node)`, so a node's level is independent of how
//! insertions are batched.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::metric::PointSet;

/// Total order wrapper for non-NaN distances.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Dist(f64);

impl Eq for Dist {}

impl PartialOrd for Dist {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dist {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // IEEE total order: agrees with partial_cmp on the non-NaN,
        // non-negative-zero distances this wrapper ever holds, and
        // removes the panic path entirely.
        self.0.total_cmp(&other.0)
    }
}

/// HNSW hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HnswParams {
    /// Maximum number of links per node on layers above 0; layer 0 allows
    /// `2 * m`.
    pub m: usize,
    /// Beam width while inserting.
    pub ef_construction: usize,
    /// Default beam width while searching (can be overridden per query).
    pub ef_search: usize,
    /// Use the diversity-aware neighbour selection heuristic (Algorithm 4
    /// of Malkov & Yashunin) when choosing a node's links at insert time,
    /// instead of simply taking the `m` closest candidates.
    ///
    /// The heuristic keeps a candidate only if it is closer to the new
    /// node than to every already-selected neighbour, which preserves
    /// connectivity between distant clusters — exactly the failure mode
    /// that loses duplicate-role groups sitting far from the bulk of the
    /// data. Costs a little extra insert time.
    pub select_heuristic: bool,
    /// Seed for the per-node level-assignment streams.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 16,
            ef_construction: 200,
            ef_search: 64,
            select_heuristic: true,
            seed: 0xD1E7,
        }
    }
}

/// Epoch-stamped visited marks for [`Hnsw::search_layer_in`], reused
/// across searches. Replaces a fresh `vec![false; n]` per beam search —
/// an O(n) allocation + memset that dominated build time on large
/// indexes (O(n²) bytes touched over a whole build).
#[derive(Debug, Clone, Default)]
struct SearchScratch {
    visited: Vec<u32>,
    epoch: u32,
}

impl SearchScratch {
    /// Starts a new search: all marks become stale at once.
    fn begin(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: clear stale marks once every 2^32 searches.
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 1;
        }
    }

    /// Marks `i` visited; returns `true` on the first visit this search.
    fn visit(&mut self, i: usize) -> bool {
        if self.visited[i] == self.epoch {
            false
        } else {
            self.visited[i] = self.epoch;
            true
        }
    }
}

/// Epoch-stamped per-layer dirty marks for the batched build's commit
/// phase: `(node, layer)` is dirty ⇔ the *bytes* of `links[node][layer]`
/// changed during the current generation's commits. Marking is exact —
/// a backlink push whose post-shrink list comes out byte-identical (the
/// routine case once a duplicate-cluster hub saturates and the diversity
/// heuristic rejects newcomers) marks nothing, and a layer-0 write never
/// invalidates an upper-layer read. Layers ≥ 32 share bit 31
/// (conservative; levels that high do not occur in practice).
#[derive(Debug, Clone)]
struct DirtyMarks {
    /// Last generation that touched node `i` (lazy mask reset).
    stamps: Vec<u32>,
    /// Layer bits of node `i`, valid only while `stamps[i] == generation`.
    masks: Vec<u32>,
    generation: u32,
}

/// Encodes a `(node, layer)` link-list read for [`InsertPlan::reads`].
fn encode_read(node: usize, layer: usize) -> u64 {
    ((node as u64) << 5) | layer.min(31) as u64
}

impl DirtyMarks {
    /// Marks nothing and reports nothing dirty (the sequential build,
    /// where no speculative plan ever consults the marks).
    fn disabled() -> Self {
        DirtyMarks {
            stamps: Vec::new(),
            masks: Vec::new(),
            generation: 0,
        }
    }

    fn sized(n: usize) -> Self {
        DirtyMarks {
            stamps: vec![0; n],
            masks: vec![0; n],
            generation: 0,
        }
    }

    /// Whether marks are consulted at all — lets the commit path skip
    /// the exact byte-comparison bookkeeping in the sequential build.
    fn tracking(&self) -> bool {
        !self.stamps.is_empty()
    }

    /// Starts the next generation: all marks become clean at once.
    fn next_generation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamps.fill(0);
            self.generation = 1;
        }
    }

    fn mark(&mut self, i: usize, layer: usize) {
        let Some(s) = self.stamps.get_mut(i) else {
            return;
        };
        if *s != self.generation {
            *s = self.generation;
            self.masks[i] = 0;
        }
        self.masks[i] |= 1u32 << layer.min(31);
    }

    /// Checks one encoded `(node, layer)` read (see [`encode_read`]).
    fn is_dirty_read(&self, read: u64) -> bool {
        let i = (read >> 5) as usize;
        self.stamps.get(i).is_some_and(|&s| s == self.generation)
            && self.masks[i] & (1u32 << (read & 31)) != 0
    }
}

/// Phase-1 product of the batched build: one pending node's candidate
/// lists, computed speculatively against the frozen graph, plus the ids
/// whose link lists the searches read (the conflict set the phase-2
/// commit checks against [`DirtyMarks`]).
#[derive(Debug, Clone)]
struct InsertPlan {
    node: usize,
    level: usize,
    /// Beam results per shared layer, in search order (top shared layer
    /// first — the order the sequential insert processes them).
    nearest_per_layer: Vec<Vec<(usize, f64)>>,
    /// Every `(node, layer)` link list the greedy descent or a beam
    /// search iterated ([`encode_read`]), sorted and deduplicated.
    reads: Vec<u64>,
}

/// A built HNSW index over the points `0..n` of some [`PointSet`].
///
/// The index stores only graph structure; distances are recomputed against
/// the point set on demand, so the same index type serves dense rows,
/// sparse rows, packed rows and test point clouds.
///
/// # Examples
///
/// ```
/// use rolediet_cluster::hnsw::{Hnsw, HnswParams};
/// use rolediet_cluster::metric::VecPoints;
///
/// let pts = VecPoints::new((0..100).map(|i| vec![i as f64]).collect());
/// let index = Hnsw::build(&pts, HnswParams::default());
/// let hits = index.knn_by_index(&pts, 50, 3, 64);
/// assert_eq!(hits[0].0, 50); // the query itself at distance 0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hnsw {
    params: HnswParams,
    /// links[node][layer] → neighbour ids; a node exists on layers
    /// `0..=levels[node]`.
    links: Vec<Vec<Vec<u32>>>,
    levels: Vec<usize>,
    entry: Option<usize>,
    max_level: usize,
}

impl Hnsw {
    /// Builds an index over all points of `points`, inserting one node at
    /// a time in index order — the sequential oracle the batched build is
    /// asserted against.
    ///
    /// # Panics
    ///
    /// Panics if `params.m < 2`.
    pub fn build<P: PointSet>(points: &P, params: HnswParams) -> Self {
        assert!(params.m >= 2, "m must be at least 2");
        let mut index = Hnsw::empty(params, points.len());
        let ml = 1.0 / (params.m as f64).ln();
        let mut scratch = SearchScratch::default();
        let mut dirty = DirtyMarks::disabled();
        for node in 0..points.len() {
            let level = Self::level_for(params.seed, node, ml);
            index.insert(points, node, level, &mut scratch, &mut dirty);
        }
        index
    }

    /// Builds the same index as [`Hnsw::build`] — bit-identical `links`,
    /// `levels` and `entry` — through the two-phase batched algorithm:
    /// generations of `batch` pending nodes search the frozen graph
    /// concurrently on `threads` workers, then commit sequentially in
    /// node-id order, re-running a search only where an earlier commit of
    /// the same generation invalidated it.
    ///
    /// `batch == 0` falls back to the sequential insert (the ablation
    /// baseline). The output is independent of both `batch` and
    /// `threads`.
    ///
    /// # Panics
    ///
    /// Panics if `params.m < 2`.
    pub fn build_batched<P: PointSet + Sync>(
        points: &P,
        params: HnswParams,
        batch: usize,
        threads: usize,
    ) -> Self {
        if batch == 0 {
            return Self::build(points, params);
        }
        assert!(params.m >= 2, "m must be at least 2");
        let n = points.len();
        let mut index = Hnsw::empty(params, n);
        let ml = 1.0 / (params.m as f64).ln();
        let mut scratch = SearchScratch::default();
        let mut dirty = DirtyMarks::sized(n);
        let mut start = 0usize;
        while start < n {
            dirty.next_generation();
            let len = batch.min(n - start);
            // Phase 1 — speculative search: every pending node of the
            // generation runs its greedy descent + beam searches against
            // the frozen graph, concurrently and read-only (results join
            // in range order, so the plan list is thread-count
            // independent).
            let plans: Vec<InsertPlan> =
                rolediet_matrix::parallel::par_map_rows(len, threads, |range| {
                    let mut scratch = SearchScratch::default();
                    range
                        .map(|k| {
                            let node = start + k;
                            let level = Self::level_for(params.seed, node, ml);
                            index.plan_insert(points, node, level, &mut scratch)
                        })
                        .collect()
                });
            // Phase 2 — sequential commit in node-id order. A plan is
            // applied verbatim only when the sequential insert would
            // provably have recomputed it: the entry point is where the
            // speculation left it and no link list the speculation read
            // was touched by an earlier commit of this generation.
            let frozen_entry = index.entry;
            let frozen_max = index.max_level;
            for plan in &plans {
                let clean = index.entry == frozen_entry
                    && index.max_level == frozen_max
                    && plan.reads.iter().all(|&r| !dirty.is_dirty_read(r));
                if clean {
                    index.apply_plan(points, plan, &mut dirty);
                } else {
                    // Patch-up: re-run the genuine sequential insert for
                    // this node (its searches now also see the nodes
                    // committed earlier in this generation).
                    index.insert(points, plan.node, plan.level, &mut scratch, &mut dirty);
                }
            }
            start += len;
        }
        index
    }

    fn empty(params: HnswParams, capacity: usize) -> Self {
        Hnsw {
            params,
            links: Vec::with_capacity(capacity),
            levels: Vec::with_capacity(capacity),
            entry: None,
            max_level: 0,
        }
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> HnswParams {
        self.params
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Link lists: `links()[node][layer]` are the neighbour ids of
    /// `node` on `layer` (exposed for oracle-identity tests and benches).
    pub fn links(&self) -> &[Vec<Vec<u32>>] {
        &self.links
    }

    /// Top layer of each node.
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// The entry point of the top layer, if any node is indexed.
    pub fn entry(&self) -> Option<usize> {
        self.entry
    }

    /// The highest occupied layer.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Level draw for `node`: an exponential draw from a per-node
    /// splitmix64 stream keyed on `(seed, node)` (the same finalizer as
    /// `synth::stream`), so levels are a pure function of the node id —
    /// independent of insertion order and batching.
    fn level_for(seed: u64, node: usize, ml: f64) -> usize {
        let mut z = seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut rng = StdRng::seed_from_u64(z ^ (z >> 31));
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        ((-u.ln()) * ml).floor() as usize
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    /// The sequential insert: search the current graph layer by layer and
    /// commit links as each layer's beam completes. Mutations are
    /// recorded in `dirty` so the batched build can detect conflicts.
    fn insert<P: PointSet>(
        &mut self,
        points: &P,
        node: usize,
        level: usize,
        scratch: &mut SearchScratch,
        dirty: &mut DirtyMarks,
    ) {
        self.links.push(vec![Vec::new(); level + 1]);
        self.levels.push(level);
        let Some(entry) = self.entry else {
            self.entry = Some(node);
            self.max_level = level;
            return;
        };
        let dist = |j: usize| points.distance(node, j);
        let mut ep = entry;
        // Greedy descent through layers above the node's level.
        let top = self.max_level;
        for layer in ((level + 1)..=top).rev() {
            ep = self.greedy_closest(&dist, ep, layer, None);
        }
        // Beam insert on the shared layers. A layer's pushes only touch
        // that layer's link lists, so they never perturb the searches of
        // the layers below — the isolation property the batched build's
        // speculative phase relies on.
        for layer in (0..=level.min(top)).rev() {
            let nearest = self.search_layer_in(
                &dist,
                &[ep],
                self.params.ef_construction,
                layer,
                scratch,
                None,
            );
            if let Some(best) = self.commit_layer(points, node, layer, &nearest, dirty) {
                ep = best;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(node);
        }
    }

    /// The read-only half of [`Hnsw::insert`], run against the frozen
    /// graph: records each shared layer's beam result and every link list
    /// the searches iterated.
    fn plan_insert<P: PointSet>(
        &self,
        points: &P,
        node: usize,
        level: usize,
        scratch: &mut SearchScratch,
    ) -> InsertPlan {
        let mut plan = InsertPlan {
            node,
            level,
            nearest_per_layer: Vec::new(),
            reads: Vec::new(),
        };
        let Some(entry) = self.entry else {
            return plan;
        };
        let dist = |j: usize| points.distance(node, j);
        let mut ep = entry;
        let top = self.max_level;
        for layer in ((level + 1)..=top).rev() {
            ep = self.greedy_closest(&dist, ep, layer, Some(&mut plan.reads));
        }
        for layer in (0..=level.min(top)).rev() {
            let nearest = self.search_layer_in(
                &dist,
                &[ep],
                self.params.ef_construction,
                layer,
                scratch,
                Some(&mut plan.reads),
            );
            if let Some(&(best, _)) = nearest.first() {
                ep = best;
            }
            plan.nearest_per_layer.push(nearest);
        }
        plan.reads.sort_unstable();
        plan.reads.dedup();
        plan
    }

    /// The commit half of [`Hnsw::insert`] fed from a recorded plan (the
    /// batched build's fast path). Sound exactly when the conflict check
    /// passed: the entry point is unchanged and no list the plan read is
    /// dirty, so by induction over the search's heap operations the
    /// sequential insert's searches would reproduce
    /// `plan.nearest_per_layer` verbatim — a live beam can only reach a
    /// node committed earlier in the generation through a mutated (hence
    /// dirty, hence excluded) link list.
    fn apply_plan<P: PointSet>(&mut self, points: &P, plan: &InsertPlan, dirty: &mut DirtyMarks) {
        self.links.push(vec![Vec::new(); plan.level + 1]);
        self.levels.push(plan.level);
        if self.entry.is_none() {
            self.entry = Some(plan.node);
            self.max_level = plan.level;
            return;
        }
        let top = self.max_level;
        for (nearest, layer) in plan
            .nearest_per_layer
            .iter()
            .zip((0..=plan.level.min(top)).rev())
        {
            self.commit_layer(points, plan.node, layer, nearest, dirty);
        }
        if plan.level > self.max_level {
            self.max_level = plan.level;
            self.entry = Some(plan.node);
        }
    }

    /// One layer of the insert's commit half: choose `node`'s links among
    /// `nearest`, push them bidirectionally, trim overfull neighbour
    /// lists, and return the next layer's entry point.
    fn commit_layer<P: PointSet>(
        &mut self,
        points: &P,
        node: usize,
        layer: usize,
        nearest: &[(usize, f64)],
        dirty: &mut DirtyMarks,
    ) -> Option<usize> {
        let m = self.params.m;
        let chosen: Vec<u32> = if self.params.select_heuristic {
            Self::select_neighbors_heuristic(points, node, nearest, m)
        } else {
            nearest.iter().take(m).map(|&(id, _)| id as u32).collect()
        };
        let cap = self.max_links(layer);
        for &nb in &chosen {
            self.links[node][layer].push(nb);
            let nbl = nb as usize;
            if !dirty.tracking() {
                // Sequential build: nothing consults the marks, skip the
                // byte-exact bookkeeping below.
                self.links[nbl][layer].push(node as u32);
                self.shrink(points, nbl, layer);
            } else if self.links[nbl][layer].len() < cap {
                // Below capacity the push lands verbatim — the list
                // genuinely grew.
                self.links[nbl][layer].push(node as u32);
                dirty.mark(nbl, layer);
            } else {
                // At capacity the shrink may select the exact same list
                // (saturated hubs reject most newcomers under the
                // diversity heuristic). Mark dirty only when the stored
                // bytes actually change — that is precisely the
                // condition under which a concurrent speculative read
                // could have diverged.
                let before = self.links[nbl][layer].clone();
                self.links[nbl][layer].push(node as u32);
                self.shrink(points, nbl, layer);
                if self.links[nbl][layer] != before {
                    dirty.mark(nbl, layer);
                }
            }
        }
        nearest.first().map(|&(best, _)| best)
    }

    /// Algorithm 4 of the HNSW paper: scan candidates in ascending
    /// distance to `base`, keeping one only if it is closer to `base`
    /// than to every neighbour already kept (then pad with the nearest
    /// rejected candidates if fewer than `m` survive).
    fn select_neighbors_heuristic<P: PointSet>(
        points: &P,
        _base: usize,
        candidates: &[(usize, f64)],
        m: usize,
    ) -> Vec<u32> {
        let mut kept: Vec<(usize, f64)> = Vec::with_capacity(m);
        let mut rejected: Vec<usize> = Vec::new();
        for &(cand, d_base) in candidates {
            if kept.len() >= m {
                break;
            }
            let dominated = kept.iter().any(|&(k, _)| points.distance(cand, k) < d_base);
            if dominated {
                rejected.push(cand);
            } else {
                kept.push((cand, d_base));
            }
        }
        let mut out: Vec<u32> = kept.into_iter().map(|(id, _)| id as u32).collect();
        for r in rejected {
            if out.len() >= m {
                break;
            }
            out.push(r as u32);
        }
        out
    }

    /// Trims `node`'s links on `layer` back to capacity, keeping the
    /// closest.
    fn shrink<P: PointSet>(&mut self, points: &P, node: usize, layer: usize) {
        let cap = self.max_links(layer);
        let list = &mut self.links[node][layer];
        if list.len() <= cap {
            return;
        }
        // Dedup by id first (bidirectional inserts can add repeats), then
        // keep `cap` links — with the diversity heuristic when enabled
        // (as in hnswlib, which prunes with the same heuristic it selects
        // with; plain closest-first pruning is what orphans nodes inside
        // duplicate-heavy clusters).
        list.sort_unstable();
        list.dedup();
        if list.len() <= cap {
            return;
        }
        let mut with_d: Vec<(usize, f64)> = self.links[node][layer]
            .iter()
            .map(|&nb| (nb as usize, points.distance(node, nb as usize)))
            .collect();
        with_d.sort_by_key(|&(id, d)| (Dist(d), id));
        let kept: Vec<u32> = if self.params.select_heuristic {
            Self::select_neighbors_heuristic(points, node, &with_d, cap)
        } else {
            with_d.iter().take(cap).map(|&(id, _)| id as u32).collect()
        };
        self.links[node][layer] = kept;
    }

    /// Greedy walk on one layer to the locally closest node to the query.
    /// When `reads` is given, every node whose link list the walk scans
    /// is recorded.
    fn greedy_closest(
        &self,
        dist: &impl Fn(usize) -> f64,
        mut ep: usize,
        layer: usize,
        mut reads: Option<&mut Vec<u64>>,
    ) -> usize {
        let mut best = dist(ep);
        loop {
            if let Some(r) = reads.as_deref_mut() {
                r.push(encode_read(ep, layer));
            }
            let mut improved = false;
            for &nb in &self.links[ep][layer] {
                let d = dist(nb as usize);
                if d < best {
                    best = d;
                    ep = nb as usize;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam search on one layer. Returns up to `ef` nodes sorted by
    /// ascending distance. When `reads` is given, every node whose link
    /// list the beam iterates is recorded.
    fn search_layer_in(
        &self,
        dist: &impl Fn(usize) -> f64,
        entry_points: &[usize],
        ef: usize,
        layer: usize,
        scratch: &mut SearchScratch,
        mut reads: Option<&mut Vec<u64>>,
    ) -> Vec<(usize, f64)> {
        scratch.begin(self.links.len());
        // candidates: min-heap by distance; results: max-heap by distance.
        let mut candidates: BinaryHeap<Reverse<(Dist, usize)>> = BinaryHeap::new();
        let mut results: BinaryHeap<(Dist, usize)> = BinaryHeap::new();
        for &ep in entry_points {
            if !scratch.visit(ep) {
                continue;
            }
            let d = Dist(dist(ep));
            candidates.push(Reverse((d, ep)));
            results.push((d, ep));
        }
        while let Some(Reverse((d, node))) = candidates.pop() {
            if let Some(&(worst, _)) = results.peek() {
                if results.len() >= ef && d > worst {
                    break;
                }
            }
            if layer < self.links[node].len() {
                if let Some(r) = reads.as_deref_mut() {
                    r.push(encode_read(node, layer));
                }
                for &nb in &self.links[node][layer] {
                    let nb = nb as usize;
                    if !scratch.visit(nb) {
                        continue;
                    }
                    let dnb = Dist(dist(nb));
                    if results.len() < ef || results.peek().is_some_and(|&(worst, _)| dnb < worst) {
                        candidates.push(Reverse((dnb, nb)));
                        results.push((dnb, nb));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
        }
        let mut out: Vec<(usize, f64)> = results.into_iter().map(|(d, n)| (n, d.0)).collect();
        out.sort_by(|a, b| Dist(a.1).cmp(&Dist(b.1)).then(a.0.cmp(&b.0)));
        out
    }

    /// Approximate k-nearest-neighbour query given a distance oracle from
    /// the query to any indexed point.
    ///
    /// Returns up to `k` `(index, distance)` pairs sorted by distance. The
    /// beam width is `max(ef, k)`.
    pub fn search_with<F: Fn(usize) -> f64>(
        &self,
        dist: F,
        k: usize,
        ef: usize,
    ) -> Vec<(usize, f64)> {
        let mut scratch = SearchScratch::default();
        self.search_internal(dist, k, ef, None, &mut scratch)
    }

    fn search_internal(
        &self,
        dist: impl Fn(usize) -> f64,
        k: usize,
        ef: usize,
        extra_entry: Option<usize>,
        scratch: &mut SearchScratch,
    ) -> Vec<(usize, f64)> {
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        let mut ep = entry;
        for layer in (1..=self.max_level).rev() {
            ep = self.greedy_closest(&dist, ep, layer, None);
        }
        let mut entries = vec![ep];
        if let Some(extra) = extra_entry {
            entries.push(extra);
        }
        let mut out = self.search_layer_in(&dist, &entries, ef.max(k), 0, scratch, None);
        out.truncate(k);
        out
    }

    /// Approximate k-NN of an indexed point (the point itself is always
    /// the first hit at distance 0).
    ///
    /// Besides the usual entry-point descent, the layer-0 beam is also
    /// seeded *at the query node itself*. Aggressive link pruning can
    /// leave a node with no incoming links (a known HNSW failure mode,
    /// especially on data with many exact duplicates — precisely the RBAC
    /// case); since self-queries know the node's id, starting there too
    /// restores its out-neighbourhood at zero cost.
    ///
    /// # Panics
    ///
    /// Panics if `query >= points.len()`.
    pub fn knn_by_index<P: PointSet>(
        &self,
        points: &P,
        query: usize,
        k: usize,
        ef: usize,
    ) -> Vec<(usize, f64)> {
        assert!(query < points.len(), "query index out of range");
        let mut scratch = SearchScratch::default();
        self.search_internal(
            |j| points.distance(query, j),
            k,
            ef,
            Some(query),
            &mut scratch,
        )
    }

    /// [`knn_by_index`](Self::knn_by_index) for every indexed point, with
    /// the queries split over `threads` workers via
    /// [`parallel`](rolediet_matrix::parallel).
    ///
    /// The probe phase is read-only, so result `q` is exactly what
    /// `knn_by_index(points, q, k, ef)` returns — for every thread count.
    /// Each worker reuses one visited-marks scratch across its queries.
    pub fn knn_batch<P: PointSet + Sync>(
        &self,
        points: &P,
        k: usize,
        ef: usize,
        threads: usize,
    ) -> Vec<Vec<(usize, f64)>> {
        rolediet_matrix::parallel::par_map_rows(self.len(), threads, |range| {
            let mut scratch = SearchScratch::default();
            range
                .map(|q| {
                    self.search_internal(|j| points.distance(q, j), k, ef, Some(q), &mut scratch)
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{BinaryMetric, BinaryRows, PackedPointSet, VecPoints};
    use crate::neighbors::knn as exact_knn;
    use rolediet_matrix::BitMatrix;

    fn grid_points(n: usize) -> VecPoints {
        // n points on a line — easy geometry with unambiguous neighbours.
        VecPoints::new((0..n).map(|i| vec![i as f64]).collect())
    }

    #[test]
    fn empty_and_singleton() {
        let pts = VecPoints::new(vec![]);
        let idx = Hnsw::build(&pts, HnswParams::default());
        assert!(idx.is_empty());
        assert!(idx.search_with(|_| 0.0, 3, 16).is_empty());

        let one = VecPoints::new(vec![vec![1.0]]);
        let idx = Hnsw::build(&one, HnswParams::default());
        assert_eq!(idx.len(), 1);
        let hits = idx.knn_by_index(&one, 0, 5, 16);
        assert_eq!(hits, vec![(0, 0.0)]);
    }

    #[test]
    fn finds_self_and_true_neighbours_on_line() {
        let pts = grid_points(200);
        let idx = Hnsw::build(&pts, HnswParams::default());
        for q in [0usize, 17, 99, 199] {
            let hits = idx.knn_by_index(&pts, q, 3, 64);
            assert_eq!(hits[0], (q, 0.0), "self is the closest hit");
            let approx: Vec<usize> = hits.iter().skip(1).map(|&(i, _)| i).collect();
            let exact: Vec<usize> = exact_knn(&pts, q, 2).into_iter().map(|(i, _)| i).collect();
            // On this trivial geometry the index should be exact.
            assert_eq!(approx, exact, "query {q}");
        }
    }

    #[test]
    fn high_recall_on_random_binary_rows() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let rows: Vec<Vec<usize>> = (0..300)
            .map(|_| {
                (0..64)
                    .filter(|_| rng.gen_bool(0.2))
                    .collect::<Vec<usize>>()
            })
            .collect();
        let m = BitMatrix::from_rows_of_indices(300, 64, &rows).unwrap();
        let pts = BinaryRows::new(&m, BinaryMetric::Hamming);
        let idx = Hnsw::build(&pts, HnswParams::default());
        let mut found = 0usize;
        let mut total = 0usize;
        for q in 0..300 {
            let exact: std::collections::HashSet<usize> =
                exact_knn(&pts, q, 5).into_iter().map(|(i, _)| i).collect();
            let approx: std::collections::HashSet<usize> = idx
                .knn_by_index(&pts, q, 6, 128)
                .into_iter()
                .map(|(i, _)| i)
                .filter(|&i| i != q)
                .collect();
            // Compare by distance values (ties make identity comparisons flaky).
            let kth = exact_knn(&pts, q, 5).last().map(|&(_, d)| d).unwrap();
            total += exact.len();
            found += approx
                .iter()
                .filter(|&&i| pts.distance(q, i) <= kth)
                .count()
                .min(exact.len());
        }
        let recall = found as f64 / total as f64;
        assert!(recall > 0.9, "recall {recall} too low");
    }

    #[test]
    fn duplicate_points_are_found_at_distance_zero() {
        // The paper's use case: identical role rows must surface as
        // 0-distance neighbours.
        let m = BitMatrix::from_rows_of_indices(
            6,
            8,
            &[
                vec![0, 1],
                vec![2],
                vec![0, 1],
                vec![3, 4, 5],
                vec![0, 1],
                vec![6],
            ],
        )
        .unwrap();
        let pts = BinaryRows::new(&m, BinaryMetric::Hamming);
        let idx = Hnsw::build(&pts, HnswParams::default());
        let hits = idx.knn_by_index(&pts, 0, 6, 32);
        let zero_hits: std::collections::HashSet<usize> = hits
            .iter()
            .filter(|&&(_, d)| d == 0.0)
            .map(|&(i, _)| i)
            .collect();
        assert_eq!(zero_hits, [0usize, 2, 4].into_iter().collect());
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = grid_points(100);
        let a = Hnsw::build(&pts, HnswParams::default());
        let b = Hnsw::build(&pts, HnswParams::default());
        for q in 0..100 {
            assert_eq!(
                a.knn_by_index(&pts, q, 4, 32),
                b.knn_by_index(&pts, q, 4, 32)
            );
        }
    }

    #[test]
    fn batched_build_is_bit_identical_to_sequential() {
        // Line geometry plus duplicate-heavy binary rows, across batch
        // sizes and thread counts — the whole index must match the
        // sequential oracle, not just query results.
        let pts = grid_points(150);
        let oracle = Hnsw::build(&pts, HnswParams::default());
        for batch in [1usize, 3, 7, 64, 200] {
            for threads in [1usize, 2, 4, 8] {
                let got = Hnsw::build_batched(&pts, HnswParams::default(), batch, threads);
                assert_eq!(got, oracle, "batch={batch} threads={threads}");
            }
        }

        let rows: Vec<Vec<usize>> = (0..120)
            .map(|i| match i % 4 {
                0 => vec![0, 1],
                1 => vec![2, 3, 5],
                2 => vec![0, 1], // duplicates of the i % 4 == 0 rows
                _ => vec![i % 17],
            })
            .collect();
        let m = BitMatrix::from_rows_of_indices(120, 17, &rows).unwrap();
        let pts = PackedPointSet::from_matrix(&m, 2);
        let oracle = Hnsw::build(&pts, HnswParams::default());
        for batch in [1usize, 7, 64] {
            for threads in [1usize, 2, 8] {
                let got = Hnsw::build_batched(&pts, HnswParams::default(), batch, threads);
                assert_eq!(got, oracle, "batch={batch} threads={threads}");
            }
        }
    }

    #[test]
    fn batch_zero_is_the_sequential_baseline() {
        let pts = grid_points(80);
        assert_eq!(
            Hnsw::build_batched(&pts, HnswParams::default(), 0, 8),
            Hnsw::build(&pts, HnswParams::default())
        );
    }

    #[test]
    fn levels_come_from_per_node_streams() {
        // A node's level depends only on (seed, node id): building over
        // fewer or more points never changes the level of a shared id.
        let small = Hnsw::build(&grid_points(20), HnswParams::default());
        let large = Hnsw::build(&grid_points(90), HnswParams::default());
        assert_eq!(small.levels(), &large.levels()[..20]);
        // Regression pin for the stream itself (seed 0xD1E7, m = 16):
        // a shared-RNG draw sequence would shift whenever insertion
        // batching changed; the keyed stream cannot.
        let ml = 1.0 / 16f64.ln();
        let levels: Vec<usize> = (0..10).map(|n| Hnsw::level_for(0xD1E7, n, ml)).collect();
        assert_eq!(levels, large.levels()[..10]);
        let again: Vec<usize> = (0..10).map(|n| Hnsw::level_for(0xD1E7, n, ml)).collect();
        assert_eq!(levels, again);
        // Different seeds give different streams.
        let other: Vec<usize> = (0..64).map(|n| Hnsw::level_for(1, n, ml)).collect();
        let base: Vec<usize> = (0..64).map(|n| Hnsw::level_for(0xD1E7, n, ml)).collect();
        assert_ne!(other, base);
    }

    #[test]
    fn batch_probe_matches_per_query_probe() {
        let pts = grid_points(120);
        let idx = Hnsw::build(&pts, HnswParams::default());
        let expected: Vec<Vec<(usize, f64)>> =
            (0..120).map(|q| idx.knn_by_index(&pts, q, 4, 32)).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                idx.knn_batch(&pts, 4, 32, threads),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn search_with_external_query() {
        let pts = grid_points(50);
        let idx = Hnsw::build(&pts, HnswParams::default());
        // Query point at 10.4 — nearest indexed points are 10 and 11.
        let hits = idx.search_with(|i| (i as f64 - 10.4).abs(), 2, 32);
        assert_eq!(hits[0].0, 10);
        assert_eq!(hits[1].0, 11);
    }

    #[test]
    fn respects_k_and_ef() {
        let pts = grid_points(100);
        let idx = Hnsw::build(&pts, HnswParams::default());
        assert_eq!(idx.knn_by_index(&pts, 5, 3, 64).len(), 3);
        // ef smaller than k is raised to k.
        assert_eq!(idx.knn_by_index(&pts, 5, 10, 1).len(), 10);
    }

    #[test]
    fn heuristic_selection_prefers_diverse_neighbours() {
        // base at 0; candidates at 1, 1.2 and -5. Simple selection with
        // m=2 takes {1, 1.2}; the heuristic rejects 1.2 (closer to 1 than
        // to base) and keeps -5 on the far side, preserving connectivity.
        let pts = VecPoints::new(vec![vec![0.0], vec![1.0], vec![1.2], vec![-5.0]]);
        let candidates = vec![(1usize, 1.0), (2usize, 1.2), (3usize, 5.0)];
        let chosen = Hnsw::select_neighbors_heuristic(&pts, 0, &candidates, 2);
        assert_eq!(chosen, vec![1, 3]);
        // With room for all, rejected candidates are padded back in.
        let chosen = Hnsw::select_neighbors_heuristic(&pts, 0, &candidates, 3);
        assert_eq!(chosen, vec![1, 3, 2]);
    }

    #[test]
    fn heuristic_index_keeps_high_recall() {
        let pts = grid_points(200);
        let idx = Hnsw::build(
            &pts,
            HnswParams {
                select_heuristic: true,
                ..HnswParams::default()
            },
        );
        for q in [0usize, 50, 150, 199] {
            let hits = idx.knn_by_index(&pts, q, 3, 64);
            assert_eq!(hits[0], (q, 0.0));
            let approx: Vec<usize> = hits.iter().skip(1).map(|&(i, _)| i).collect();
            let exact: Vec<usize> = exact_knn(&pts, q, 2).into_iter().map(|(i, _)| i).collect();
            assert_eq!(approx, exact, "query {q}");
        }
    }

    #[test]
    #[should_panic(expected = "m must be at least 2")]
    fn rejects_degenerate_m() {
        let pts = grid_points(3);
        Hnsw::build(
            &pts,
            HnswParams {
                m: 1,
                ..HnswParams::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "m must be at least 2")]
    fn batched_rejects_degenerate_m() {
        let pts = grid_points(3);
        Hnsw::build_batched(
            &pts,
            HnswParams {
                m: 1,
                ..HnswParams::default()
            },
            4,
            2,
        );
    }
}
