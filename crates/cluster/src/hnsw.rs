//! HNSW — Hierarchical Navigable Small World graphs.
//!
//! A from-scratch implementation of Malkov & Yashunin (2018), the
//! *approximate clustering* baseline of the paper (there via the
//! `datasketch` library). Points are inserted into a stack of
//! progressively denser proximity graphs; queries greedily descend from
//! the sparse top layer and run a beam search (width `ef`) at layer 0.
//!
//! Approximate means *recall < 1 is possible*: a query can miss true
//! neighbours. The paper argues this is acceptable for RBAC cleanup
//! because the detector runs periodically and converges over runs; the
//! [`recall`](crate::recall) module measures exactly this trade-off.
//!
//! Determinism: level draws come from a seeded RNG ([`HnswParams::seed`]),
//! so builds and searches are reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::metric::PointSet;

/// Total order wrapper for non-NaN distances.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Dist(f64);

impl Eq for Dist {}

impl PartialOrd for Dist {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dist {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("distances are never NaN")
    }
}

/// HNSW hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HnswParams {
    /// Maximum number of links per node on layers above 0; layer 0 allows
    /// `2 * m`.
    pub m: usize,
    /// Beam width while inserting.
    pub ef_construction: usize,
    /// Default beam width while searching (can be overridden per query).
    pub ef_search: usize,
    /// Use the diversity-aware neighbour selection heuristic (Algorithm 4
    /// of Malkov & Yashunin) when choosing a node's links at insert time,
    /// instead of simply taking the `m` closest candidates.
    ///
    /// The heuristic keeps a candidate only if it is closer to the new
    /// node than to every already-selected neighbour, which preserves
    /// connectivity between distant clusters — exactly the failure mode
    /// that loses duplicate-role groups sitting far from the bulk of the
    /// data. Costs a little extra insert time.
    pub select_heuristic: bool,
    /// Seed for the level-assignment RNG.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 16,
            ef_construction: 200,
            ef_search: 64,
            select_heuristic: true,
            seed: 0xD1E7,
        }
    }
}

/// A built HNSW index over the points `0..n` of some [`PointSet`].
///
/// The index stores only graph structure; distances are recomputed against
/// the point set on demand, so the same index type serves dense rows,
/// sparse rows and test point clouds.
///
/// # Examples
///
/// ```
/// use rolediet_cluster::hnsw::{Hnsw, HnswParams};
/// use rolediet_cluster::metric::VecPoints;
///
/// let pts = VecPoints::new((0..100).map(|i| vec![i as f64]).collect());
/// let index = Hnsw::build(&pts, HnswParams::default());
/// let hits = index.knn_by_index(&pts, 50, 3, 64);
/// assert_eq!(hits[0].0, 50); // the query itself at distance 0
/// ```
#[derive(Debug, Clone)]
pub struct Hnsw {
    params: HnswParams,
    /// links[node][layer] → neighbour ids; a node exists on layers
    /// `0..=levels[node]`.
    links: Vec<Vec<Vec<u32>>>,
    levels: Vec<usize>,
    entry: Option<usize>,
    max_level: usize,
}

impl Hnsw {
    /// Builds an index over all points of `points`, inserting in index
    /// order.
    pub fn build<P: PointSet>(points: &P, params: HnswParams) -> Self {
        assert!(params.m >= 2, "m must be at least 2");
        let mut index = Hnsw {
            params,
            links: Vec::with_capacity(points.len()),
            levels: Vec::with_capacity(points.len()),
            entry: None,
            max_level: 0,
        };
        let ml = 1.0 / (params.m as f64).ln();
        let mut rng = StdRng::seed_from_u64(params.seed);
        for node in 0..points.len() {
            let level = Self::draw_level(&mut rng, ml);
            index.insert(points, node, level);
        }
        index
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> HnswParams {
        self.params
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    fn draw_level(rng: &mut StdRng, ml: f64) -> usize {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        ((-u.ln()) * ml).floor() as usize
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    fn insert<P: PointSet>(&mut self, points: &P, node: usize, level: usize) {
        self.links.push(vec![Vec::new(); level + 1]);
        self.levels.push(level);
        let Some(entry) = self.entry else {
            self.entry = Some(node);
            self.max_level = level;
            return;
        };
        let dist = |a: usize| points.distance(node, a);
        let mut ep = entry;
        // Greedy descent through layers above the node's level.
        let top = self.max_level;
        for layer in ((level + 1)..=top).rev() {
            ep = self.greedy_closest(&dist, ep, layer);
        }
        // Beam insert on the shared layers.
        for layer in (0..=level.min(top)).rev() {
            let nearest = self.search_layer(&dist, &[ep], self.params.ef_construction, layer);
            let m = self.params.m;
            let chosen: Vec<u32> = if self.params.select_heuristic {
                Self::select_neighbors_heuristic(points, node, &nearest, m)
            } else {
                nearest.iter().take(m).map(|&(id, _)| id as u32).collect()
            };
            for &nb in &chosen {
                self.links[node][layer].push(nb);
                self.links[nb as usize][layer].push(node as u32);
                self.shrink(points, nb as usize, layer);
            }
            if let Some(&(best, _)) = nearest.first() {
                ep = best;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(node);
        }
    }

    /// Algorithm 4 of the HNSW paper: scan candidates in ascending
    /// distance to `base`, keeping one only if it is closer to `base`
    /// than to every neighbour already kept (then pad with the nearest
    /// rejected candidates if fewer than `m` survive).
    fn select_neighbors_heuristic<P: PointSet>(
        points: &P,
        _base: usize,
        candidates: &[(usize, f64)],
        m: usize,
    ) -> Vec<u32> {
        let mut kept: Vec<(usize, f64)> = Vec::with_capacity(m);
        let mut rejected: Vec<usize> = Vec::new();
        for &(cand, d_base) in candidates {
            if kept.len() >= m {
                break;
            }
            let dominated = kept.iter().any(|&(k, _)| points.distance(cand, k) < d_base);
            if dominated {
                rejected.push(cand);
            } else {
                kept.push((cand, d_base));
            }
        }
        let mut out: Vec<u32> = kept.into_iter().map(|(id, _)| id as u32).collect();
        for r in rejected {
            if out.len() >= m {
                break;
            }
            out.push(r as u32);
        }
        out
    }

    /// Trims `node`'s links on `layer` back to capacity, keeping the
    /// closest.
    fn shrink<P: PointSet>(&mut self, points: &P, node: usize, layer: usize) {
        let cap = self.max_links(layer);
        let list = &mut self.links[node][layer];
        if list.len() <= cap {
            return;
        }
        // Dedup by id first (bidirectional inserts can add repeats), then
        // keep `cap` links — with the diversity heuristic when enabled
        // (as in hnswlib, which prunes with the same heuristic it selects
        // with; plain closest-first pruning is what orphans nodes inside
        // duplicate-heavy clusters).
        list.sort_unstable();
        list.dedup();
        if list.len() <= cap {
            return;
        }
        let mut with_d: Vec<(usize, f64)> = self.links[node][layer]
            .iter()
            .map(|&nb| (nb as usize, points.distance(node, nb as usize)))
            .collect();
        with_d.sort_by_key(|&(id, d)| (Dist(d), id));
        let kept: Vec<u32> = if self.params.select_heuristic {
            Self::select_neighbors_heuristic(points, node, &with_d, cap)
        } else {
            with_d.iter().take(cap).map(|&(id, _)| id as u32).collect()
        };
        self.links[node][layer] = kept;
    }

    /// Greedy walk on one layer to the locally closest node to the query.
    fn greedy_closest<F: Fn(usize) -> f64>(&self, dist: &F, mut ep: usize, layer: usize) -> usize {
        let mut best = dist(ep);
        loop {
            let mut improved = false;
            for &nb in &self.links[ep][layer] {
                let d = dist(nb as usize);
                if d < best {
                    best = d;
                    ep = nb as usize;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam search on one layer. Returns up to `ef` nodes sorted by
    /// ascending distance.
    fn search_layer<F: Fn(usize) -> f64>(
        &self,
        dist: &F,
        entry_points: &[usize],
        ef: usize,
        layer: usize,
    ) -> Vec<(usize, f64)> {
        let mut visited = vec![false; self.links.len()];
        // candidates: min-heap by distance; results: max-heap by distance.
        let mut candidates: BinaryHeap<Reverse<(Dist, usize)>> = BinaryHeap::new();
        let mut results: BinaryHeap<(Dist, usize)> = BinaryHeap::new();
        for &ep in entry_points {
            if visited[ep] {
                continue;
            }
            visited[ep] = true;
            let d = Dist(dist(ep));
            candidates.push(Reverse((d, ep)));
            results.push((d, ep));
        }
        while let Some(Reverse((d, node))) = candidates.pop() {
            let worst = results.peek().expect("results nonempty").0;
            if results.len() >= ef && d > worst {
                break;
            }
            if layer < self.links[node].len() {
                for &nb in &self.links[node][layer] {
                    let nb = nb as usize;
                    if visited[nb] {
                        continue;
                    }
                    visited[nb] = true;
                    let dnb = Dist(dist(nb));
                    let worst = results.peek().expect("results nonempty").0;
                    if results.len() < ef || dnb < worst {
                        candidates.push(Reverse((dnb, nb)));
                        results.push((dnb, nb));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
        }
        let mut out: Vec<(usize, f64)> = results.into_iter().map(|(d, n)| (n, d.0)).collect();
        out.sort_by(|a, b| Dist(a.1).cmp(&Dist(b.1)).then(a.0.cmp(&b.0)));
        out
    }

    /// Approximate k-nearest-neighbour query given a distance oracle from
    /// the query to any indexed point.
    ///
    /// Returns up to `k` `(index, distance)` pairs sorted by distance. The
    /// beam width is `max(ef, k)`.
    pub fn search_with<F: Fn(usize) -> f64>(
        &self,
        dist: F,
        k: usize,
        ef: usize,
    ) -> Vec<(usize, f64)> {
        self.search_internal(dist, k, ef, None)
    }

    fn search_internal<F: Fn(usize) -> f64>(
        &self,
        dist: F,
        k: usize,
        ef: usize,
        extra_entry: Option<usize>,
    ) -> Vec<(usize, f64)> {
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        let mut ep = entry;
        for layer in (1..=self.max_level).rev() {
            ep = self.greedy_closest(&dist, ep, layer);
        }
        let mut entries = vec![ep];
        if let Some(extra) = extra_entry {
            entries.push(extra);
        }
        let mut out = self.search_layer(&dist, &entries, ef.max(k), 0);
        out.truncate(k);
        out
    }

    /// Approximate k-NN of an indexed point (the point itself is always
    /// the first hit at distance 0).
    ///
    /// Besides the usual entry-point descent, the layer-0 beam is also
    /// seeded *at the query node itself*. Aggressive link pruning can
    /// leave a node with no incoming links (a known HNSW failure mode,
    /// especially on data with many exact duplicates — precisely the RBAC
    /// case); since self-queries know the node's id, starting there too
    /// restores its out-neighbourhood at zero cost.
    ///
    /// # Panics
    ///
    /// Panics if `query >= points.len()`.
    pub fn knn_by_index<P: PointSet>(
        &self,
        points: &P,
        query: usize,
        k: usize,
        ef: usize,
    ) -> Vec<(usize, f64)> {
        assert!(query < points.len(), "query index out of range");
        self.search_internal(|i| points.distance(query, i), k, ef, Some(query))
    }

    /// [`knn_by_index`](Self::knn_by_index) for every indexed point, with
    /// the queries split over `threads` workers via
    /// [`parallel`](rolediet_matrix::parallel).
    ///
    /// Insertion is inherently sequential (each insert mutates the graph
    /// the next one searches), but the probe phase is read-only, so
    /// result `q` is exactly what `knn_by_index(points, q, k, ef)`
    /// returns — for every thread count.
    pub fn knn_batch<P: PointSet + Sync>(
        &self,
        points: &P,
        k: usize,
        ef: usize,
        threads: usize,
    ) -> Vec<Vec<(usize, f64)>> {
        rolediet_matrix::parallel::par_map_rows(self.len(), threads, |range| {
            range.map(|q| self.knn_by_index(points, q, k, ef)).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{BinaryMetric, BinaryRows, VecPoints};
    use crate::neighbors::knn as exact_knn;
    use rolediet_matrix::BitMatrix;

    fn grid_points(n: usize) -> VecPoints {
        // n points on a line — easy geometry with unambiguous neighbours.
        VecPoints::new((0..n).map(|i| vec![i as f64]).collect())
    }

    #[test]
    fn empty_and_singleton() {
        let pts = VecPoints::new(vec![]);
        let idx = Hnsw::build(&pts, HnswParams::default());
        assert!(idx.is_empty());
        assert!(idx.search_with(|_| 0.0, 3, 16).is_empty());

        let one = VecPoints::new(vec![vec![1.0]]);
        let idx = Hnsw::build(&one, HnswParams::default());
        assert_eq!(idx.len(), 1);
        let hits = idx.knn_by_index(&one, 0, 5, 16);
        assert_eq!(hits, vec![(0, 0.0)]);
    }

    #[test]
    fn finds_self_and_true_neighbours_on_line() {
        let pts = grid_points(200);
        let idx = Hnsw::build(&pts, HnswParams::default());
        for q in [0usize, 17, 99, 199] {
            let hits = idx.knn_by_index(&pts, q, 3, 64);
            assert_eq!(hits[0], (q, 0.0), "self is the closest hit");
            let approx: Vec<usize> = hits.iter().skip(1).map(|&(i, _)| i).collect();
            let exact: Vec<usize> = exact_knn(&pts, q, 2).into_iter().map(|(i, _)| i).collect();
            // On this trivial geometry the index should be exact.
            assert_eq!(approx, exact, "query {q}");
        }
    }

    #[test]
    fn high_recall_on_random_binary_rows() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let rows: Vec<Vec<usize>> = (0..300)
            .map(|_| {
                (0..64)
                    .filter(|_| rng.gen_bool(0.2))
                    .collect::<Vec<usize>>()
            })
            .collect();
        let m = BitMatrix::from_rows_of_indices(300, 64, &rows).unwrap();
        let pts = BinaryRows::new(&m, BinaryMetric::Hamming);
        let idx = Hnsw::build(&pts, HnswParams::default());
        let mut found = 0usize;
        let mut total = 0usize;
        for q in 0..300 {
            let exact: std::collections::HashSet<usize> =
                exact_knn(&pts, q, 5).into_iter().map(|(i, _)| i).collect();
            let approx: std::collections::HashSet<usize> = idx
                .knn_by_index(&pts, q, 6, 128)
                .into_iter()
                .map(|(i, _)| i)
                .filter(|&i| i != q)
                .collect();
            // Compare by distance values (ties make identity comparisons flaky).
            let kth = exact_knn(&pts, q, 5).last().map(|&(_, d)| d).unwrap();
            total += exact.len();
            found += approx
                .iter()
                .filter(|&&i| pts.distance(q, i) <= kth)
                .count()
                .min(exact.len());
        }
        let recall = found as f64 / total as f64;
        assert!(recall > 0.9, "recall {recall} too low");
    }

    #[test]
    fn duplicate_points_are_found_at_distance_zero() {
        // The paper's use case: identical role rows must surface as
        // 0-distance neighbours.
        let m = BitMatrix::from_rows_of_indices(
            6,
            8,
            &[
                vec![0, 1],
                vec![2],
                vec![0, 1],
                vec![3, 4, 5],
                vec![0, 1],
                vec![6],
            ],
        )
        .unwrap();
        let pts = BinaryRows::new(&m, BinaryMetric::Hamming);
        let idx = Hnsw::build(&pts, HnswParams::default());
        let hits = idx.knn_by_index(&pts, 0, 6, 32);
        let zero_hits: std::collections::HashSet<usize> = hits
            .iter()
            .filter(|&&(_, d)| d == 0.0)
            .map(|&(i, _)| i)
            .collect();
        assert_eq!(zero_hits, [0usize, 2, 4].into_iter().collect());
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = grid_points(100);
        let a = Hnsw::build(&pts, HnswParams::default());
        let b = Hnsw::build(&pts, HnswParams::default());
        for q in 0..100 {
            assert_eq!(
                a.knn_by_index(&pts, q, 4, 32),
                b.knn_by_index(&pts, q, 4, 32)
            );
        }
    }

    #[test]
    fn batch_probe_matches_per_query_probe() {
        let pts = grid_points(120);
        let idx = Hnsw::build(&pts, HnswParams::default());
        let expected: Vec<Vec<(usize, f64)>> =
            (0..120).map(|q| idx.knn_by_index(&pts, q, 4, 32)).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                idx.knn_batch(&pts, 4, 32, threads),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn search_with_external_query() {
        let pts = grid_points(50);
        let idx = Hnsw::build(&pts, HnswParams::default());
        // Query point at 10.4 — nearest indexed points are 10 and 11.
        let hits = idx.search_with(|i| (i as f64 - 10.4).abs(), 2, 32);
        assert_eq!(hits[0].0, 10);
        assert_eq!(hits[1].0, 11);
    }

    #[test]
    fn respects_k_and_ef() {
        let pts = grid_points(100);
        let idx = Hnsw::build(&pts, HnswParams::default());
        assert_eq!(idx.knn_by_index(&pts, 5, 3, 64).len(), 3);
        // ef smaller than k is raised to k.
        assert_eq!(idx.knn_by_index(&pts, 5, 10, 1).len(), 10);
    }

    #[test]
    fn heuristic_selection_prefers_diverse_neighbours() {
        // base at 0; candidates at 1, 1.2 and -5. Simple selection with
        // m=2 takes {1, 1.2}; the heuristic rejects 1.2 (closer to 1 than
        // to base) and keeps -5 on the far side, preserving connectivity.
        let pts = VecPoints::new(vec![vec![0.0], vec![1.0], vec![1.2], vec![-5.0]]);
        let candidates = vec![(1usize, 1.0), (2usize, 1.2), (3usize, 5.0)];
        let chosen = Hnsw::select_neighbors_heuristic(&pts, 0, &candidates, 2);
        assert_eq!(chosen, vec![1, 3]);
        // With room for all, rejected candidates are padded back in.
        let chosen = Hnsw::select_neighbors_heuristic(&pts, 0, &candidates, 3);
        assert_eq!(chosen, vec![1, 3, 2]);
    }

    #[test]
    fn heuristic_index_keeps_high_recall() {
        let pts = grid_points(200);
        let idx = Hnsw::build(
            &pts,
            HnswParams {
                select_heuristic: true,
                ..HnswParams::default()
            },
        );
        for q in [0usize, 50, 150, 199] {
            let hits = idx.knn_by_index(&pts, q, 3, 64);
            assert_eq!(hits[0], (q, 0.0));
            let approx: Vec<usize> = hits.iter().skip(1).map(|&(i, _)| i).collect();
            let exact: Vec<usize> = exact_knn(&pts, q, 2).into_iter().map(|(i, _)| i).collect();
            assert_eq!(approx, exact, "query {q}");
        }
    }

    #[test]
    #[should_panic(expected = "m must be at least 2")]
    fn rejects_degenerate_m() {
        let pts = grid_points(3);
        Hnsw::build(
            &pts,
            HnswParams {
                m: 1,
                ..HnswParams::default()
            },
        );
    }
}
