//! Distance metrics and the [`PointSet`] abstraction.

use rolediet_matrix::{PackedRows, RowMatrix};

/// A finite set of points with pairwise distances.
///
/// Both clustering baselines (DBSCAN and the HNSW group finder) only ever
/// need distances *between points of the dataset* — in the paper each role
/// row is indexed and then queried against the same index — so the
/// abstraction is deliberately index-based.
pub trait PointSet {
    /// Number of points.
    fn len(&self) -> usize;

    /// Returns `true` if the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance between points `i` and `j`. Must be symmetric with
    /// `distance(i, i) == 0`.
    ///
    /// # Panics
    ///
    /// Implementations panic if an index is out of range.
    fn distance(&self, i: usize, j: usize) -> f64;
}

/// Metrics on binary (0/1) rows.
///
/// The paper uses Hamming for DBSCAN and Manhattan for HNSW; on binary
/// data the two coincide (|a−b| per coordinate is 0 or 1), which the
/// `manhattan_equals_hamming` test pins down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BinaryMetric {
    /// Number of differing positions (== Manhattan/L1 on binary data).
    #[default]
    Hamming,
    /// Euclidean distance: `sqrt(hamming)` on binary data.
    Euclidean,
    /// Jaccard distance `1 − |A∩B|/|A∪B|` (0 for two empty rows).
    Jaccard,
}

/// Adapter exposing the rows of an assignment matrix as a [`PointSet`].
///
/// # Examples
///
/// ```
/// use rolediet_cluster::metric::{BinaryMetric, BinaryRows, PointSet};
/// use rolediet_matrix::BitMatrix;
///
/// let m = BitMatrix::from_rows_of_indices(2, 4, &[vec![0, 1], vec![1, 2]]).unwrap();
/// let pts = BinaryRows::new(&m, BinaryMetric::Hamming);
/// assert_eq!(pts.distance(0, 1), 2.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BinaryRows<'a, M> {
    matrix: &'a M,
    metric: BinaryMetric,
}

impl<'a, M: RowMatrix> BinaryRows<'a, M> {
    /// Wraps a matrix with the given metric.
    pub fn new(matrix: &'a M, metric: BinaryMetric) -> Self {
        BinaryRows { matrix, metric }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &'a M {
        self.matrix
    }

    /// The metric in use.
    pub fn metric(&self) -> BinaryMetric {
        self.metric
    }
}

impl<M: RowMatrix> PointSet for BinaryRows<'_, M> {
    fn len(&self) -> usize {
        self.matrix.rows()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        match self.metric {
            BinaryMetric::Hamming => self.matrix.row_hamming(i, j) as f64,
            BinaryMetric::Euclidean => (self.matrix.row_hamming(i, j) as f64).sqrt(),
            BinaryMetric::Jaccard => {
                let inter = self.matrix.row_dot(i, j);
                let union = self.matrix.row_norm(i) + self.matrix.row_norm(j) - inter;
                if union == 0 {
                    0.0
                } else {
                    1.0 - inter as f64 / union as f64
                }
            }
        }
    }
}

/// Owned [`PointSet`] over the packed Hamming engine: every distance call
/// runs the PR 7 word-lane/merge-walk kernels
/// ([`PackedRows::hamming`]) instead of scalar `row_hamming`, so HNSW
/// construction and vp-tree queries ride the same engine as the exact
/// sharded plane.
///
/// Only the Hamming metric is offered — it is the one metric the packed
/// kernels compute, and the only one the approximate strategies use
/// (Manhattan ≡ Hamming on binary data).
///
/// # Examples
///
/// ```
/// use rolediet_cluster::metric::{PackedPointSet, PointSet};
/// use rolediet_matrix::BitMatrix;
///
/// let m = BitMatrix::from_rows_of_indices(2, 4, &[vec![0, 1], vec![1, 2]]).unwrap();
/// let pts = PackedPointSet::from_matrix(&m, 1);
/// assert_eq!(pts.distance(0, 1), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct PackedPointSet {
    rows: PackedRows,
}

impl PackedPointSet {
    /// Packs the rows of `matrix` into the engine's density-adaptive
    /// representation using `threads` workers.
    pub fn from_matrix<M: RowMatrix + Sync + ?Sized>(matrix: &M, threads: usize) -> Self {
        PackedPointSet {
            rows: PackedRows::from_matrix(matrix, threads),
        }
    }

    /// Wraps an already-built engine.
    pub fn from_rows(rows: PackedRows) -> Self {
        PackedPointSet { rows }
    }

    /// The underlying packed engine.
    pub fn rows(&self) -> &PackedRows {
        &self.rows
    }

    /// Number of set columns in row `i` (used by the pipeline's
    /// empty-row filter).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_norm(&self, i: usize) -> usize {
        self.rows.row_norm(i)
    }
}

impl PointSet for PackedPointSet {
    fn len(&self) -> usize {
        self.rows.rows()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.rows.hamming(i, j) as f64
    }
}

/// Dense real-valued points with Euclidean distance — used to test the
/// clustering algorithms on the classic geometric cases they were designed
/// for, independent of the RBAC encoding.
#[derive(Debug, Clone, Default)]
pub struct VecPoints {
    points: Vec<Vec<f64>>,
}

impl VecPoints {
    /// Wraps a list of equally-sized coordinate vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors do not all have the same dimension.
    pub fn new(points: Vec<Vec<f64>>) -> Self {
        if let Some(first) = points.first() {
            assert!(
                points.iter().all(|p| p.len() == first.len()),
                "all points must share one dimension"
            );
        }
        VecPoints { points }
    }

    /// The coordinates of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i]
    }
}

impl PointSet for VecPoints {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.points[i]
            .iter()
            .zip(&self.points[j])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolediet_matrix::BitMatrix;

    fn m() -> BitMatrix {
        BitMatrix::from_rows_of_indices(4, 6, &[vec![0, 1, 2], vec![1, 2, 3], vec![], vec![]])
            .unwrap()
    }

    #[test]
    fn hamming_distances() {
        let m = m();
        let p = BinaryRows::new(&m, BinaryMetric::Hamming);
        assert_eq!(p.len(), 4);
        assert_eq!(p.distance(0, 1), 2.0);
        assert_eq!(p.distance(0, 0), 0.0);
        assert_eq!(p.distance(2, 3), 0.0);
        assert_eq!(p.distance(0, 1), p.distance(1, 0));
    }

    #[test]
    fn euclidean_is_sqrt_hamming() {
        let m = m();
        let h = BinaryRows::new(&m, BinaryMetric::Hamming);
        let e = BinaryRows::new(&m, BinaryMetric::Euclidean);
        for i in 0..4 {
            for j in 0..4 {
                assert!((e.distance(i, j) - h.distance(i, j).sqrt()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn jaccard_distances() {
        let m = m();
        let p = BinaryRows::new(&m, BinaryMetric::Jaccard);
        // |A∩B| = 2, |A∪B| = 4 → d = 0.5
        assert!((p.distance(0, 1) - 0.5).abs() < 1e-12);
        // Two empty rows are identical under Jaccard here.
        assert_eq!(p.distance(2, 3), 0.0);
        assert_eq!(p.distance(0, 2), 1.0);
    }

    #[test]
    fn manhattan_equals_hamming_on_binary_data() {
        // The reason the paper can use HNSW with Manhattan distance for a
        // Hamming problem: per coordinate |a-b| ∈ {0, 1}.
        let m = m();
        let h = BinaryRows::new(&m, BinaryMetric::Hamming);
        for i in 0..4 {
            for j in 0..4 {
                let manhattan: f64 = (0..6)
                    .map(|c| {
                        let a = m.get(i, c) as u8 as f64;
                        let b = m.get(j, c) as u8 as f64;
                        (a - b).abs()
                    })
                    .sum();
                assert_eq!(manhattan, h.distance(i, j));
            }
        }
    }

    #[test]
    fn packed_point_set_matches_binary_rows() {
        let m = m();
        let scalar = BinaryRows::new(&m, BinaryMetric::Hamming);
        let packed = PackedPointSet::from_matrix(&m, 2);
        assert_eq!(packed.len(), scalar.len());
        for i in 0..4 {
            assert_eq!(packed.row_norm(i), m.row_norm(i));
            for j in 0..4 {
                assert_eq!(packed.distance(i, j), scalar.distance(i, j), "i={i} j={j}");
            }
        }
        assert_eq!(packed.rows().rows(), 4);
        let rewrapped = PackedPointSet::from_rows(packed.rows().clone());
        assert_eq!(rewrapped.distance(0, 1), packed.distance(0, 1));
    }

    #[test]
    fn vec_points_euclidean() {
        let p = VecPoints::new(vec![vec![0.0, 0.0], vec![3.0, 4.0]]);
        assert_eq!(p.distance(0, 1), 5.0);
        assert_eq!(p.point(1), &[3.0, 4.0]);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "share one dimension")]
    fn vec_points_dimension_checked() {
        VecPoints::new(vec![vec![0.0], vec![1.0, 2.0]]);
    }
}
