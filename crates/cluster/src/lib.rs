//! Clustering substrate for the IAM Role Diet detectors.
//!
//! The paper evaluates three ways of finding groups of roles that share the
//! same or similar users/permissions. Two of them are classic algorithms it
//! takes from Python libraries; this crate implements both from scratch,
//! plus the supporting machinery:
//!
//! * [`dbscan`] — exact density-based clustering (the scikit-learn
//!   baseline): minPts, eps, arbitrary metric, noise labelling.
//! * [`hnsw`] — Hierarchical Navigable Small World approximate
//!   nearest-neighbour search (the datasketch baseline): multi-layer
//!   greedy/beam search with `M`, `ef_construction`, `ef_search`.
//! * [`minhash`] — MinHash LSH, a second approximate baseline from the
//!   same library family as the paper's, used in our ablations.
//! * [`metric`] — distance functions on binary rows (Hamming ≡ Manhattan
//!   on 0/1 data, Euclidean, Jaccard) behind the [`PointSet`] abstraction.
//! * [`neighbors`] — brute-force range and k-NN queries (ground truth for
//!   recall measurements).
//! * [`vptree`] — an exact metric index (vantage-point tree) that
//!   accelerates DBSCAN's region queries with triangle-inequality
//!   pruning — "how far can the exact baseline be pushed".
//! * [`unionfind`] — disjoint sets for turning pairs into groups.
//! * [`recall`] — precision/recall of approximate against exact results.
//!
//! # Examples
//!
//! ```
//! use rolediet_cluster::dbscan::{Dbscan, DbscanParams};
//! use rolediet_cluster::metric::{BinaryMetric, BinaryRows};
//! use rolediet_matrix::BitMatrix;
//!
//! // Roles 0 and 2 have identical user sets.
//! let ruam = BitMatrix::from_rows_of_indices(3, 4, &[
//!     vec![0, 1], vec![2], vec![0, 1],
//! ]).unwrap();
//! let points = BinaryRows::new(&ruam, BinaryMetric::Hamming);
//! let labels = Dbscan::new(DbscanParams::exact_duplicates()).fit(&points);
//! assert_eq!(labels.clusters(), vec![vec![0, 2]]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dbscan;
pub mod hnsw;
pub mod metric;
pub mod minhash;
pub mod neighbors;
pub mod recall;
pub mod unionfind;
mod validate;
pub mod vptree;

pub use dbscan::{ClusterLabels, Dbscan, DbscanParams};
pub use hnsw::{Hnsw, HnswParams};
pub use metric::{BinaryMetric, BinaryRows, PackedPointSet, PointSet, VecPoints};
pub use minhash::{MinHashLsh, MinHashLshParams};
pub use unionfind::UnionFind;
