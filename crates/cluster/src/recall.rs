//! Precision/recall of approximate results against exact ground truth.
//!
//! The paper accepts the approximate method's missed entries because the
//! cleanup "can be run periodically, enabling the results to converge
//! gradually"; this module quantifies how much is missed per run
//! (experiment `abl-recall` in DESIGN.md).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Confusion counts and derived rates for a set of reported pairs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairStats {
    /// Pairs reported and true.
    pub true_positives: usize,
    /// Pairs reported but not true.
    pub false_positives: usize,
    /// True pairs not reported.
    pub false_negatives: usize,
    /// `tp / (tp + fp)`; 1.0 when nothing was reported.
    pub precision: f64,
    /// `tp / (tp + fn)`; 1.0 when there was nothing to find.
    pub recall: f64,
}

fn normalize(pairs: &[(usize, usize)]) -> BTreeSet<(usize, usize)> {
    pairs
        .iter()
        .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
        .collect()
}

/// Compares `found` pairs against `truth` pairs (order within a pair is
/// irrelevant; duplicates are ignored).
pub fn pair_stats(truth: &[(usize, usize)], found: &[(usize, usize)]) -> PairStats {
    let truth = normalize(truth);
    let found = normalize(found);
    let tp = truth.intersection(&found).count();
    let fp = found.len() - tp;
    let fn_ = truth.len() - tp;
    PairStats {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
        precision: if found.is_empty() {
            1.0
        } else {
            tp as f64 / found.len() as f64
        },
        recall: if truth.is_empty() {
            1.0
        } else {
            tp as f64 / truth.len() as f64
        },
    }
}

/// Converts groups (each a list of members) into their implied member
/// pairs, for comparing group-producing methods pairwise.
pub fn groups_to_pairs(groups: &[Vec<usize>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for g in groups {
        for (x, &i) in g.iter().enumerate() {
            for &j in &g[x + 1..] {
                out.push(if i <= j { (i, j) } else { (j, i) });
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match() {
        let t = vec![(0, 1), (2, 3)];
        let s = pair_stats(&t, &[(1, 0), (2, 3)]);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.false_negatives, 0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn partial_match() {
        let t = vec![(0, 1), (2, 3), (4, 5)];
        let s = pair_stats(&t, &[(0, 1), (9, 10)]);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 2);
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_edge_cases() {
        let s = pair_stats(&[], &[]);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        let s = pair_stats(&[(0, 1)], &[]);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.precision, 1.0);
        let s = pair_stats(&[], &[(0, 1)]);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn groups_to_pairs_expands_and_dedups() {
        let groups = vec![vec![3, 1, 2], vec![5, 6], vec![7]];
        assert_eq!(
            groups_to_pairs(&groups),
            vec![(1, 2), (1, 3), (2, 3), (5, 6)]
        );
        assert!(groups_to_pairs(&[]).is_empty());
    }
}
