//! Precision/recall of approximate results against exact ground truth.
//!
//! The paper accepts the approximate method's missed entries because the
//! cleanup "can be run periodically, enabling the results to converge
//! gradually"; this module quantifies how much is missed per run
//! (experiment `abl-recall` in DESIGN.md).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Confusion counts and derived rates for a set of reported pairs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairStats {
    /// Pairs reported and true.
    pub true_positives: usize,
    /// Pairs reported but not true.
    pub false_positives: usize,
    /// True pairs not reported.
    pub false_negatives: usize,
    /// `tp / (tp + fp)`; 1.0 when nothing was reported.
    pub precision: f64,
    /// `tp / (tp + fn)`; 1.0 when there was nothing to find.
    pub recall: f64,
}

fn normalize(pairs: &[(usize, usize)]) -> BTreeSet<(usize, usize)> {
    pairs
        .iter()
        .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
        .collect()
}

/// Compares `found` pairs against `truth` pairs (order within a pair is
/// irrelevant; duplicates are ignored).
pub fn pair_stats(truth: &[(usize, usize)], found: &[(usize, usize)]) -> PairStats {
    let truth = normalize(truth);
    let found = normalize(found);
    let tp = truth.intersection(&found).count();
    let fp = found.len() - tp;
    let fn_ = truth.len() - tp;
    PairStats {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
        precision: if found.is_empty() {
            1.0
        } else {
            tp as f64 / found.len() as f64
        },
        recall: if truth.is_empty() {
            1.0
        } else {
            tp as f64 / truth.len() as f64
        },
    }
}

/// Capped recall@k of approximate k-NN results against exact range-query
/// truth.
///
/// A searcher returning at most `k` hits per query structurally cannot
/// recover a neighbourhood larger than `k` — inside a duplicate cluster
/// of thousands of members, plain pair recall of a k-NN result is bounded
/// by `k / cluster_size` no matter how good the index is. This metric
/// asks the answerable question instead: of the at-most-`k` in-range
/// neighbours each query *could* have returned, how many did it return?
/// Per query `i`, the denominator contribution is
/// `min(k, |truth[i] \ {i}|)` and the numerator is the number of distinct
/// true hits in `found[i]`, capped the same way; the reported recall is
/// the ratio of the sums (1.0 when there is nothing to find).
///
/// `truth[i]` holds the exact in-range neighbour ids of query `i` (as
/// produced by a range query; `i` itself is ignored if present), and
/// `found[i]` the ids the approximate searcher returned, already filtered
/// to the same range.
///
/// # Panics
///
/// Panics if `truth` and `found` have different lengths.
pub fn recall_at_k(truth: &[Vec<usize>], found: &[Vec<usize>], k: usize) -> f64 {
    assert_eq!(
        truth.len(),
        found.len(),
        "recall_at_k: one truth row and one found row per query"
    );
    let mut want = 0usize;
    let mut got = 0usize;
    for (i, t) in truth.iter().enumerate() {
        let t_set: BTreeSet<usize> = t.iter().copied().filter(|&j| j != i).collect();
        let cap = t_set.len().min(k);
        want += cap;
        let hits: BTreeSet<usize> = found[i]
            .iter()
            .copied()
            .filter(|&j| j != i && t_set.contains(&j))
            .collect();
        got += hits.len().min(cap);
    }
    if want == 0 {
        1.0
    } else {
        got as f64 / want as f64
    }
}

/// Converts groups (each a list of members) into their implied member
/// pairs, for comparing group-producing methods pairwise.
pub fn groups_to_pairs(groups: &[Vec<usize>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for g in groups {
        for (x, &i) in g.iter().enumerate() {
            for &j in &g[x + 1..] {
                out.push(if i <= j { (i, j) } else { (j, i) });
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match() {
        let t = vec![(0, 1), (2, 3)];
        let s = pair_stats(&t, &[(1, 0), (2, 3)]);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.false_negatives, 0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn partial_match() {
        let t = vec![(0, 1), (2, 3), (4, 5)];
        let s = pair_stats(&t, &[(0, 1), (9, 10)]);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 2);
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_edge_cases() {
        let s = pair_stats(&[], &[]);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        let s = pair_stats(&[(0, 1)], &[]);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.precision, 1.0);
        let s = pair_stats(&[], &[(0, 1)]);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn recall_at_k_caps_truth_at_k() {
        // Query 0 has 5 true neighbours but k = 2: returning any 2 of
        // them is perfect recall under the cap.
        let truth = vec![vec![1, 2, 3, 4, 5]];
        let found = vec![vec![2, 4]];
        assert_eq!(recall_at_k(&truth, &found, 2), 1.0);
        // Returning one of two possible is half.
        let found = vec![vec![2, 9]];
        assert_eq!(recall_at_k(&truth, &found, 2), 0.5);
    }

    #[test]
    fn recall_at_k_ignores_self_and_duplicates() {
        let truth = vec![vec![0, 1, 2], vec![]];
        // Self-hit (0) and a duplicated true hit count once.
        let found = vec![vec![0, 1, 1], vec![7]];
        assert_eq!(recall_at_k(&truth, &found, 4), 0.5);
    }

    #[test]
    fn recall_at_k_empty_truth_is_perfect() {
        assert_eq!(recall_at_k(&[], &[], 4), 1.0);
        let truth = vec![vec![], vec![0]];
        let found = vec![vec![], vec![]];
        assert_eq!(recall_at_k(&truth, &found, 4), 0.0);
    }

    #[test]
    fn groups_to_pairs_expands_and_dedups() {
        let groups = vec![vec![3, 1, 2], vec![5, 6], vec![7]];
        assert_eq!(
            groups_to_pairs(&groups),
            vec![(1, 2), (1, 3), (2, 3), (5, 6)]
        );
        assert!(groups_to_pairs(&[]).is_empty());
    }
}
