//! Structural validator for [`UnionFind`].
//!
//! The forest's public operations preserve its invariants by
//! construction, but the parallel grouping kernels build forests
//! range-by-range and absorb them with `merge_from` — a path worth an
//! independent check. [`UnionFind::validate`] re-derives every invariant
//! from the raw arrays; property tests run it after randomized
//! union/merge sequences.

use crate::unionfind::UnionFind;

impl UnionFind {
    /// Checks every union-find structural invariant, returning the first
    /// violation as a human-readable message.
    ///
    /// Verified, in order:
    ///
    /// 1. `parent` and `rank` have the same length;
    /// 2. every parent index is in bounds;
    /// 3. rank strictly increases along every parent link
    ///    (`rank[x] < rank[parent[x]]` for non-roots) — the union-by-rank
    ///    invariant, which also proves the forest acyclic, since no
    ///    strictly-increasing walk can revisit a node;
    /// 4. every element reaches a root within `len()` steps (a direct,
    ///    redundant acyclicity check, so a broken rank array cannot mask
    ///    a cycle);
    /// 5. the cached component count equals the number of roots.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first broken invariant and the
    /// element it was found at.
    pub fn validate(&self) -> Result<(), String> {
        let (parent, rank, components) = self.raw_parts();
        let n = parent.len();
        if rank.len() != n {
            return Err(format!("rank length {} != parent length {n}", rank.len()));
        }
        for (x, &p) in parent.iter().enumerate() {
            let p = p as usize;
            if p >= n {
                return Err(format!("parent of {x} is {p}, out of bounds (n={n})"));
            }
            if p != x && rank[x] >= rank[p] {
                return Err(format!(
                    "rank does not increase along link {x} -> {p} ({} >= {})",
                    rank[x], rank[p]
                ));
            }
        }
        let mut roots = 0usize;
        for x in 0..n {
            let mut cur = x;
            let mut steps = 0usize;
            while parent[cur] as usize != cur {
                cur = parent[cur] as usize;
                steps += 1;
                if steps > n {
                    return Err(format!("no root reachable from {x} within {n} steps"));
                }
            }
            if cur == x {
                roots += 1;
            }
        }
        if roots != components {
            return Err(format!(
                "cached component count {components} != actual root count {roots}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_and_merged_forests_pass() {
        let mut uf = UnionFind::new(10);
        assert_eq!(uf.validate(), Ok(()));
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(7, 8);
        assert_eq!(uf.validate(), Ok(()));
        // Path compression must not break anything.
        uf.find(0);
        uf.find(2);
        assert_eq!(uf.validate(), Ok(()));
        assert_eq!(UnionFind::new(0).validate(), Ok(()));
    }

    #[test]
    fn range_joined_forests_pass() {
        let edges: Vec<(usize, usize)> = vec![(0, 9), (1, 2), (2, 3), (9, 1), (5, 6)];
        for threads in [1usize, 2, 4] {
            let forests = rolediet_matrix::parallel::par_map_ranges(edges.len(), threads, |r| {
                let mut uf = UnionFind::new(10);
                for &(a, b) in &edges[r] {
                    uf.union(a, b);
                }
                uf
            });
            let mut iter = forests.into_iter();
            let mut joined = iter.next().expect("at least one chunk");
            for f in iter {
                f.validate().expect("local forest");
                joined.merge_from(&f);
            }
            joined.validate().expect("joined forest");
        }
    }

    /// Hand-corrupted forests (via the test-only setter below) trip the
    /// matching check.
    #[test]
    fn corrupted_forests_are_caught() {
        // Cycle between two non-roots: 0 -> 1 -> 0. Caught by the rank
        // check (neither link can strictly increase).
        let mut uf = UnionFind::new(3);
        uf.corrupt_parent(0, 1);
        uf.corrupt_parent(1, 0);
        let err = uf.validate().unwrap_err();
        assert!(err.contains("rank does not increase"), "{err}");

        // Stale component count.
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.corrupt_components(4);
        let err = uf.validate().unwrap_err();
        assert!(err.contains("component count"), "{err}");

        // Out-of-bounds parent.
        let mut uf = UnionFind::new(2);
        uf.corrupt_parent(1, 9);
        let err = uf.validate().unwrap_err();
        assert!(err.contains("out of bounds"), "{err}");
    }
}
