//! Property tests for the clustering substrate: DBSCAN semantics against
//! first principles, index exactness (VP-tree) and index soundness
//! (HNSW, MinHash) on arbitrary binary-row datasets.

use proptest::collection::vec;
use proptest::prelude::*;

use rolediet_cluster::dbscan::{Dbscan, DbscanParams, NOISE};
use rolediet_cluster::hnsw::{Hnsw, HnswParams};
use rolediet_cluster::metric::{BinaryMetric, BinaryRows, PackedPointSet, PointSet};
use rolediet_cluster::minhash::{MinHashLsh, MinHashLshParams};
use rolediet_cluster::neighbors::{all_pairs_within, all_range_queries_with, range_query};
use rolediet_cluster::vptree::VpTree;
use rolediet_matrix::BitMatrix;

fn dataset() -> impl Strategy<Value = (usize, usize, Vec<Vec<usize>>)> {
    (2usize..28, 2usize..18).prop_flat_map(|(rows, cols)| {
        vec(vec(0..cols, 0..=5), rows).prop_map(move |data| (rows, cols, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    #[allow(clippy::needless_range_loop)] // p indexes points and labels in parallel
    fn dbscan_labels_satisfy_first_principles(
        (rows, cols, data) in dataset(),
        eps in 0usize..4,
        min_pts in 2usize..4,
    ) {
        let m = BitMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let pts = BinaryRows::new(&m, BinaryMetric::Hamming);
        let eps = eps as f64 + 1e-9;
        let labels = Dbscan::new(DbscanParams { eps, min_pts }).fit(&pts);
        let l = labels.labels();
        // 1. A core point is never noise.
        for p in 0..rows {
            if range_query(&pts, p, eps).len() >= min_pts {
                prop_assert_ne!(l[p], NOISE, "core point {} labelled noise", p);
            }
        }
        // 2. Two core points within eps share a cluster.
        for i in 0..rows {
            for j in (i + 1)..rows {
                let core_i = range_query(&pts, i, eps).len() >= min_pts;
                let core_j = range_query(&pts, j, eps).len() >= min_pts;
                if core_i && core_j && pts.distance(i, j) <= eps {
                    prop_assert_eq!(l[i], l[j], "core pair ({}, {}) split", i, j);
                }
            }
        }
        // 3. A noise point has no core point within eps.
        for p in 0..rows {
            if l[p] == NOISE {
                for q in range_query(&pts, p, eps) {
                    prop_assert!(
                        range_query(&pts, q, eps).len() < min_pts,
                        "noise point {} adjacent to core {}", p, q
                    );
                }
            }
        }
        // 4. Cluster ids are dense 0..n_clusters.
        let max = l.iter().copied().max().unwrap_or(-1);
        prop_assert_eq!(labels.n_clusters() as i64, max + 1);
    }

    #[test]
    fn dbscan_grouping_kernel_is_bit_identical_to_sequential_expansion(
        (rows, cols, mut data) in dataset(),
        eps in 0usize..4,
    ) {
        // Empty and duplicate rows appended: the paper's hot shapes
        // (userless roles form one giant duplicate clique).
        data.push(Vec::new());
        data.push(data[0].clone());
        let m = BitMatrix::from_rows_of_indices(rows + 2, cols, &data).unwrap();
        let pts = BinaryRows::new(&m, BinaryMetric::Hamming);
        let eps = eps as f64 + 1e-9;
        let dbscan = Dbscan::new(DbscanParams { eps, min_pts: 2 });
        let seq = dbscan.fit(&pts);
        for threads in [1usize, 2, 4, 8] {
            let neigh = all_range_queries_with(&pts, eps, threads);
            prop_assert_eq!(
                dbscan.group_cached_with(&neigh, threads),
                seq.clone(),
                "kernel vs expansion, threads={}", threads
            );
            prop_assert_eq!(
                dbscan.fit_with_threads(&pts, threads),
                seq.clone(),
                "fit_with_threads, threads={}", threads
            );
        }
    }

    #[test]
    fn vptree_range_queries_are_exact(
        (rows, cols, data) in dataset(),
        eps in 0usize..5,
        seed in 0u64..4,
    ) {
        let m = BitMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let pts = BinaryRows::new(&m, BinaryMetric::Hamming);
        let tree = VpTree::build(&pts, seed);
        for q in 0..rows {
            prop_assert_eq!(
                tree.range_query(&pts, q, eps as f64),
                range_query(&pts, q, eps as f64),
                "query {} eps {}", q, eps
            );
        }
    }

    #[test]
    fn hnsw_results_are_sound((rows, cols, data) in dataset()) {
        let m = BitMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let pts = BinaryRows::new(&m, BinaryMetric::Hamming);
        let idx = Hnsw::build(&pts, HnswParams::default());
        for q in 0..rows {
            let hits = idx.knn_by_index(&pts, q, 5, 32);
            // A 0-distance hit is always first (the query itself, or an
            // exact duplicate of it winning the index tie-break), and the
            // query is among the results unless crowded out by >= 5 exact
            // duplicates.
            prop_assert_eq!(hits[0].1, 0.0);
            let self_found = hits.iter().any(|&(i, _)| i == q);
            let duplicates = (0..rows).filter(|&i| pts.distance(q, i) == 0.0).count();
            prop_assert!(
                self_found || duplicates > 5,
                "query {} missing from its own results", q
            );
            // Reported distances are true distances, sorted ascending.
            for w in hits.windows(2) {
                prop_assert!(w[0].1 <= w[1].1);
            }
            for &(i, d) in &hits {
                prop_assert_eq!(d, pts.distance(q, i));
            }
            // No duplicates.
            let mut ids: Vec<usize> = hits.iter().map(|&(i, _)| i).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), hits.len());
        }
    }

    #[test]
    fn hnsw_batch_build_matches_sequential_oracle((rows, cols, mut data) in dataset()) {
        // The tentpole contract: the two-phase batched build is a pure
        // function of (points, params) — bit-identical links/levels/entry
        // to the sequential insert at every thread count and generation
        // size, including the paper's hot shapes (empty rows, exact
        // duplicates).
        data.push(Vec::new());
        data.push(data[0].clone());
        let m = BitMatrix::from_rows_of_indices(rows + 2, cols, &data).unwrap();
        let pts = PackedPointSet::from_matrix(&m, 2);
        let oracle = Hnsw::build(&pts, HnswParams::default());
        for threads in [1usize, 2, 4, 8] {
            for batch in [1usize, 7, 64] {
                let got = Hnsw::build_batched(&pts, HnswParams::default(), batch, threads);
                prop_assert_eq!(
                    &got, &oracle,
                    "batched build diverged: threads={} batch={}", threads, batch
                );
            }
        }
        // The packed adapter is metric-identical to the scalar rows, so
        // the oracle built on BinaryRows matches too.
        let scalar = BinaryRows::new(&m, BinaryMetric::Hamming);
        prop_assert_eq!(&Hnsw::build(&scalar, HnswParams::default()), &oracle);
    }

    #[test]
    fn minhash_covers_every_identical_pair((rows, cols, data) in dataset()) {
        let m = BitMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let sets: Vec<Vec<u32>> = (0..rows)
            .map(|r| {
                rolediet_matrix::RowMatrix::row_indices(&m, r)
                    .into_iter()
                    .map(|c| c as u32)
                    .collect()
            })
            .collect();
        let lsh = MinHashLsh::build(&sets, MinHashLshParams::default());
        let candidates: std::collections::HashSet<(usize, usize)> =
            lsh.candidate_pairs().into_iter().collect();
        let identical = all_pairs_within(&BinaryRows::new(&m, BinaryMetric::Hamming), 0.0);
        for (i, j) in identical {
            prop_assert!(
                candidates.contains(&(i, j)),
                "identical pair ({}, {}) missed by LSH", i, j
            );
        }
    }

    #[test]
    fn minhash_parallel_matches_sequential((rows, cols, mut data) in dataset()) {
        // Empty and duplicate sets are the degenerate shapes: an empty
        // set sketches to the sentinel signature, duplicates collide in
        // every band.
        data.push(Vec::new());
        data.push(data[0].clone());
        let sets: Vec<Vec<u32>> = data
            .iter()
            .map(|row| {
                let mut s: Vec<u32> = row.iter().map(|&c| c as u32).collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let _ = (rows, cols);
        let seq = MinHashLsh::build(&sets, MinHashLshParams::default());
        let seq_pairs = seq.candidate_pairs();
        for threads in [1usize, 2, 4, 8] {
            let par = MinHashLsh::build_with(&sets, MinHashLshParams::default(), threads);
            prop_assert_eq!(par.candidate_pairs_with(threads), seq_pairs.clone(), "threads={}", threads);
            for i in 0..sets.len() {
                for j in 0..sets.len() {
                    prop_assert_eq!(
                        par.estimate_jaccard(i, j),
                        seq.estimate_jaccard(i, j),
                        "signatures diverged at threads={}", threads
                    );
                }
            }
        }
    }

    #[test]
    fn union_find_invariants_survive_random_union_sequences(
        n in 1usize..40,
        edges in vec((0usize..40, 0usize..40), 0..80),
    ) {
        use rolediet_cluster::UnionFind;
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        // Sequential build: validate after every structural change.
        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        prop_assert_eq!(uf.validate(), Ok(()));
        // Range-joined build (the parallel kernel's shape) must reach an
        // equally well-formed forest with the same groups.
        for threads in [2usize, 4] {
            let forests =
                rolediet_matrix::parallel::par_map_ranges(edges.len(), threads, |range| {
                    let mut local = UnionFind::new(n);
                    for &(a, b) in &edges[range] {
                        local.union(a, b);
                    }
                    local
                });
            let mut joined = UnionFind::new(n);
            for f in forests {
                prop_assert_eq!(f.validate(), Ok(()));
                joined.merge_from(&f);
            }
            prop_assert_eq!(joined.validate(), Ok(()));
            prop_assert_eq!(
                joined.groups_min_size(1),
                uf.groups_min_size(1),
                "threads={}", threads
            );
        }
    }
}
