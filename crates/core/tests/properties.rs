//! Property tests for the detection core: the custom algorithm against
//! brute force, suggestion-engine safety, and report coherence.

use proptest::collection::vec;
use proptest::prelude::*;

use rolediet_core::config::{DetectionConfig, Parallelism, SimilarityConfig};
use rolediet_core::cooccur::{same_groups, same_groups_via_indicator, similar_pairs};
use rolediet_core::detector::{detect_degrees, detect_degrees_with};
use rolediet_core::incremental::IncrementalPipeline;
use rolediet_core::pipeline::Pipeline;
use rolediet_core::report::StageTimings;
use rolediet_core::suggest::{merge_delta, redundant_roles, subset_pairs};
use rolediet_core::validate::validate_report_against_graph;
use rolediet_matrix::{CsrMatrix, RowMatrix};
use rolediet_model::{PermissionId, RoleId, TripartiteGraph, UserId};
use rolediet_synth::churn::{ChurnConfig, ChurnSimulator};

fn matrix_inputs() -> impl Strategy<Value = (usize, usize, Vec<Vec<usize>>)> {
    (2usize..24, 2usize..16).prop_flat_map(|(rows, cols)| {
        vec(vec(0..cols, 0..=5), rows).prop_map(move |data| (rows, cols, data))
    })
}

/// A random (RUAM, RPAM) pair over the same roles, with one empty row
/// and one duplicate of row 0 appended to each side so the parallel
/// determinism tests always cover empty and duplicate rows.
fn matrix_pair_inputs() -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
    (2usize..16, 2usize..12, 2usize..12).prop_flat_map(|(rows, ucols, pcols)| {
        (
            vec(vec(0..ucols, 0..=5), rows),
            vec(vec(0..pcols, 0..=5), rows),
        )
            .prop_map(move |(mut ud, mut pd)| {
                for data in [&mut ud, &mut pd] {
                    data.push(Vec::new());
                    data.push(data[0].clone());
                }
                (
                    CsrMatrix::from_rows_of_indices(rows + 2, ucols, &ud).unwrap(),
                    CsrMatrix::from_rows_of_indices(rows + 2, pcols, &pd).unwrap(),
                )
            })
    })
}

fn graph_inputs() -> impl Strategy<Value = TripartiteGraph> {
    (2usize..8, 2usize..10, 2usize..8).prop_flat_map(|(users, roles, perms)| {
        let ue = vec((0..roles, 0..users), 0..roles * 3);
        let pe = vec((0..roles, 0..perms), 0..roles * 3);
        (ue, pe).prop_map(move |(ue, pe)| {
            let mut g = TripartiteGraph::with_counts(users, roles, perms);
            for (r, u) in ue {
                g.assign_user(RoleId::from_index(r), UserId::from_index(u))
                    .unwrap();
            }
            for (r, p) in pe {
                g.grant_permission(RoleId::from_index(r), PermissionId::from_index(p))
                    .unwrap();
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn signature_and_indicator_oracles_agree((rows, cols, data) in matrix_inputs()) {
        let m = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        prop_assert_eq!(
            same_groups(&m),
            same_groups_via_indicator(&m, &m.transpose())
        );
    }

    #[test]
    fn similar_pairs_distances_are_truthful(
        (rows, cols, data) in matrix_inputs(),
        threshold in 1usize..5,
        include_disjoint in proptest::bool::ANY,
    ) {
        let m = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let cfg = SimilarityConfig {
            threshold,
            include_disjoint,
            ..SimilarityConfig::default()
        };
        let pairs = similar_pairs(&m, &m.transpose(), &cfg);
        // Reported distances are exact, within range, and the list is
        // sorted and unique.
        for p in &pairs {
            prop_assert_eq!(m.row_hamming(p.a, p.b), p.distance);
            prop_assert!(p.distance >= 1 && p.distance <= threshold);
            prop_assert!(p.a < p.b);
        }
        let mut sorted = pairs.clone();
        sorted.sort_unstable_by_key(|p| (p.distance, p.a, p.b));
        sorted.dedup();
        prop_assert_eq!(&sorted, &pairs);
        // With disjoint pairs included the result is complete.
        if include_disjoint {
            let mut expected = 0usize;
            for i in 0..rows {
                for j in (i + 1)..rows {
                    let d = m.row_hamming(i, j);
                    if d >= 1 && d <= threshold {
                        expected += 1;
                    }
                }
            }
            prop_assert_eq!(pairs.len(), expected);
        }
    }

    #[test]
    fn subset_pairs_match_brute_force((rows, cols, data) in matrix_inputs()) {
        let m = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let got = subset_pairs(&m, &m.transpose());
        let mut expected = Vec::new();
        for i in 0..rows {
            for j in 0..rows {
                if i == j || m.row_norm(i) == 0 {
                    continue;
                }
                let g = m.row_dot(i, j);
                if g == m.row_norm(i) && m.row_norm(j) > m.row_norm(i) {
                    expected.push(rolediet_core::suggest::SubsetPair { sub: i, sup: j });
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn redundant_role_deletion_is_always_safe(graph in graph_inputs()) {
        let candidates: Vec<RoleId> =
            (0..graph.n_roles()).map(RoleId::from_index).collect();
        let redundant = redundant_roles(&graph, &candidates);
        // Delete all reported-redundant roles at once (the greedy chain
        // guarantees this is collectively safe).
        let drop: std::collections::HashSet<usize> =
            redundant.iter().map(|r| r.role.index()).collect();
        let mut next = 0usize;
        let map: Vec<Option<usize>> = (0..graph.n_roles())
            .map(|r| {
                if drop.contains(&r) {
                    None
                } else {
                    let t = next;
                    next += 1;
                    Some(t)
                }
            })
            .collect();
        let g2 = graph.rebuild_with_role_map(&map, next).unwrap();
        for u in 0..graph.n_users() {
            let uid = UserId::from_index(u);
            prop_assert_eq!(
                graph.effective_permissions(uid),
                g2.effective_permissions(uid),
                "user {} lost access after redundant-role deletion", u
            );
        }
    }

    #[test]
    fn merge_delta_predicts_apply_exactly(graph in graph_inputs(), a_raw in 0usize..10, b_raw in 0usize..10) {
        let n = graph.n_roles();
        let (a, b) = (a_raw % n, b_raw % n);
        prop_assume!(a != b);
        let delta = merge_delta(&graph, RoleId::from_index(a), RoleId::from_index(b));
        // Apply the merge and compare real gains against the prediction.
        let mut next = 0usize;
        let map: Vec<Option<usize>> = (0..n)
            .map(|r| {
                if r == b {
                    None
                } else {
                    let t = next;
                    next += 1;
                    Some(t)
                }
            })
            .collect();
        // b folds into a.
        let mut map = map;
        map[b] = map[a];
        let merged = graph.rebuild_with_role_map(&map, next).unwrap();
        let mut real_gains = Vec::new();
        for u in 0..graph.n_users() {
            let uid = UserId::from_index(u);
            let before = graph.effective_permissions(uid);
            let after = merged.effective_permissions(uid);
            prop_assert!(after.is_superset(&before), "merges never revoke");
            let gains: Vec<PermissionId> = after.difference(&before).copied().collect();
            if !gains.is_empty() {
                real_gains.push((uid, gains));
            }
        }
        prop_assert_eq!(real_gains, delta.user_gains);
    }

    #[test]
    fn pipeline_reports_identical_across_thread_counts(
        (ruam, rpam) in matrix_pair_inputs(),
        include_disjoint in proptest::bool::ANY,
    ) {
        let base_cfg = DetectionConfig {
            similarity: SimilarityConfig {
                include_disjoint,
                ..SimilarityConfig::default()
            },
            ..DetectionConfig::default()
        };
        let baseline = Pipeline::new(base_cfg).run_on_matrices(&ruam, &rpam);
        for threads in [2usize, 4, 8] {
            let cfg = DetectionConfig {
                parallelism: Parallelism::Threads(threads),
                ..base_cfg
            };
            let mut report = Pipeline::new(cfg).run_on_matrices(&ruam, &rpam);
            // Timings and config legitimately differ between runs; every
            // other field must match the sequential baseline exactly.
            report.timings = baseline.timings;
            report.config = baseline.config;
            prop_assert_eq!(&report, &baseline, "threads={}", threads);
        }
    }

    #[test]
    fn dbscan_pipeline_reports_identical_across_thread_counts(graph in graph_inputs()) {
        // Whole-Report bit-identity through `Pipeline::run` under the
        // exact-DBSCAN strategy, whose T4/T5 grouping now runs on the
        // parallel connected-components kernel (min_pts = 2 fast path).
        let base_cfg =
            DetectionConfig::with_strategy(rolediet_core::config::Strategy::ExactDbscan);
        let baseline = Pipeline::new(base_cfg).run(&graph);
        for threads in [1usize, 2, 4, 8] {
            let cfg = DetectionConfig {
                parallelism: Parallelism::Threads(threads),
                ..base_cfg
            };
            let mut report = Pipeline::new(cfg).run(&graph);
            prop_assert_eq!(report.timings.threads.cluster_expand, threads);
            prop_assert_eq!(report.timings.threads.group_extract, 0);
            prop_assert_eq!(report.timings.threads.distance_precompute, threads);
            prop_assert_eq!(report.timings.threads.transpose, 0);
            report.timings = baseline.timings;
            report.config = baseline.config;
            prop_assert_eq!(&report, &baseline, "threads={}", threads);
        }
    }

    /// Whole-`Report` bit-identity through `Pipeline::run_on_matrices`
    /// under `ApproxHnsw`: the batched two-phase HNSW build is a pure
    /// function of (points, params), so every (batch, threads) pairing
    /// must reproduce the sequential-insert oracle (`hnsw_batch = 0`)
    /// exactly — including on the appended empty and duplicate rows.
    #[test]
    fn hnsw_pipeline_reports_identical_across_batch_and_threads(
        (ruam, rpam) in matrix_pair_inputs(),
    ) {
        let base_cfg = DetectionConfig {
            hnsw_batch: 0,
            ..DetectionConfig::with_strategy(rolediet_core::config::Strategy::hnsw_default())
        };
        let baseline = Pipeline::new(base_cfg).run_on_matrices(&ruam, &rpam);
        for batch in [1usize, 7, 64] {
            for threads in [1usize, 2, 4, 8] {
                let cfg = DetectionConfig {
                    hnsw_batch: batch,
                    parallelism: Parallelism::Threads(threads),
                    ..base_cfg
                };
                let mut report = Pipeline::new(cfg).run_on_matrices(&ruam, &rpam);
                prop_assert_eq!(report.timings.threads.hnsw_build, threads);
                prop_assert_eq!(report.timings.threads.transpose, 0);
                report.timings = baseline.timings;
                report.config = baseline.config;
                prop_assert_eq!(&report, &baseline, "batch={} threads={}", batch, threads);
            }
        }
    }

    #[test]
    fn graph_pipeline_reports_identical_across_thread_counts(graph in graph_inputs()) {
        // The graph entry point additionally exercises the two-pass
        // parallel matrix build that `run_on_matrices` never sees.
        let base_cfg = DetectionConfig {
            similarity: SimilarityConfig {
                include_disjoint: true,
                ..SimilarityConfig::default()
            },
            ..DetectionConfig::default()
        };
        let baseline = Pipeline::new(base_cfg).run(&graph);
        for threads in [2usize, 4, 8] {
            let cfg = DetectionConfig {
                parallelism: Parallelism::Threads(threads),
                ..base_cfg
            };
            let mut report = Pipeline::new(cfg).run(&graph);
            prop_assert_eq!(report.timings.threads.matrix_build, threads);
            report.timings = baseline.timings;
            report.config = baseline.config;
            prop_assert_eq!(&report, &baseline, "threads={}", threads);
        }
    }

    #[test]
    fn bucketed_disjoint_supplement_matches_naive(
        (ruam, _) in matrix_pair_inputs(),
        threshold in 1usize..5,
    ) {
        // The appended empty and duplicate rows make the supplement's
        // degenerate cases (norm-0 buckets, identical supports) routine.
        let mut expected = rolediet_core::cooccur::disjoint_supplement_naive(&ruam, threshold);
        expected.sort_unstable();
        for threads in [1usize, 2, 4, 8] {
            let mut got =
                rolediet_core::cooccur::disjoint_supplement(&ruam, threshold, threads);
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "threads={}", threads);
        }
    }

    #[test]
    fn parallel_degree_detection_matches_sequential((ruam, rpam) in matrix_pair_inputs()) {
        let seq = detect_degrees(&ruam, &rpam);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(
                detect_degrees_with(&ruam, &rpam, threads),
                seq.clone(),
                "threads={}", threads
            );
            prop_assert_eq!(ruam.row_sums_with(threads), ruam.row_sums());
            prop_assert_eq!(ruam.col_sums_with(threads), ruam.col_sums());
            prop_assert_eq!(rpam.row_sums_with(threads), rpam.row_sums());
            prop_assert_eq!(rpam.col_sums_with(threads), rpam.col_sums());
        }
    }

    #[test]
    fn report_counts_are_internally_consistent(graph in graph_inputs()) {
        let report = Pipeline::new(DetectionConfig::default()).run(&graph);
        // Standalone roles never double-reported as T2.
        for r in &report.standalone_roles {
            prop_assert!(!report.userless_roles.contains(r));
            prop_assert!(!report.permless_roles.contains(r));
        }
        // Duplicate groups never contain empty rows under the default
        // config and are disjoint within a side.
        let ruam = graph.ruam_sparse();
        let rpam = graph.rpam_sparse();
        for (groups, m) in [
            (&report.same_user_groups, &ruam),
            (&report.same_permission_groups, &rpam),
        ] {
            let mut seen = std::collections::HashSet::new();
            for g in groups.iter() {
                prop_assert!(g.len() >= 2);
                for &r in g {
                    prop_assert!(m.row_norm(r) > 0);
                    prop_assert!(seen.insert(r), "role {} in two groups", r);
                }
            }
        }
        // Similar pairs exclude identical rows.
        for p in &report.similar_user_pairs {
            prop_assert!(ruam.row_hamming(p.a, p.b) >= 1);
        }
    }

    #[test]
    fn reports_pass_both_validators_under_every_strategy(graph in graph_inputs()) {
        use rolediet_core::config::Strategy;
        for strategy in [
            Strategy::Custom,
            Strategy::ExactDbscan,
            Strategy::hnsw_default(),
            Strategy::minhash_default(),
        ] {
            let cfg = DetectionConfig::with_strategy(strategy);
            let report = Pipeline::new(cfg).run(&graph);
            prop_assert_eq!(
                report.validate(graph.n_users(), graph.n_roles(), graph.n_permissions()),
                Ok(()),
                "structural, strategy={}", strategy.name()
            );
            prop_assert_eq!(
                validate_report_against_graph(&report, &graph),
                Ok(()),
                "against graph, strategy={}", strategy.name()
            );
        }
    }

    /// The tentpole invariant: an [`IncrementalPipeline`] fed a recorded
    /// churn stream stays bit-identical to `Pipeline::run` on the
    /// materialized graph — after every applied batch, at every tested
    /// thread count, with and without disjoint pairs.
    #[test]
    fn incremental_pipeline_matches_batch_oracle(
        seed in 0u64..1_000_000,
        batches in vec(10usize..40, 2..5),
        include_disjoint in proptest::bool::ANY,
    ) {
        let sim_cfg = ChurnConfig {
            initial_users: 40,
            initial_roles: 12,
            initial_permissions: 50,
            seed,
            ..ChurnConfig::default()
        };
        let mut sim = ChurnSimulator::new(sim_cfg);
        let config = DetectionConfig {
            similarity: SimilarityConfig {
                include_disjoint,
                ..SimilarityConfig::default()
            },
            ..DetectionConfig::default()
        };
        let mut inc = IncrementalPipeline::new(sim.graph(), config);
        sim.drain_deltas(); // seeding deltas predate the snapshot
        for (i, steps) in batches.iter().enumerate() {
            sim.run(*steps);
            inc.apply_all(&sim.drain_deltas()).unwrap();
            prop_assert_eq!(inc.graph(), sim.graph());
            let got = inc.report();
            for threads in [1usize, 2, 4, 8] {
                let cfg = DetectionConfig {
                    parallelism: Parallelism::Threads(threads),
                    ..config
                };
                let mut want = Pipeline::new(cfg).run(sim.graph());
                want.timings = StageTimings::default();
                want.config = got.config;
                prop_assert_eq!(&got, &want, "batch {} threads {}", i, threads);
            }
        }
    }

    /// Replaying the identical delta stream twice converges to the
    /// identical engine state (full `PartialEq`, not just equal reports),
    /// and `EdgeDelta::replay` reproduces the simulator's graph.
    #[test]
    fn incremental_pipeline_replay_is_deterministic(
        seed in 0u64..1_000_000,
        steps in 20usize..120,
    ) {
        let sim_cfg = ChurnConfig {
            initial_users: 30,
            initial_roles: 10,
            initial_permissions: 40,
            seed,
            ..ChurnConfig::default()
        };
        let mut sim = ChurnSimulator::new(sim_cfg);
        let initial = sim.graph().clone();
        sim.run(steps);
        let stream = sim.drain_deltas();

        let mut replayed = initial.clone();
        rolediet_model::EdgeDelta::replay(&mut replayed, &stream).unwrap();
        prop_assert_eq!(&replayed, sim.graph());

        let config = DetectionConfig::default();
        let mut a = IncrementalPipeline::new(&initial, config);
        let mut b = IncrementalPipeline::new(&initial, config);
        a.apply_all(&stream).unwrap();
        b.apply_all(&stream).unwrap();
        prop_assert_eq!(a, b);
    }
}

/// Recall floor on the figure-3 workload: the approximate HNSW path may
/// miss pairs by design, but on the paper's synthetic generator it must
/// recover the bulk of the planted duplicate and Hamming-1 structure,
/// and everything it does report must be exact (precision 1).
#[test]
fn hnsw_recall_on_figure3_workload_clears_the_floor() {
    use rolediet_cluster::recall::{groups_to_pairs, pair_stats};
    use rolediet_core::config::Strategy;
    use rolediet_synth::{generate_matrix, MatrixGenConfig};

    let gen = generate_matrix(MatrixGenConfig {
        perturbed_per_cluster: 2,
        ..MatrixGenConfig::paper(600, 240, 17)
    });
    let ruam = gen.sparse();
    let rpam = generate_matrix(MatrixGenConfig::paper(600, 200, 18)).sparse();

    let cfg = DetectionConfig::with_strategy(Strategy::hnsw_default());
    let report = Pipeline::new(cfg).run_on_matrices(&ruam, &rpam);

    let dup_truth = groups_to_pairs(&gen.truth.exact_duplicate_groups);
    let dup_stats = pair_stats(&dup_truth, &groups_to_pairs(&report.same_user_groups));
    assert!(
        dup_stats.recall >= 0.8,
        "figure-3 duplicate recall {} below floor",
        dup_stats.recall
    );
    assert_eq!(
        dup_stats.false_positives, 0,
        "reported a non-duplicate pair"
    );

    let found_similar: Vec<(usize, usize)> = report
        .similar_user_pairs
        .iter()
        .map(|p| (p.a, p.b))
        .collect();
    let sim_stats = pair_stats(&gen.truth.planted_similar_pairs, &found_similar);
    assert!(
        sim_stats.recall >= 0.8,
        "figure-3 similar-pair recall {} below floor",
        sim_stats.recall
    );
}
