//! The end-to-end detection pipeline (Figure 1 of the paper).
//!
//! Step 1 — represent the tripartite graph as its two assignment
//! matrices; Step 2/3 — extract RUAM and RPAM; then run the linear-time
//! detectors (T1–T3) off row/column sums and the configured grouping
//! strategy for T4/T5, on both sides. Every stage is timed.

use std::time::{Duration, Instant};

use rolediet_matrix::CsrMatrix;
use rolediet_model::TripartiteGraph;

use crate::config::{DetectionConfig, SimilarityConfig};
use crate::detector::detect_degrees_with;
use crate::report::{Report, SimilarPair};
use crate::strategy::{
    dbscan_same_groups_cached, dbscan_similar_pairs_cached, find_same_groups,
    find_same_groups_with_empty, find_similar_pairs, hnsw_same_groups, hnsw_similar_pairs,
    DbscanEngine, HnswEngine,
};

/// The detection framework: runs all detectors over a graph or a pair of
/// assignment matrices.
///
/// # Examples
///
/// ```
/// use rolediet_core::{DetectionConfig, Pipeline, Strategy};
/// use rolediet_model::TripartiteGraph;
///
/// let graph = TripartiteGraph::figure1_example();
/// let report = Pipeline::new(DetectionConfig::with_strategy(Strategy::ExactDbscan))
///     .run(&graph);
/// assert_eq!(report.userless_roles, vec![2]); // R03
/// ```
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    config: DetectionConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: DetectionConfig) -> Self {
        Pipeline { config }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &DetectionConfig {
        &self.config
    }

    /// Builds an [`IncrementalPipeline`](crate::incremental::IncrementalPipeline)
    /// seeded from `graph` under this pipeline's configuration, so batch
    /// and incremental detection share one [`DetectionConfig`].
    pub fn incremental(&self, graph: &TripartiteGraph) -> crate::incremental::IncrementalPipeline {
        crate::incremental::IncrementalPipeline::new(graph, self.config)
    }

    /// Runs all detectors over a tripartite graph.
    ///
    /// RUAM and RPAM are extracted with the two-pass parallel CSR build
    /// ([`CsrMatrix::from_row_iter_two_pass`]) on the configured number
    /// of workers; the count is recorded in
    /// [`StageThreads::matrix_build`](crate::report::StageThreads).
    pub fn run(&self, graph: &TripartiteGraph) -> Report {
        let threads = self.config.parallelism.threads();
        let start = Instant::now();
        let ruam = graph.ruam_sparse_with(threads);
        let rpam = graph.rpam_sparse_with(threads);
        let matrix_build = start.elapsed();
        let mut report = self.run_on_matrices(&ruam, &rpam);
        report.timings.matrix_build = matrix_build;
        report.timings.threads.matrix_build = threads;
        report
    }

    /// Runs all detectors over pre-built RUAM and RPAM matrices (rows =
    /// roles; RUAM columns = users, RPAM columns = permissions).
    ///
    /// # Panics
    ///
    /// Panics if the matrices disagree on the number of roles.
    pub fn run_on_matrices(&self, ruam: &CsrMatrix, rpam: &CsrMatrix) -> Report {
        let cfg = &self.config;
        let threads = cfg.parallelism.threads();
        let mut report = Report {
            config: *cfg,
            ..Report::default()
        };

        let t0 = Instant::now();
        let degrees = detect_degrees_with(ruam, rpam, threads);
        report.timings.degree_detectors = t0.elapsed();
        report.timings.threads.degree_detectors = threads;
        report.standalone_users = degrees.standalone_users;
        report.standalone_permissions = degrees.standalone_permissions;
        report.standalone_roles = degrees.standalone_roles;
        report.userless_roles = degrees.userless_roles;
        report.permless_roles = degrees.permless_roles;
        report.single_user_roles = degrees.single_user_roles;
        report.single_permission_roles = degrees.single_permission_roles;

        // The exact-DBSCAN strategy routes every O(n²) distance through
        // the packed bounded-distance engine: each side's rows are packed
        // once and shared by the T4 and T5 neighbourhood precomputes,
        // which are timed apart from the grouping they feed (the engine
        // build and all precomputes accumulate into
        // `timings.distance_precompute`).
        let engines = if matches!(cfg.strategy, crate::config::Strategy::ExactDbscan) {
            report.timings.threads.distance_precompute = threads;
            let t0 = Instant::now();
            let e = (
                DbscanEngine::build_with_budget(ruam, cfg.memory_budget_bytes, threads),
                DbscanEngine::build_with_budget(rpam, cfg.memory_budget_bytes, threads),
            );
            report.timings.distance_precompute += t0.elapsed();
            report.timings.distance_shards = e.0.shard_count().max(e.1.shard_count());
            Some(e)
        } else {
            None
        };

        // The ApproxHnsw strategy builds one batch-parallel index per
        // side ([`HnswEngine`]) and shares it between the T4 and T5
        // probes; construction (packing + the two-phase batched build,
        // generation size `cfg.hnsw_batch`) accumulates into
        // `timings.hnsw_build`, apart from the probes it feeds.
        let (hnsw_engines, hnsw_probe_k) =
            if let crate::config::Strategy::ApproxHnsw { params, probe_k } = cfg.strategy {
                report.timings.threads.hnsw_build = threads;
                let t0 = Instant::now();
                let e = (
                    HnswEngine::build(ruam, params, cfg.hnsw_batch, threads),
                    HnswEngine::build(rpam, params, cfg.hnsw_batch, threads),
                );
                report.timings.hnsw_build = t0.elapsed();
                (Some(e), probe_k)
            } else {
                (None, 0)
            };

        if let Some((ruam_engine, rpam_engine)) = &engines {
            let (groups, pre, grouping) =
                dbscan_same_stage(ruam_engine, cfg.include_empty_duplicates, threads);
            report.same_user_groups = groups;
            report.timings.distance_precompute += pre;
            report.timings.same_users = grouping;

            let (groups, pre, grouping) =
                dbscan_same_stage(rpam_engine, cfg.include_empty_duplicates, threads);
            report.same_permission_groups = groups;
            report.timings.distance_precompute += pre;
            report.timings.same_permissions = grouping;
        } else if let Some((ruam_engine, rpam_engine)) = &hnsw_engines {
            let same = |engine: &HnswEngine| {
                let mut groups = hnsw_same_groups(engine, hnsw_probe_k, threads);
                if !cfg.include_empty_duplicates {
                    groups.retain(|g| engine.row_norm(g[0]) > 0);
                }
                groups
            };
            let t0 = Instant::now();
            report.same_user_groups = same(ruam_engine);
            report.timings.same_users = t0.elapsed();

            let t0 = Instant::now();
            report.same_permission_groups = same(rpam_engine);
            report.timings.same_permissions = t0.elapsed();
        } else {
            let same = |m: &CsrMatrix| {
                if cfg.include_empty_duplicates {
                    find_same_groups_with_empty(m, &cfg.strategy, cfg.parallelism)
                } else {
                    find_same_groups(m, &cfg.strategy, cfg.parallelism)
                }
            };
            let t0 = Instant::now();
            report.same_user_groups = same(ruam);
            report.timings.same_users = t0.elapsed();

            let t0 = Instant::now();
            report.same_permission_groups = same(rpam);
            report.timings.same_permissions = t0.elapsed();
        }
        report.timings.threads.same_users = threads;
        report.timings.threads.same_permissions = threads;

        // The MinHash stage runs whenever the MinHash strategy is
        // selected (T4 banding at threshold 0, and T5 unless skipped).
        if matches!(cfg.strategy, crate::config::Strategy::MinHashLsh { .. }) {
            report.timings.threads.minhash = threads;
        }

        // The grouping half of T4/T5: the exact-DBSCAN strategy assigns
        // clusters through the parallel connected-components kernel;
        // every other strategy extracts groups through the parallel
        // union-find (signature verification or candidate components).
        if matches!(cfg.strategy, crate::config::Strategy::ExactDbscan) {
            report.timings.threads.cluster_expand = threads;
        } else {
            report.timings.threads.group_extract = threads;
        }

        if !cfg.skip_similarity {
            if let Some((ruam_engine, rpam_engine)) = &engines {
                // The engine replaces the transposed inverted index: T5
                // pairs come out of the packed neighbourhoods, so no
                // transpose is built (`threads.transpose` stays 0).
                let (pairs, pre, grouping) =
                    dbscan_similar_stage(ruam_engine, &cfg.similarity, threads);
                report.similar_user_pairs = pairs;
                report.timings.distance_precompute += pre;
                report.timings.similar_users = grouping;

                let (pairs, pre, grouping) =
                    dbscan_similar_stage(rpam_engine, &cfg.similarity, threads);
                report.similar_permission_pairs = pairs;
                report.timings.distance_precompute += pre;
                report.timings.similar_permissions = grouping;
            } else if let Some((ruam_engine, rpam_engine)) = &hnsw_engines {
                // The shared index replaces the transposed inverted
                // index too (`threads.transpose` stays 0).
                let t0 = Instant::now();
                report.similar_user_pairs =
                    hnsw_similar_pairs(ruam_engine, hnsw_probe_k, &cfg.similarity, threads);
                report.timings.similar_users = t0.elapsed();

                let t0 = Instant::now();
                report.similar_permission_pairs =
                    hnsw_similar_pairs(rpam_engine, hnsw_probe_k, &cfg.similarity, threads);
                report.timings.similar_permissions = t0.elapsed();
            } else {
                report.timings.threads.transpose = threads;
                // The disjoint supplement only runs inside the custom T5
                // path, and only when opted in.
                if cfg.similarity.include_disjoint
                    && matches!(cfg.strategy, crate::config::Strategy::Custom)
                {
                    report.timings.threads.disjoint_supplement = threads;
                }
                let t0 = Instant::now();
                let ruam_t = ruam.transpose_with(threads);
                report.similar_user_pairs = find_similar_pairs(
                    ruam,
                    &ruam_t,
                    &cfg.strategy,
                    &cfg.similarity,
                    cfg.parallelism,
                );
                report.timings.similar_users = t0.elapsed();

                let t0 = Instant::now();
                let rpam_t = rpam.transpose_with(threads);
                report.similar_permission_pairs = find_similar_pairs(
                    rpam,
                    &rpam_t,
                    &cfg.strategy,
                    &cfg.similarity,
                    cfg.parallelism,
                );
                report.timings.similar_permissions = t0.elapsed();
            }
            report.timings.threads.similar_users = threads;
            report.timings.threads.similar_permissions = threads;
        }
        report
    }
}

/// One T4 side on the engine: neighbourhood precompute timed apart from
/// the grouping kernel. Returns `(groups, precompute, grouping)`.
fn dbscan_same_stage(
    engine: &DbscanEngine,
    include_empty: bool,
    threads: usize,
) -> (Vec<Vec<usize>>, Duration, Duration) {
    let t0 = Instant::now();
    let neighborhoods = engine.duplicate_neighborhoods(threads);
    let precompute = t0.elapsed();
    let t0 = Instant::now();
    let groups = dbscan_same_groups_cached(engine, &neighborhoods, include_empty, threads);
    (groups, precompute, t0.elapsed())
}

/// One T5 side on the engine: neighbourhood precompute timed apart from
/// the clustering + pair verification. Returns `(pairs, precompute,
/// grouping)`.
fn dbscan_similar_stage(
    engine: &DbscanEngine,
    similarity: &SimilarityConfig,
    threads: usize,
) -> (Vec<SimilarPair>, Duration, Duration) {
    let t0 = Instant::now();
    let neighborhoods = engine.similar_neighborhoods(similarity.threshold, threads);
    let precompute = t0.elapsed();
    let t0 = Instant::now();
    let pairs = dbscan_similar_pairs_cached(engine, &neighborhoods, similarity, threads);
    (pairs, precompute, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use crate::report::SimilarPair;

    #[test]
    fn figure1_full_report() {
        let graph = TripartiteGraph::figure1_example();
        let report = Pipeline::new(DetectionConfig::default()).run(&graph);
        // T1: P01 standalone (index 0); no standalone users/roles.
        assert_eq!(report.standalone_permissions, vec![0]);
        assert!(report.standalone_users.is_empty());
        assert!(report.standalone_roles.is_empty());
        // T2: R03 (index 2) userless; R02 (index 1) permless.
        assert_eq!(report.userless_roles, vec![2]);
        assert_eq!(report.permless_roles, vec![1]);
        // T3: R01 and R05 single-user; R03 single-permission.
        assert_eq!(report.single_user_roles, vec![0, 4]);
        assert_eq!(report.single_permission_roles, vec![2]);
        // T4: {R02, R04} same users; {R04, R05} same permissions.
        assert_eq!(report.same_user_groups, vec![vec![1, 3]]);
        assert_eq!(report.same_permission_groups, vec![vec![3, 4]]);
        // Consolidating both groups saves 2 of 5 roles.
        assert_eq!(
            report.reducible_roles(crate::Side::User)
                + report.reducible_roles(crate::Side::Permission),
            2
        );
    }

    #[test]
    fn all_strategies_agree_on_figure1() {
        let graph = TripartiteGraph::figure1_example();
        let baseline = Pipeline::new(DetectionConfig::default()).run(&graph);
        for strategy in [
            Strategy::ExactDbscan,
            Strategy::hnsw_default(),
            Strategy::minhash_default(),
        ] {
            let report = Pipeline::new(DetectionConfig::with_strategy(strategy)).run(&graph);
            assert_eq!(report.same_user_groups, baseline.same_user_groups);
            assert_eq!(
                report.same_permission_groups,
                baseline.same_permission_groups
            );
            // Degree findings are strategy-independent.
            assert_eq!(report.single_user_roles, baseline.single_user_roles);
        }
    }

    #[test]
    fn skip_similarity_flag() {
        let graph = TripartiteGraph::figure1_example();
        let cfg = DetectionConfig {
            skip_similarity: true,
            ..DetectionConfig::default()
        };
        let report = Pipeline::new(cfg).run(&graph);
        assert!(report.similar_user_pairs.is_empty());
        assert!(report.similar_permission_pairs.is_empty());
        assert_eq!(report.timings.similar_users, std::time::Duration::ZERO);
    }

    #[test]
    fn similar_pairs_on_crafted_graph() {
        // Two roles sharing 3 users, one differing in a 4th.
        let mut g = TripartiteGraph::with_counts(4, 2, 1);
        for u in 0..3 {
            g.assign_user(rolediet_model::RoleId(0), rolediet_model::UserId(u))
                .unwrap();
            g.assign_user(rolediet_model::RoleId(1), rolediet_model::UserId(u))
                .unwrap();
        }
        g.assign_user(rolediet_model::RoleId(1), rolediet_model::UserId(3))
            .unwrap();
        let report = Pipeline::new(DetectionConfig::default()).run(&g);
        assert_eq!(report.similar_user_pairs, vec![SimilarPair::new(0, 1, 1)]);
        assert!(report.same_user_groups.is_empty());
    }

    #[test]
    fn empty_rows_excluded_from_duplicates_by_default() {
        // Two userless roles and two permless roles: T2 findings, not T4
        // groups — unless include_empty_duplicates is set.
        let mut g = TripartiteGraph::with_counts(2, 4, 2);
        for r in [0u32, 1] {
            g.assign_user(rolediet_model::RoleId(r), rolediet_model::UserId(0))
                .unwrap();
            g.assign_user(rolediet_model::RoleId(r), rolediet_model::UserId(1))
                .unwrap();
        }
        for r in [2u32, 3] {
            g.grant_permission(rolediet_model::RoleId(r), rolediet_model::PermissionId(0))
                .unwrap();
        }
        let report = Pipeline::new(DetectionConfig::default()).run(&g);
        assert_eq!(report.userless_roles, vec![2, 3]);
        assert_eq!(report.permless_roles, vec![0, 1]);
        // Roles 0,1 share users {0,1}; roles 2,3 share permission {0} —
        // those are real duplicate groups. The empty sides are not.
        assert_eq!(report.same_user_groups, vec![vec![0, 1]]);
        assert_eq!(report.same_permission_groups, vec![vec![2, 3]]);

        let cfg = DetectionConfig {
            include_empty_duplicates: true,
            ..DetectionConfig::default()
        };
        let report = Pipeline::new(cfg).run(&g);
        assert_eq!(report.same_user_groups, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(report.same_permission_groups, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn empty_graph_produces_empty_report() {
        let report = Pipeline::new(DetectionConfig::default()).run(&TripartiteGraph::new());
        assert_eq!(report.total_findings(), 0);
    }

    #[test]
    fn timings_are_recorded() {
        let graph = TripartiteGraph::figure1_example();
        let report = Pipeline::new(DetectionConfig::default()).run(&graph);
        // total() includes all stages; it must be at least matrix_build.
        assert!(report.timings.total() >= report.timings.matrix_build);
    }

    #[test]
    fn per_stage_thread_counts_are_recorded() {
        use crate::config::{Parallelism, SimilarityConfig};
        let graph = TripartiteGraph::figure1_example();
        let cfg = DetectionConfig {
            parallelism: Parallelism::Threads(4),
            similarity: SimilarityConfig {
                include_disjoint: true,
                ..SimilarityConfig::default()
            },
            ..DetectionConfig::default()
        };
        let report = Pipeline::new(cfg).run(&graph);
        let threads = report.timings.threads;
        assert_eq!(threads.matrix_build, 4);
        assert_eq!(threads.degree_detectors, 4);
        assert_eq!(threads.same_users, 4);
        assert_eq!(threads.same_permissions, 4);
        assert_eq!(threads.transpose, 4);
        assert_eq!(threads.similar_users, 4);
        assert_eq!(threads.similar_permissions, 4);
        assert_eq!(threads.disjoint_supplement, 4);
        assert_eq!(threads.minhash, 0, "MinHash strategy not selected");
        assert_eq!(
            threads.group_extract, 4,
            "custom T4 extracts via union-find"
        );
        assert_eq!(threads.cluster_expand, 0, "DBSCAN strategy not selected");
        assert_eq!(
            threads.distance_precompute, 0,
            "engine only runs under exact-DBSCAN"
        );
        assert_eq!(threads.hnsw_build, 0, "HNSW strategy not selected");
        assert_eq!(report.timings.hnsw_build, std::time::Duration::ZERO);

        // The exact-DBSCAN strategy routes grouping through the
        // connected-components kernel instead of the union-find path,
        // with the packed engine paying the distance plane.
        let cfg = DetectionConfig {
            parallelism: Parallelism::Threads(4),
            ..DetectionConfig::with_strategy(Strategy::ExactDbscan)
        };
        let report = Pipeline::new(cfg).run(&graph);
        assert_eq!(report.timings.threads.cluster_expand, 4);
        assert_eq!(report.timings.threads.group_extract, 0);
        assert_eq!(report.timings.threads.distance_precompute, 4);
        assert_eq!(
            report.timings.threads.transpose, 0,
            "the engine replaces the transposed index"
        );
        assert_eq!(
            report.timings.distance_shards, 1,
            "no memory budget → flat resident engine"
        );

        // Stages that do not run report 0 threads.
        let cfg = DetectionConfig {
            skip_similarity: true,
            parallelism: Parallelism::Threads(2),
            ..DetectionConfig::default()
        };
        let report = Pipeline::new(cfg).run(&graph);
        assert_eq!(report.timings.threads.similar_users, 0);
        assert_eq!(report.timings.threads.transpose, 0);
        assert_eq!(report.timings.threads.disjoint_supplement, 0);
        assert_eq!(report.timings.threads.degree_detectors, 2);
        assert_eq!(report.timings.threads.matrix_build, 2);

        // The MinHash stage reports its workers when that strategy runs.
        let cfg = DetectionConfig {
            parallelism: Parallelism::Threads(3),
            ..DetectionConfig::with_strategy(Strategy::minhash_default())
        };
        let report = Pipeline::new(cfg).run(&graph);
        assert_eq!(report.timings.threads.minhash, 3);
        assert_eq!(report.timings.threads.disjoint_supplement, 0);

        // The HNSW strategy builds its shared index once per side; like
        // the DBSCAN engine, it replaces the transposed index.
        let cfg = DetectionConfig {
            parallelism: Parallelism::Threads(2),
            ..DetectionConfig::with_strategy(Strategy::hnsw_default())
        };
        let report = Pipeline::new(cfg).run(&graph);
        assert_eq!(report.timings.threads.hnsw_build, 2);
        assert_eq!(
            report.timings.threads.transpose, 0,
            "the shared index replaces the transposed index"
        );
        assert_eq!(report.timings.threads.group_extract, 2);
    }

    #[test]
    fn memory_budget_shards_the_distance_plane_without_changing_results() {
        use crate::config::{Parallelism, SimilarityConfig};
        let graph = TripartiteGraph::figure1_example();
        let base_cfg = DetectionConfig {
            similarity: SimilarityConfig {
                include_disjoint: true,
                ..SimilarityConfig::default()
            },
            ..DetectionConfig::with_strategy(Strategy::ExactDbscan)
        };
        let baseline = Pipeline::new(base_cfg).run(&graph);
        assert_eq!(baseline.timings.distance_shards, 1);
        // A 1-byte budget forces one-row shards; results must not move.
        for budget in [1usize, 10_000] {
            for threads in [1, 2, 4] {
                let cfg = DetectionConfig {
                    memory_budget_bytes: budget,
                    parallelism: Parallelism::Threads(threads),
                    ..base_cfg
                };
                let mut report = Pipeline::new(cfg).run(&graph);
                if budget == 1 {
                    assert!(
                        report.timings.distance_shards > 1,
                        "tiny budget must force multiple shards, got {}",
                        report.timings.distance_shards
                    );
                }
                report.timings = baseline.timings;
                report.config = baseline.config;
                assert_eq!(report, baseline, "budget={budget} threads={threads}");
            }
        }
        // Strategies that never build the engine report zero shards.
        let custom = Pipeline::new(DetectionConfig::default()).run(&graph);
        assert_eq!(custom.timings.distance_shards, 0);
    }

    #[test]
    fn reports_are_identical_across_thread_counts() {
        use crate::config::{Parallelism, SimilarityConfig};
        let graph = TripartiteGraph::figure1_example();
        let base_cfg = DetectionConfig {
            similarity: SimilarityConfig {
                include_disjoint: true,
                ..SimilarityConfig::default()
            },
            ..DetectionConfig::default()
        };
        let baseline = Pipeline::new(base_cfg).run(&graph);
        for threads in [2, 4, 8] {
            let cfg = DetectionConfig {
                parallelism: Parallelism::Threads(threads),
                ..base_cfg
            };
            let mut report = Pipeline::new(cfg).run(&graph);
            // Timings and config legitimately differ between runs.
            report.timings = baseline.timings;
            report.config = baseline.config;
            assert_eq!(report, baseline, "threads={threads}");
        }
    }
}
