//! Trend tracking across detection runs.
//!
//! The framework is meant to run periodically; what an operator watches
//! is the *trend* — are inefficiencies accumulating faster than cleanup
//! approvals burn them down? [`Trend`] accumulates per-run snapshots of
//! the taxonomy counts and renders them as a time-series table or CSV
//! (for the dashboard the paper's operators would wire this into).

use serde::{Deserialize, Serialize};

use rolediet_model::TripartiteGraph;

use crate::report::Report;
use crate::taxonomy::InefficiencyKind;

/// One run's snapshot: taxonomy counts plus graph size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrendPoint {
    /// Caller-supplied label (a date, a run id, a quarter…).
    pub label: String,
    /// Counts per taxonomy kind, in [`InefficiencyKind::all`] order.
    pub counts: Vec<usize>,
    /// Users in the graph at this run.
    pub users: usize,
    /// Roles in the graph at this run.
    pub roles: usize,
    /// Permissions in the graph at this run.
    pub permissions: usize,
}

impl TrendPoint {
    /// Total findings in this snapshot.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// An append-only series of detection snapshots.
///
/// # Examples
///
/// ```
/// use rolediet_core::history::Trend;
/// use rolediet_core::{DetectionConfig, Pipeline};
/// use rolediet_model::TripartiteGraph;
///
/// let graph = TripartiteGraph::figure1_example();
/// let report = Pipeline::new(DetectionConfig::default()).run(&graph);
/// let mut trend = Trend::new();
/// trend.record("2026-Q1", &report, &graph);
/// assert_eq!(trend.len(), 1);
/// assert!(trend.to_csv().starts_with("label,users,roles,permissions,"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trend {
    points: Vec<TrendPoint>,
}

impl Trend {
    /// Creates an empty trend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded snapshots.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recorded snapshots, oldest first.
    pub fn points(&self) -> &[TrendPoint] {
        &self.points
    }

    /// Appends a snapshot of `report` over `graph`.
    pub fn record(&mut self, label: &str, report: &Report, graph: &TripartiteGraph) {
        self.points.push(TrendPoint {
            label: label.to_owned(),
            counts: report
                .findings_by_kind()
                .into_iter()
                .map(|(_, c)| c)
                .collect(),
            users: graph.n_users(),
            roles: graph.n_roles(),
            permissions: graph.n_permissions(),
        });
    }

    /// Per-kind change between the last two snapshots
    /// (`latest − previous`, signed), or `None` with fewer than two.
    pub fn latest_delta(&self) -> Option<Vec<(InefficiencyKind, i64)>> {
        let n = self.points.len();
        if n < 2 {
            return None;
        }
        let (prev, last) = (&self.points[n - 2], &self.points[n - 1]);
        Some(
            InefficiencyKind::all()
                .into_iter()
                .zip(last.counts.iter().zip(&prev.counts))
                .map(|(kind, (&l, &p))| (kind, l as i64 - p as i64))
                .collect(),
        )
    }

    /// Renders the series as CSV: one row per snapshot, one column per
    /// taxonomy kind (labelled `T1-user` …), plus graph sizes.
    ///
    /// Labels are caller-provided free text, so they are escaped per
    /// RFC 4180: a label containing a comma, double quote, CR or LF is
    /// quoted, with embedded quotes doubled. All other fields are
    /// numeric and never need quoting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,users,roles,permissions");
        for kind in InefficiencyKind::all() {
            out.push(',');
            out.push_str(&kind.label());
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{}",
                csv_field(&p.label),
                p.users,
                p.roles,
                p.permissions
            ));
            for c in &p.counts {
                out.push_str(&format!(",{c}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Quotes `field` per RFC 4180 when it contains a delimiter, quote or
/// line break; returns it verbatim otherwise.
fn csv_field(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectionConfig;
    use crate::pipeline::Pipeline;

    fn snapshot(graph: &TripartiteGraph) -> Report {
        Pipeline::new(DetectionConfig::default()).run(graph)
    }

    #[test]
    fn record_and_total() {
        let graph = TripartiteGraph::figure1_example();
        let mut trend = Trend::new();
        assert!(trend.is_empty());
        trend.record("t0", &snapshot(&graph), &graph);
        assert_eq!(trend.len(), 1);
        let p = &trend.points()[0];
        assert_eq!(p.roles, 5);
        assert_eq!(p.counts.len(), InefficiencyKind::all().len());
        assert!(p.total() > 0);
        assert!(trend.latest_delta().is_none(), "needs two points");
    }

    #[test]
    fn delta_tracks_cleanup() {
        let graph = TripartiteGraph::figure1_example();
        let mut trend = Trend::new();
        trend.record("before", &snapshot(&graph), &graph);
        // Consolidate the same-user duplicates and re-detect.
        let plan =
            crate::consolidate::MergePlan::from_report(&snapshot(&graph), graph.n_roles(), true);
        let cleaned = plan.apply(&graph).graph;
        trend.record("after", &snapshot(&cleaned), &cleaned);
        let delta = trend.latest_delta().unwrap();
        let d = |label: &str| {
            delta
                .iter()
                .find(|(k, _)| k.label() == label)
                .map(|&(_, v)| v)
                .unwrap()
        };
        // The merged same-user group disappears (2 roles → 0).
        assert_eq!(d("T4-user"), -2);
        // Role count in the points reflects the merge.
        assert_eq!(trend.points()[1].roles, 4);
    }

    #[test]
    fn csv_shape() {
        let graph = TripartiteGraph::figure1_example();
        let mut trend = Trend::new();
        trend.record("q1", &snapshot(&graph), &graph);
        trend.record("q2", &snapshot(&graph), &graph);
        let csv = trend.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("T1-user"));
        assert!(lines[0].contains("T5-permission"));
        assert!(lines[1].starts_with("q1,4,5,6,"));
        let cols = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn csv_escapes_hostile_labels() {
        let graph = TripartiteGraph::figure1_example();
        let mut trend = Trend::new();
        trend.record("2026-01-01, pre \"diet\"", &snapshot(&graph), &graph);
        trend.record("line\nbreak", &snapshot(&graph), &graph);
        trend.record("plain", &snapshot(&graph), &graph);
        let csv = trend.to_csv();
        // The comma inside the first label must not add a column: split
        // on the *quoted* form and the column counts stay rectangular.
        assert!(csv.contains("\"2026-01-01, pre \"\"diet\"\"\",4,5,6,"));
        assert!(csv.contains("\"line\nbreak\",4,5,6,"));
        assert!(csv.contains("\nplain,4,5,6,"), "plain labels stay bare");
        let header_cols = csv.lines().next().unwrap().split(',').count();
        let last = csv.lines().next_back().unwrap();
        assert_eq!(last.split(',').count(), header_cols);
    }

    #[test]
    fn serde_roundtrip() {
        let graph = TripartiteGraph::figure1_example();
        let mut trend = Trend::new();
        trend.record("x", &snapshot(&graph), &graph);
        let json = serde_json::to_string(&trend).unwrap();
        let back: Trend = serde_json::from_str(&json).unwrap();
        assert_eq!(trend, back);
    }
}
