//! Rendering reports for humans: named Markdown audit documents.
//!
//! [`Report::summary_table`](crate::Report::summary_table) gives the
//! quick counts; [`render_markdown`] produces the artifact an
//! administrator actually reviews — every finding resolved to entity
//! names, grouped by taxonomy type, with the consolidation estimate.

use std::fmt::Write as _;

use rolediet_model::{PermissionId, RbacDataset, RoleId, UserId};

use crate::report::Report;
use crate::taxonomy::Side;

/// Limits applied while rendering (real reports can hold tens of
/// thousands of findings; the document lists the first `max_per_section`
/// of each and says how many were elided).
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    /// Maximum findings listed per section.
    pub max_per_section: usize,
    /// Document title.
    pub title: &'static str,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            max_per_section: 25,
            title: "RBAC inefficiency report",
        }
    }
}

/// Renders a report as a Markdown document with entity names resolved
/// against `dataset`.
///
/// # Panics
///
/// Panics if the report's indices do not fit the dataset (a report must
/// be rendered against the dataset it was produced from).
pub fn render_markdown(report: &Report, dataset: &RbacDataset, opts: &RenderOptions) -> String {
    let mut out = String::new();
    let role = |r: usize| dataset.role_name(RoleId::from_index(r));
    writeln!(out, "# {}\n", opts.title).expect("write to string");
    writeln!(out, "```\n{}```\n", report.summary_table()).expect("write to string");

    section_list(
        &mut out,
        opts,
        "T1 — standalone users",
        &report.standalone_users,
        |&u| dataset.user_name(UserId::from_index(u)).to_owned(),
    );
    section_list(
        &mut out,
        opts,
        "T1 — standalone permissions",
        &report.standalone_permissions,
        |&p| {
            dataset
                .permission_name(PermissionId::from_index(p))
                .to_owned()
        },
    );
    section_list(
        &mut out,
        opts,
        "T1 — standalone roles",
        &report.standalone_roles,
        |&r| role(r).to_owned(),
    );
    section_list(
        &mut out,
        opts,
        "T2 — roles without users",
        &report.userless_roles,
        |&r| role(r).to_owned(),
    );
    section_list(
        &mut out,
        opts,
        "T2 — roles without permissions",
        &report.permless_roles,
        |&r| role(r).to_owned(),
    );
    section_list(
        &mut out,
        opts,
        "T3 — single-user roles",
        &report.single_user_roles,
        |&r| role(r).to_owned(),
    );
    section_list(
        &mut out,
        opts,
        "T3 — single-permission roles",
        &report.single_permission_roles,
        |&r| role(r).to_owned(),
    );
    section_list(
        &mut out,
        opts,
        "T4 — roles sharing the same users",
        &report.same_user_groups,
        |g| g.iter().map(|&r| role(r)).collect::<Vec<_>>().join(" = "),
    );
    section_list(
        &mut out,
        opts,
        "T4 — roles sharing the same permissions",
        &report.same_permission_groups,
        |g| g.iter().map(|&r| role(r)).collect::<Vec<_>>().join(" = "),
    );
    section_list(
        &mut out,
        opts,
        "T5 — roles with similar users",
        &report.similar_user_pairs,
        |p| format!("{} ~ {} (distance {})", role(p.a), role(p.b), p.distance),
    );
    section_list(
        &mut out,
        opts,
        "T5 — roles with similar permissions",
        &report.similar_permission_pairs,
        |p| format!("{} ~ {} (distance {})", role(p.a), role(p.b), p.distance),
    );

    let removable = report.reducible_roles(Side::User) + report.reducible_roles(Side::Permission);
    writeln!(
        out,
        "## Consolidation estimate\n\nConsolidating the T4 groups alone would remove up to \
         **{removable}** of {} roles (overlapping groups may reduce this).\n\n*All findings are proposals; review each \
         before acting (legitimate corner cases exist).*",
        dataset.graph().n_roles()
    )
    .expect("write to string");
    out
}

fn section_list<T>(
    out: &mut String,
    opts: &RenderOptions,
    title: &str,
    items: &[T],
    mut fmt_item: impl FnMut(&T) -> String,
) {
    if items.is_empty() {
        return;
    }
    writeln!(out, "## {title} ({})\n", items.len()).expect("write to string");
    for item in items.iter().take(opts.max_per_section) {
        writeln!(out, "- {}", fmt_item(item)).expect("write to string");
    }
    if items.len() > opts.max_per_section {
        writeln!(out, "- … and {} more", items.len() - opts.max_per_section)
            .expect("write to string");
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectionConfig;
    use crate::pipeline::Pipeline;

    fn figure1_markdown(opts: &RenderOptions) -> String {
        let ds = RbacDataset::figure1_example();
        let report = Pipeline::new(DetectionConfig::default()).run(ds.graph());
        render_markdown(&report, &ds, opts)
    }

    #[test]
    fn figure1_document_names_every_finding() {
        let md = figure1_markdown(&RenderOptions::default());
        assert!(md.starts_with("# RBAC inefficiency report"));
        assert!(md.contains("- P01"), "standalone permission named");
        assert!(md.contains("## T2 — roles without users (1)"));
        assert!(md.contains("- R03"));
        assert!(md.contains("- R02 = R04"), "duplicate group rendered");
        assert!(md.contains("- R04 = R05"));
        assert!(md.contains("**2** of 5 roles"), "{md}");
        assert!(md.contains("proposals"));
    }

    #[test]
    fn empty_sections_are_omitted() {
        let md = figure1_markdown(&RenderOptions::default());
        assert!(
            !md.contains("T1 — standalone users ("),
            "no standalone users in Figure 1"
        );
        assert!(!md.contains("T1 — standalone roles ("));
    }

    #[test]
    fn long_sections_are_elided() {
        let ds = RbacDataset::figure1_example();
        let mut report = Pipeline::new(DetectionConfig::default()).run(ds.graph());
        report.single_user_roles = vec![0; 30];
        let md = render_markdown(
            &report,
            &ds,
            &RenderOptions {
                max_per_section: 3,
                ..RenderOptions::default()
            },
        );
        assert!(md.contains("… and 27 more"));
    }
}
