//! Finding-level review workflow.
//!
//! The paper is emphatic that findings "must not be fixed automatically
//! as they may correspond to legitimate corner cases. Therefore, the
//! administrator must carefully consider and approve every instance."
//! This module operationalizes that sentence:
//!
//! * every consolidation-relevant finding (T4 group, standalone role)
//!   gets a stable [`FindingKey`] fingerprint;
//! * an [`AuditLog`] stores per-finding [`Decision`]s that persist across
//!   detection runs (a re-detected finding keeps its earlier decision —
//!   crucial for the periodic model, where the same duplicate group shows
//!   up every run until someone acts);
//! * [`AuditLog::approved_plan`] builds a [`MergePlan`] from **approved
//!   findings only** — the bridge from review to action.
//!
//! Fingerprints are content hashes of the finding's kind and member ids,
//! so they are stable as long as the dataset keeps its ids stable between
//! runs (true for any export pipeline that interns names in a fixed
//! order; for id-unstable pipelines, fingerprint over names by mapping
//! members through the interner first).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::consolidate::MergePlan;
use crate::report::Report;
use crate::taxonomy::Side;

/// Stable fingerprint of one finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FindingKey(pub u128);

/// Fingerprints a group-type finding from its kind label and members.
pub fn fingerprint(kind_label: &str, members: &[usize]) -> FindingKey {
    // Hash the label bytes and the member ids through the same 128-bit
    // FNV pair used for row signatures.
    let mut words: Vec<u64> = kind_label.bytes().map(u64::from).collect();
    words.push(u64::MAX); // separator
    words.extend(members.iter().map(|&m| m as u64));
    FindingKey(rolediet_matrix::hash_words(&words).0)
}

/// An administrator's decision on one finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Not yet reviewed.
    Pending,
    /// Approved for consolidation.
    Approved,
    /// Rejected — a legitimate corner case; keep and stop re-asking.
    Rejected {
        /// Why (e.g. "CEO-only role, intentionally single-user").
        reason: String,
    },
}

/// One reviewable finding surfaced from a report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReviewItem {
    /// The finding's fingerprint.
    pub key: FindingKey,
    /// Taxonomy label (`"T4-user"`, `"T4-permission"`, `"T1-role"`).
    pub kind: String,
    /// Role ids involved.
    pub members: Vec<usize>,
    /// Current decision.
    pub decision: Decision,
}

/// Persistent record of decisions across runs.
///
/// # Examples
///
/// ```
/// use rolediet_core::audit::AuditLog;
/// use rolediet_core::{DetectionConfig, Pipeline};
/// use rolediet_model::TripartiteGraph;
///
/// let graph = TripartiteGraph::figure1_example();
/// let report = Pipeline::new(DetectionConfig::default()).run(&graph);
/// let mut log = AuditLog::new();
/// let items = log.review(&report);
/// assert_eq!(items.len(), 2); // two T4 groups
/// log.approve(items[0].key);
/// let plan = log.approved_plan(&report, graph.n_roles());
/// assert_eq!(plan.roles_removed(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditLog {
    // Keyed by fingerprint in a BTreeMap so a serialized log is
    // byte-stable across runs, like every other artifact.
    decisions: BTreeMap<FindingKey, Decision>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded decisions (approved + rejected).
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Returns `true` if no decision has been recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Enumerates the report's consolidation-relevant findings with their
    /// current decision (T4 groups on both sides, then standalone roles),
    /// in report order. Previously decided findings keep their decision;
    /// new ones are [`Decision::Pending`].
    pub fn review(&mut self, report: &Report) -> Vec<ReviewItem> {
        let mut items = Vec::new();
        let sides = [
            (&report.same_user_groups, "T4-user"),
            (&report.same_permission_groups, "T4-permission"),
        ];
        for (groups, kind) in sides {
            for g in groups.iter() {
                items.push(self.item(kind, g.clone()));
            }
        }
        for &r in &report.standalone_roles {
            items.push(self.item("T1-role", vec![r]));
        }
        items
    }

    fn item(&self, kind: &str, members: Vec<usize>) -> ReviewItem {
        let key = fingerprint(kind, &members);
        ReviewItem {
            key,
            kind: kind.to_owned(),
            decision: self
                .decisions
                .get(&key)
                .cloned()
                .unwrap_or(Decision::Pending),
            members,
        }
    }

    /// Marks a finding approved.
    pub fn approve(&mut self, key: FindingKey) {
        self.decisions.insert(key, Decision::Approved);
    }

    /// Marks a finding rejected with a reason.
    pub fn reject(&mut self, key: FindingKey, reason: &str) {
        self.decisions.insert(
            key,
            Decision::Rejected {
                reason: reason.to_owned(),
            },
        );
    }

    /// The recorded decision for a key, if any.
    pub fn decision(&self, key: FindingKey) -> Option<&Decision> {
        self.decisions.get(&key)
    }

    /// Builds a merge plan containing **only approved** findings of
    /// `report`: approved T4 groups become merges (same overlap rules as
    /// [`MergePlan::from_report`]), approved standalone roles are
    /// dropped. Pending and rejected findings are untouched.
    pub fn approved_plan(&self, report: &Report, n_roles: usize) -> MergePlan {
        let approved = |kind: &str, members: &[usize]| {
            matches!(
                self.decisions.get(&fingerprint(kind, members)),
                Some(Decision::Approved)
            )
        };
        // Filter the report down to approved findings, then reuse the
        // standard planner (which handles overlap claiming).
        let filtered = Report {
            same_user_groups: report
                .same_user_groups
                .iter()
                .filter(|g| approved("T4-user", g))
                .cloned()
                .collect(),
            same_permission_groups: report
                .same_permission_groups
                .iter()
                .filter(|g| approved("T4-permission", g))
                .cloned()
                .collect(),
            standalone_roles: report
                .standalone_roles
                .iter()
                .copied()
                .filter(|&r| approved("T1-role", &[r]))
                .collect(),
            ..Report::default()
        };
        MergePlan::from_report(&filtered, n_roles, true)
    }

    /// Drops decisions whose findings no longer appear in `report`
    /// (resolved by consolidation or by the data changing underneath).
    /// Returns the number pruned.
    pub fn prune_stale(&mut self, report: &Report) -> usize {
        let mut live: std::collections::BTreeSet<FindingKey> = std::collections::BTreeSet::new();
        for g in &report.same_user_groups {
            live.insert(fingerprint("T4-user", g));
        }
        for g in &report.same_permission_groups {
            live.insert(fingerprint("T4-permission", g));
        }
        for &r in &report.standalone_roles {
            live.insert(fingerprint("T1-role", &[r]));
        }
        let before = self.decisions.len();
        self.decisions.retain(|k, _| live.contains(k));
        before - self.decisions.len()
    }

    /// Counts per decision state over a report's findings:
    /// `(pending, approved, rejected)`.
    pub fn tally(&mut self, report: &Report) -> (usize, usize, usize) {
        let items = self.review(report);
        let mut t = (0, 0, 0);
        for i in items {
            match i.decision {
                Decision::Pending => t.0 += 1,
                Decision::Approved => t.1 += 1,
                Decision::Rejected { .. } => t.2 += 1,
            }
        }
        t
    }
}

/// The side a T4 kind label refers to, if it is one.
pub fn side_of_kind(kind: &str) -> Option<Side> {
    match kind {
        "T4-user" => Some(Side::User),
        "T4-permission" => Some(Side::Permission),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectionConfig;
    use crate::consolidate::verify_preserves_access;
    use crate::pipeline::Pipeline;
    use rolediet_model::TripartiteGraph;

    fn figure1() -> (TripartiteGraph, Report) {
        let g = TripartiteGraph::figure1_example();
        let r = Pipeline::new(DetectionConfig::default()).run(&g);
        (g, r)
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = fingerprint("T4-user", &[1, 3]);
        assert_eq!(a, fingerprint("T4-user", &[1, 3]));
        assert_ne!(a, fingerprint("T4-permission", &[1, 3]));
        assert_ne!(a, fingerprint("T4-user", &[1, 4]));
        assert_ne!(a, fingerprint("T4-user", &[1]));
        // Label/member boundary cannot be confused.
        assert_ne!(fingerprint("T4", &[1]), fingerprint("T", &[4, 1]));
    }

    #[test]
    fn review_lists_findings_with_pending_default() {
        let (_, report) = figure1();
        let mut log = AuditLog::new();
        let items = log.review(&report);
        assert_eq!(items.len(), 2);
        assert!(items.iter().all(|i| i.decision == Decision::Pending));
        assert_eq!(items[0].kind, "T4-user");
        assert_eq!(items[0].members, vec![1, 3]);
        assert_eq!(items[1].kind, "T4-permission");
        assert_eq!(items[1].members, vec![3, 4]);
    }

    #[test]
    fn decisions_persist_across_runs() {
        let (graph, report) = figure1();
        let mut log = AuditLog::new();
        let items = log.review(&report);
        log.reject(items[0].key, "user set is the board of directors");
        // A fresh detection run on the same data…
        let report2 = Pipeline::new(DetectionConfig::default()).run(&graph);
        let items2 = log.review(&report2);
        assert!(matches!(items2[0].decision, Decision::Rejected { .. }));
        assert_eq!(items2[1].decision, Decision::Pending);
        // Serde round trip (the on-disk lifecycle).
        let json = serde_json::to_string(&log).unwrap();
        let mut back: AuditLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.review(&report2), items2);
    }

    #[test]
    fn approved_plan_only_touches_approved_findings() {
        let (graph, report) = figure1();
        let mut log = AuditLog::new();
        let items = log.review(&report);
        // Nothing approved → empty plan.
        let plan = log.approved_plan(&report, graph.n_roles());
        assert_eq!(plan.roles_removed(), 0);
        // Approve only the permission-side group.
        log.approve(items[1].key);
        let plan = log.approved_plan(&report, graph.n_roles());
        assert_eq!(plan.merges.len(), 1);
        assert_eq!(plan.merges[0].keep.index(), 3);
        let outcome = plan.apply(&graph);
        assert_eq!(outcome.graph.n_roles(), 4);
        assert!(verify_preserves_access(&graph, &outcome.graph).is_empty());
    }

    #[test]
    fn standalone_roles_flow_through_approval() {
        let mut g = TripartiteGraph::with_counts(1, 2, 1);
        g.assign_user(rolediet_model::RoleId(0), rolediet_model::UserId(0))
            .unwrap();
        g.grant_permission(rolediet_model::RoleId(0), rolediet_model::PermissionId(0))
            .unwrap();
        let report = Pipeline::new(DetectionConfig::default()).run(&g);
        assert_eq!(report.standalone_roles, vec![1]);
        let mut log = AuditLog::new();
        let items = log.review(&report);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].kind, "T1-role");
        log.approve(items[0].key);
        let plan = log.approved_plan(&report, g.n_roles());
        assert_eq!(plan.drop_standalone.len(), 1);
        assert_eq!(plan.apply(&g).graph.n_roles(), 1);
    }

    #[test]
    fn prune_and_tally() {
        let (graph, report) = figure1();
        let mut log = AuditLog::new();
        let items = log.review(&report);
        log.approve(items[0].key);
        log.reject(items[1].key, "distinct owners");
        assert_eq!(log.tally(&report), (0, 1, 1));
        // Apply the approved merge; re-detect; the approved finding is
        // gone and gets pruned, the rejected one survives.
        let plan = log.approved_plan(&report, graph.n_roles());
        let cleaned = plan.apply(&graph).graph;
        let report2 = Pipeline::new(DetectionConfig::default()).run(&cleaned);
        let pruned = log.prune_stale(&report2);
        // Note: role indices shifted after the merge, so BOTH old keys
        // are stale against the new report — fingerprints are only stable
        // while ids are. This is the documented contract; the test pins
        // it so the caveat stays true.
        assert_eq!(pruned, 2);
        assert!(log.is_empty());
    }
}
