//! The paper's custom co-occurrence algorithm (Section III-C, "Our
//! Algorithm").
//!
//! Let `|Rⁱ|` be the norm of role `i` (number of users assigned to it) and
//! `gⁱʲ` the number of user co-occurrences between roles `i` and `j` — the
//! off-diagonal entries of `C = A·Aᵀ` for RUAM `A`. The paper defines the
//! indicator
//!
//! ```text
//! 𝕀ⁱʲ = 1  iff  |Rⁱ| = gⁱʲ = |Rʲ|,  i ≠ j
//! ```
//!
//! and the groups of interest are the sets closed under `𝕀ⁱʲ = 1` —
//! exactly the roles with *identical* user sets (T4). Because
//! `Hamming(i,j) = |Rⁱ| + |Rʲ| − 2gⁱʲ`, the same machinery generalizes to
//! T5: roles within a user-set distance `t`.
//!
//! # Why this is fast
//!
//! Materializing `C` is quadratic, but `C` is extremely sparse: a pair of
//! roles only has `gⁱʲ > 0` if some user holds both. Walking the inverted
//! index (RUAM transposed) therefore enumerates only the non-zero entries,
//! in `O(Σ_u deg(u)²)` — the number of co-assignments, not the number of
//! role pairs. Two refinements on top:
//!
//! * **T4 signature fast path** — identical rows are found by verified
//!   content hashing in one linear pass ([`same_groups`]); the indicator
//!   evaluation ([`same_groups_via_indicator`]) is kept as an
//!   independently-implemented verification oracle and for tests.
//! * **T5 disjoint supplement** — pairs with `gⁱʲ = 0` can still be within
//!   distance `t` when both norms are small (`|Rⁱ| + |Rʲ| ≤ t`). The
//!   co-occurrence stream cannot see them; an optional pass over low-norm
//!   rows adds them (see
//!   [`SimilarityConfig::include_disjoint`](crate::SimilarityConfig)).

use rolediet_matrix::ops::{for_each_cooccurring_pair, for_each_cooccurring_pair_in};
use rolediet_matrix::parallel::par_map_rows;
use rolediet_matrix::{CsrMatrix, RowMatrix, SignatureIndex};

use crate::config::SimilarityConfig;
use crate::report::SimilarPair;

/// T4 — groups of roles with identical rows, via the signature fast path.
///
/// Exact: candidates grouped by a 128-bit content hash are re-verified
/// bit-for-bit. Groups are sorted by first member; zero-norm (empty) roles
/// form one group when there are at least two of them.
///
/// # Examples
///
/// ```
/// use rolediet_core::cooccur::same_groups;
/// use rolediet_matrix::CsrMatrix;
///
/// let ruam = CsrMatrix::from_rows_of_indices(4, 3, &[
///     vec![0, 1], vec![2], vec![0, 1], vec![2],
/// ]).unwrap();
/// assert_eq!(same_groups(&ruam), vec![vec![0, 2], vec![1, 3]]);
/// ```
pub fn same_groups<M: RowMatrix>(matrix: &M) -> Vec<Vec<usize>> {
    SignatureIndex::build(matrix).groups_verified(matrix)
}

/// [`same_groups`] with the signature hashing
/// ([`SignatureIndex::build_with`]) *and* the group extraction split over
/// `threads` workers: candidate buckets are verified bit-for-bit on
/// per-range [`UnionFind`](rolediet_cluster::UnionFind) forests joined
/// in range order, and the final groups are assembled with the parallel
/// [`groups_min_size_with`](rolediet_cluster::UnionFind::groups_min_size_with).
///
/// Row equality is transitive and signature buckets partition the rows,
/// so the union-find components are exactly the equality classes the
/// sequential `groups_verified` emits; under the sorted-groups contract
/// the output is identical to [`same_groups`] for every thread count
/// (pinned by tests).
pub fn same_groups_with<M: RowMatrix + Sync>(matrix: &M, threads: usize) -> Vec<Vec<usize>> {
    let candidates = SignatureIndex::build_with(matrix, threads).candidate_groups();
    let n = matrix.rows();
    let forest = rolediet_matrix::parallel::par_map_reduce_ranges(
        candidates.len(),
        threads,
        |range| {
            let mut local = rolediet_cluster::UnionFind::new(n);
            for group in &candidates[range] {
                // Same partition loop as `SignatureIndex::groups_verified`,
                // emitting unions instead of member lists.
                let mut remaining = group.clone();
                while remaining.len() >= 2 {
                    let pivot = remaining[0];
                    let (same, diff): (Vec<usize>, Vec<usize>) = remaining
                        .into_iter()
                        .partition(|&r| r == pivot || matrix.rows_equal(pivot, r));
                    for &r in &same[1..] {
                        local.union(pivot, r);
                    }
                    remaining = diff;
                }
            }
            local
        },
        |acc, part| acc.merge_from(&part),
    );
    match forest {
        Some(mut uf) => uf.groups_min_size_with(2, threads),
        None => Vec::new(),
    }
}

/// T4 — the same groups, computed by literally evaluating the paper's
/// indicator function over the streamed co-occurrence matrix.
///
/// Used as a second, independently-implemented exact oracle (the two
/// implementations cross-check each other in tests) and to demonstrate
/// the algorithm exactly as published. Zero-norm roles never co-occur with
/// anything, but `|Rⁱ| = gⁱʲ = |Rʲ| = 0` still holds for any two of them,
/// so they are grouped explicitly.
pub fn same_groups_via_indicator(matrix: &CsrMatrix, transpose: &CsrMatrix) -> Vec<Vec<usize>> {
    let n = matrix.n_rows();
    let mut uf = rolediet_cluster::UnionFind::new(n);
    for_each_cooccurring_pair(matrix, transpose, |i, j, g| {
        if matrix.row_norm(i) == g && matrix.row_norm(j) == g {
            uf.union(i, j);
        }
    });
    // Degenerate case: all-empty rows are identical to each other.
    let mut first_empty: Option<usize> = None;
    for i in 0..n {
        if matrix.row_norm(i) == 0 {
            if let Some(f) = first_empty {
                uf.union(f, i);
            } else {
                first_empty = Some(i);
            }
        }
    }
    uf.groups_min_size(2)
}

/// T4 — the naïve all-pairs baseline the paper dismisses ("largely
/// inefficient and does not scale"): compare every pair of rows and union
/// the equal ones.
///
/// Quadratic in roles. Kept as a third independent oracle and as the
/// lower anchor of the `abl-signature` ablation bench.
pub fn same_groups_naive<M: RowMatrix>(matrix: &M) -> Vec<Vec<usize>> {
    let n = matrix.rows();
    let mut uf = rolediet_cluster::UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if matrix.rows_equal(i, j) {
                uf.union(i, j);
            }
        }
    }
    uf.groups_min_size(2)
}

/// T5 — role pairs whose rows differ in `1..=cfg.threshold` positions.
///
/// Streams the co-occurrence pairs and applies
/// `|Rⁱ| + |Rʲ| − 2gⁱʲ ≤ t`; identical pairs (distance 0) are excluded —
/// they are T4 findings. With [`SimilarityConfig::include_disjoint`] the
/// low-norm supplement is added. Pairs are sorted by distance, then by
/// `(a, b)`, and truncated to `cfg.max_pairs`.
pub fn similar_pairs(
    matrix: &CsrMatrix,
    transpose: &CsrMatrix,
    cfg: &SimilarityConfig,
) -> Vec<SimilarPair> {
    similar_pairs_parallel(matrix, transpose, cfg, 1)
}

/// T5 — the same computation with the outer loop split over `threads`
/// worker threads via the shared
/// [`parallel`](rolediet_matrix::parallel) substrate. Each worker streams
/// one row range through [`for_each_cooccurring_pair_in`] — the *same*
/// inner loop as the sequential path, with the same shape assertions and
/// the same sorted visit order — so the merged result is bit-identical to
/// [`similar_pairs`] for every thread count.
pub fn similar_pairs_parallel(
    matrix: &CsrMatrix,
    transpose: &CsrMatrix,
    cfg: &SimilarityConfig,
    threads: usize,
) -> Vec<SimilarPair> {
    // Validate on the caller thread so a mismatched transpose panics
    // here, identically to the sequential path, rather than inside a
    // worker.
    rolediet_matrix::ops::assert_transpose_shape(matrix, transpose);
    let t = cfg.threshold;
    // Norms are read O(co-occurrences) times; one precomputed vector is
    // shared by the streaming pass and the disjoint supplement instead
    // of repeated `row_norm` calls.
    let norms = matrix.row_sums();
    let mut pairs = par_map_rows(matrix.n_rows(), threads, |range| {
        let mut out: Vec<SimilarPair> = Vec::new();
        for_each_cooccurring_pair_in(matrix, transpose, range, |i, j, g| {
            let d = norms[i] + norms[j] - 2 * g;
            if d >= 1 && d <= t {
                out.push(SimilarPair::new(i, j, d));
            }
        });
        out
    });
    if cfg.include_disjoint {
        pairs.extend(disjoint_supplement_with_norms(matrix, &norms, t, threads));
    }
    finalize_pairs(pairs, cfg.max_pairs)
}

/// Pairs of rows with disjoint supports whose combined norm is within the
/// threshold (`gⁱʲ = 0`, so the co-occurrence stream never emits them) —
/// the norm-bucketed kernel.
///
/// Low-norm rows are bucketed by norm and only bucket pairs `(nᵃ, nᵇ)`
/// with `1 ≤ nᵃ + nᵇ ≤ t` are enumerated, so the combinations the old
/// quadratic scan wasted most of its time rejecting — empty row vs.
/// empty row, or two rows whose norms already exceed the threshold
/// together — are never visited at all. Within a surviving combination
/// the disjointness check is word-wise: each row folds its CSR column
/// words into a one-word fingerprint (bit `c mod 64`), two rows with
/// non-intersecting fingerprints are proven disjoint without touching
/// their columns, and only fingerprint collisions fall back to the exact
/// merge join. The outer loop splits over `threads` workers with
/// deterministic join order.
///
/// This remains opt-in
/// ([`SimilarityConfig::include_disjoint`](crate::SimilarityConfig)):
/// real RBAC data can contain thousands of empty roles (the paper's
/// organization had 12,000), which produce quadratically many
/// administratively useless "empty vs. nearly-empty" pairs.
pub fn disjoint_supplement(matrix: &CsrMatrix, t: usize, threads: usize) -> Vec<SimilarPair> {
    let norms = matrix.row_sums();
    disjoint_supplement_with_norms(matrix, &norms, t, threads)
}

/// [`disjoint_supplement`] against a caller-provided norms vector, so
/// the T5 path computes norms once for both passes.
fn disjoint_supplement_with_norms(
    matrix: &CsrMatrix,
    norms: &[usize],
    t: usize,
    threads: usize,
) -> Vec<SimilarPair> {
    // Bucket low-norm rows by norm, keeping a one-word fingerprint of
    // each row's columns next to its id.
    let mut buckets: Vec<Vec<(u32, u64)>> = vec![Vec::new(); t + 1];
    for (i, &n) in norms.iter().enumerate() {
        if n <= t {
            let fp = matrix
                .row(i)
                .iter()
                .fold(0u64, |acc, &c| acc | 1u64 << (c % 64));
            buckets[n].push((i as u32, fp));
        }
    }
    let disjoint = |i: u32, fi: u64, j: u32, fj: u64| {
        fi & fj == 0 || matrix.row_dot(i as usize, j as usize) == 0
    };
    let mut out = Vec::new();
    for na in 0..=t {
        for nb in na..=(t - na) {
            if na + nb == 0 {
                continue;
            }
            let (ba, bb) = (&buckets[na], &buckets[nb]);
            if ba.is_empty() || bb.is_empty() {
                continue;
            }
            if na == 0 {
                // Rows of norm 0 are disjoint from everything (and
                // `na < nb` here, since (0, 0) is skipped): the block is
                // dense with exactly `|ba| · |bb|` pairs, so workers
                // write disjoint slices of the output in place — no
                // per-chunk buffers, no growth, no post-merge copy. On
                // real RBAC data this block dominates the supplement
                // (thousands of empty × single-assignment roles).
                let stride = bb.len();
                let start = out.len();
                out.resize(start + ba.len() * stride, SimilarPair::new(0, 1, 0));
                let offsets: Vec<usize> = (0..=ba.len()).map(|x| x * stride).collect();
                rolediet_matrix::parallel::par_fill_by_offsets(
                    &mut out[start..],
                    &offsets,
                    threads,
                    |range, slice| {
                        let mut k = 0;
                        for x in range {
                            let (i, _) = ba[x];
                            for &(j, _) in bb.iter() {
                                slice[k] = SimilarPair::new(i as usize, j as usize, nb);
                                k += 1;
                            }
                        }
                    },
                );
                continue;
            }
            out.extend(par_map_rows(ba.len(), threads, |range| {
                let mut found = Vec::new();
                for x in range {
                    let (i, fi) = ba[x];
                    let partners = if na == nb { &bb[x + 1..] } else { &bb[..] };
                    for &(j, fj) in partners {
                        if disjoint(i, fi, j, fj) {
                            found.push(SimilarPair::new(i as usize, j as usize, na + nb));
                        }
                    }
                }
                found
            }));
        }
    }
    out
}

/// The PR 1 disjoint supplement: a quadratic scan over all low-norm rows
/// with per-pair `row_norm` recomputation. Kept verbatim as the ablation
/// baseline (`abl-parallel` / `scripts/bench.sh`) and as an independent
/// oracle for the bucketed kernel's tests.
pub fn disjoint_supplement_naive(matrix: &CsrMatrix, t: usize) -> Vec<SimilarPair> {
    let low: Vec<usize> = (0..matrix.n_rows())
        .filter(|&i| matrix.row_norm(i) <= t)
        .collect();
    let mut out = Vec::new();
    for (x, &i) in low.iter().enumerate() {
        for &j in &low[x + 1..] {
            let (ni, nj) = (matrix.row_norm(i), matrix.row_norm(j));
            if ni + nj >= 1 && ni + nj <= t && matrix.row_dot(i, j) == 0 {
                out.push(SimilarPair::new(i, j, ni + nj));
            }
        }
    }
    out
}

fn finalize_pairs(mut pairs: Vec<SimilarPair>, max_pairs: usize) -> Vec<SimilarPair> {
    pairs.sort_unstable_by_key(|p| (p.distance, p.a, p.b));
    pairs.dedup();
    pairs.truncate(max_pairs);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 RUAM (5 roles × 4 users).
    fn paper_ruam() -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(5, 4, &[vec![0], vec![1, 2], vec![], vec![1, 2], vec![3]])
            .unwrap()
    }

    /// The Figure 1 RPAM (5 roles × 6 permissions).
    fn paper_rpam() -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(
            5,
            6,
            &[vec![1, 2], vec![], vec![3], vec![4, 5], vec![4, 5]],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_same_users() {
        // Section III-C: roles R02 and R04 (indices 1, 3) satisfy
        // |R²| = g²⁴ = |R⁴| = 2.
        let m = paper_ruam();
        assert_eq!(same_groups(&m), vec![vec![1, 3]]);
        assert_eq!(
            same_groups_via_indicator(&m, &m.transpose()),
            vec![vec![1, 3]]
        );
    }

    #[test]
    fn paper_example_same_permissions() {
        // Roles R04 and R05 (indices 3, 4) share {P05, P06}.
        let m = paper_rpam();
        assert_eq!(same_groups(&m), vec![vec![3, 4]]);
        assert_eq!(
            same_groups_via_indicator(&m, &m.transpose()),
            vec![vec![3, 4]]
        );
    }

    #[test]
    fn indicator_groups_empty_rows() {
        let m = CsrMatrix::from_rows_of_indices(4, 3, &[vec![], vec![0], vec![], vec![]]).unwrap();
        let groups = same_groups_via_indicator(&m, &m.transpose());
        assert_eq!(groups, vec![vec![0, 2, 3]]);
        assert_eq!(same_groups(&m), groups, "both oracles agree");
    }

    #[test]
    fn all_three_oracles_agree_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for trial in 0..20 {
            let rows: Vec<Vec<usize>> = (0..40)
                .map(|_| (0..12).filter(|_| rng.gen_bool(0.2)).collect())
                .collect();
            let m = CsrMatrix::from_rows_of_indices(40, 12, &rows).unwrap();
            let sig = same_groups(&m);
            assert_eq!(
                sig,
                same_groups_via_indicator(&m, &m.transpose()),
                "trial {trial}"
            );
            assert_eq!(sig, same_groups_naive(&m), "trial {trial}");
        }
    }

    #[test]
    fn similar_pairs_at_threshold_one() {
        // Rows: {0,1}, {0,1,2}, {0,1}, {5} — distances:
        // (0,1)=1, (0,2)=0, (1,2)=1, (0,3)=3 …
        let m = CsrMatrix::from_rows_of_indices(
            4,
            6,
            &[vec![0, 1], vec![0, 1, 2], vec![0, 1], vec![5]],
        )
        .unwrap();
        let t = m.transpose();
        let pairs = similar_pairs(&m, &t, &SimilarityConfig::default());
        assert_eq!(
            pairs,
            vec![SimilarPair::new(0, 1, 1), SimilarPair::new(1, 2, 1)],
            "identical pair (0,2) excluded; distant pairs excluded"
        );
    }

    #[test]
    fn similar_pairs_larger_threshold() {
        let m = CsrMatrix::from_rows_of_indices(
            3,
            8,
            &[vec![0, 1, 2, 3], vec![0, 1, 2, 4], vec![0, 1]],
        )
        .unwrap();
        let t = m.transpose();
        let cfg = SimilarityConfig {
            threshold: 2,
            ..SimilarityConfig::default()
        };
        let pairs = similar_pairs(&m, &t, &cfg);
        // (0,1): d=2 ✓; (0,2): d=2 ✓; (1,2): d=2 ✓.
        assert_eq!(pairs.len(), 3);
        assert!(pairs.iter().all(|p| p.distance == 2));
    }

    #[test]
    fn disjoint_supplement_finds_gap_pairs() {
        // Rows: {} and {3}: distance 1 but g=0 — invisible to the
        // co-occurrence stream.
        let m = CsrMatrix::from_rows_of_indices(3, 5, &[vec![], vec![3], vec![0, 1, 2]]).unwrap();
        let t = m.transpose();
        let without = similar_pairs(&m, &t, &SimilarityConfig::default());
        assert!(without.is_empty(), "paper semantics: g ≥ 1 only");
        let with = similar_pairs(
            &m,
            &t,
            &SimilarityConfig {
                include_disjoint: true,
                ..SimilarityConfig::default()
            },
        );
        assert_eq!(with, vec![SimilarPair::new(0, 1, 1)]);
    }

    #[test]
    fn max_pairs_keeps_closest() {
        let m = CsrMatrix::from_rows_of_indices(
            4,
            8,
            &[vec![0, 1, 2], vec![0, 1, 2, 3], vec![0, 1], vec![0, 1, 2]],
        )
        .unwrap();
        let t = m.transpose();
        let cfg = SimilarityConfig {
            threshold: 3,
            max_pairs: 2,
            ..SimilarityConfig::default()
        };
        let pairs = similar_pairs(&m, &t, &cfg);
        assert_eq!(pairs.len(), 2);
        // distance-0 pair (0,3) excluded; the two distance-1 pairs win.
        assert!(pairs.iter().all(|p| p.distance == 1));
    }

    #[test]
    fn parallel_matches_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let rows: Vec<Vec<usize>> = (0..200)
            .map(|_| (0..30).filter(|_| rng.gen_bool(0.15)).collect())
            .collect();
        let m = CsrMatrix::from_rows_of_indices(200, 30, &rows).unwrap();
        let t = m.transpose();
        for threshold in [1, 2, 4] {
            let cfg = SimilarityConfig {
                threshold,
                include_disjoint: true,
                ..SimilarityConfig::default()
            };
            let seq = similar_pairs(&m, &t, &cfg);
            for threads in [2, 3, 8] {
                assert_eq!(
                    similar_pairs_parallel(&m, &t, &cfg, threads),
                    seq,
                    "threshold {threshold}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn bucketed_supplement_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        for trial in 0..10 {
            // Lots of empty and tiny rows so the supplement actually fires,
            // plus duplicate rows (identical supports are never disjoint
            // unless empty, and empty duplicates must all pair up).
            let mut rows: Vec<Vec<usize>> = (0..80)
                .map(|_| {
                    let width = rng.gen_range(0..4usize);
                    (0..30).filter(|_| rng.gen_bool(0.05)).take(width).collect()
                })
                .collect();
            rows.push(Vec::new());
            rows.push(Vec::new());
            rows.push(vec![7]);
            rows.push(vec![7]);
            let n = rows.len();
            let m = CsrMatrix::from_rows_of_indices(n, 30, &rows).unwrap();
            for t in [1, 2, 4] {
                let mut expected = disjoint_supplement_naive(&m, t);
                expected.sort();
                for threads in [1, 2, 4, 8] {
                    let mut got = disjoint_supplement(&m, t, threads);
                    got.sort();
                    assert_eq!(got, expected, "trial {trial}, t={t}, threads={threads}");
                }
            }
        }
    }

    #[test]
    fn bucketed_supplement_degenerate_matrices() {
        // Empty matrix: no rows at all.
        let empty = CsrMatrix::zeros(0, 10);
        for threads in [1, 4] {
            assert!(disjoint_supplement(&empty, 3, threads).is_empty());
        }
        // All-empty rows: every pair qualifies at distance 0 + 0 = 0,
        // which the threshold window `1..=t` excludes — no pairs.
        let blank = CsrMatrix::zeros(5, 10);
        for threads in [1, 4] {
            assert!(disjoint_supplement(&blank, 3, threads).is_empty());
            assert_eq!(
                disjoint_supplement(&blank, 3, threads),
                disjoint_supplement_naive(&blank, 3)
            );
        }
    }

    #[test]
    #[should_panic(expected = "transpose shape mismatch")]
    fn sequential_path_rejects_wrong_transpose() {
        let m = paper_ruam();
        let not_t = CsrMatrix::zeros(5, 4);
        similar_pairs(&m, &not_t, &SimilarityConfig::default());
    }

    #[test]
    #[should_panic(expected = "transpose shape mismatch")]
    fn parallel_path_rejects_wrong_transpose_identically() {
        // Regression: the old hand-rolled parallel loop skipped the shape
        // assertions entirely. Both paths must panic with the same message.
        let m = paper_ruam();
        let not_t = CsrMatrix::zeros(5, 4);
        similar_pairs_parallel(&m, &not_t, &SimilarityConfig::default(), 4);
    }

    #[test]
    fn parallel_same_groups_match_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let rows: Vec<Vec<usize>> = (0..120)
            .map(|_| (0..10).filter(|_| rng.gen_bool(0.2)).collect())
            .collect();
        let m = CsrMatrix::from_rows_of_indices(120, 10, &rows).unwrap();
        let seq = same_groups(&m);
        for threads in [1, 2, 3, 8] {
            assert_eq!(same_groups_with(&m, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn similar_pairs_match_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let rows: Vec<Vec<usize>> = (0..60)
            .map(|_| (0..16).filter(|_| rng.gen_bool(0.25)).collect())
            .collect();
        let m = CsrMatrix::from_rows_of_indices(60, 16, &rows).unwrap();
        let tr = m.transpose();
        let cfg = SimilarityConfig {
            threshold: 3,
            include_disjoint: true,
            ..SimilarityConfig::default()
        };
        let fast: std::collections::BTreeSet<(usize, usize, usize)> = similar_pairs(&m, &tr, &cfg)
            .into_iter()
            .map(|p| (p.a, p.b, p.distance))
            .collect();
        let mut brute = std::collections::BTreeSet::new();
        for i in 0..60 {
            for j in (i + 1)..60 {
                let d = m.row_hamming(i, j);
                if (1..=3).contains(&d) {
                    brute.insert((i, j, d));
                }
            }
        }
        assert_eq!(fast, brute);
    }
}
