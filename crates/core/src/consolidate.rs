//! Consolidation planning: turning approved T4 findings into a verified
//! role merge.
//!
//! The paper is explicit that inefficiencies "must not be fixed
//! automatically as they may correspond to legitimate corner cases"; the
//! flow here is therefore *plan → (administrator approves) → apply →
//! verify*:
//!
//! 1. [`MergePlan::from_report`] proposes one merge per duplicate group
//!    (T4), keeping the lowest-id role as the representative;
//! 2. the caller may drop or edit individual [`Merge`]s (each one is an
//!    independent proposal);
//! 3. [`MergePlan::apply`] rebuilds the graph with merged roles — edge
//!    sets are unioned, which for same-user groups means the surviving
//!    role carries the union of the permissions, and vice versa;
//! 4. [`verify_preserves_access`] checks the safety invariant: **no user
//!    gains or loses any effective permission**.
//!
//! Merging a same-user group is always safe: the affected users already
//! held the union of the group's permissions through the group's roles.
//! Symmetrically for same-permission groups. The invariant is re-verified
//! on the actual graphs anyway (and property-tested), because plans can be
//! hand-edited.

use serde::{Deserialize, Serialize};

use rolediet_model::{RoleId, TripartiteGraph, UserId};

use crate::report::Report;

/// What a merge group was based on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeBasis {
    /// The roles share exactly the same users (T4-user).
    SameUsers,
    /// The roles share exactly the same permissions (T4-permission).
    SamePermissions,
}

/// One proposed merge: `absorbed` roles are folded into `keep`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Merge {
    /// The surviving role.
    pub keep: RoleId,
    /// Roles to be absorbed into `keep` (their edges are unioned in).
    pub absorbed: Vec<RoleId>,
    /// Which T4 finding motivated this merge.
    pub basis: MergeBasis,
}

/// A set of non-overlapping merges plus optional standalone-role removal.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergePlan {
    /// The proposed merges. No role appears in two merges.
    pub merges: Vec<Merge>,
    /// Standalone roles (T1) to drop entirely (they have no edges, so
    /// dropping them cannot change anyone's access).
    pub drop_standalone: Vec<RoleId>,
}

/// Result of applying a [`MergePlan`].
#[derive(Debug, Clone)]
pub struct ConsolidationOutcome {
    /// The consolidated graph.
    pub graph: TripartiteGraph,
    /// For each old role index: its new index, or `None` if dropped.
    pub role_map: Vec<Option<usize>>,
    /// Number of roles removed (`old roles − new roles`).
    pub roles_removed: usize,
}

impl MergePlan {
    /// Builds a plan from a report's T4 groups.
    ///
    /// Same-user groups are planned first; a role already claimed by one
    /// merge is skipped by later groups (a role can appear in both a
    /// same-user and a same-permission group — the paper notes "the same
    /// roles can be linked to multiple types of inefficiencies"). Groups
    /// reduced to fewer than two unclaimed members are dropped.
    ///
    /// Standalone roles are scheduled for removal when
    /// `drop_standalone` is `true`.
    pub fn from_report(report: &Report, n_roles: usize, drop_standalone: bool) -> MergePlan {
        let mut claimed = vec![false; n_roles];
        // Standalone roles have empty rows on both sides, so they also
        // show up as T4 groups (all-empty rows are identical). Dropping
        // them outright removes more roles than merging them, so claim
        // them first.
        let drop_standalone_roles: Vec<RoleId> = if drop_standalone {
            report
                .standalone_roles
                .iter()
                .map(|&r| {
                    claimed[r] = true;
                    RoleId::from_index(r)
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut merges = Vec::new();
        let sides = [
            (&report.same_user_groups, MergeBasis::SameUsers),
            (&report.same_permission_groups, MergeBasis::SamePermissions),
        ];
        for (groups, basis) in sides {
            for group in groups.iter() {
                let free: Vec<usize> = group.iter().copied().filter(|&r| !claimed[r]).collect();
                if free.len() < 2 {
                    continue;
                }
                for &r in &free {
                    claimed[r] = true;
                }
                merges.push(Merge {
                    keep: RoleId::from_index(free[0]),
                    absorbed: free[1..].iter().map(|&r| RoleId::from_index(r)).collect(),
                    basis,
                });
            }
        }
        MergePlan {
            merges,
            drop_standalone: drop_standalone_roles,
        }
    }

    /// Number of roles this plan would remove.
    pub fn roles_removed(&self) -> usize {
        self.merges.iter().map(|m| m.absorbed.len()).sum::<usize>() + self.drop_standalone.len()
    }

    /// Applies the plan, producing a new graph and the old→new role map.
    ///
    /// # Panics
    ///
    /// Panics if the plan references roles outside the graph or if a role
    /// appears in more than one merge (plans built by
    /// [`from_report`](Self::from_report) never do).
    pub fn apply(&self, graph: &TripartiteGraph) -> ConsolidationOutcome {
        let n = graph.n_roles();
        // target[i] = the representative old-index role i folds into.
        let mut target: Vec<usize> = (0..n).collect();
        let mut dropped = vec![false; n];
        let mut seen = vec![false; n];
        let claim = |r: usize, seen: &mut Vec<bool>| {
            assert!(r < n, "merge references unknown role {r}");
            assert!(!seen[r], "role {r} appears in two merges");
            seen[r] = true;
        };
        for m in &self.merges {
            claim(m.keep.index(), &mut seen);
            for a in &m.absorbed {
                claim(a.index(), &mut seen);
                target[a.index()] = m.keep.index();
            }
        }
        for d in &self.drop_standalone {
            claim(d.index(), &mut seen);
            dropped[d.index()] = true;
        }
        // Assign dense new indices to surviving representatives.
        let mut new_index: Vec<Option<usize>> = vec![None; n];
        let mut next = 0usize;
        for r in 0..n {
            if !dropped[r] && target[r] == r {
                new_index[r] = Some(next);
                next += 1;
            }
        }
        let role_map: Vec<Option<usize>> = (0..n)
            .map(|r| {
                if dropped[r] {
                    None
                } else {
                    new_index[target[r]]
                }
            })
            .collect();
        let new_graph = graph
            .rebuild_with_role_map(&role_map, next)
            .expect("plan indices validated above");
        ConsolidationOutcome {
            roles_removed: n - next,
            graph: new_graph,
            role_map,
        }
    }
}

/// Checks the consolidation safety invariant: every user has exactly the
/// same effective permission set in both graphs.
///
/// Returns the ids of users whose access changed (empty = safe).
pub fn verify_preserves_access(before: &TripartiteGraph, after: &TripartiteGraph) -> Vec<UserId> {
    assert_eq!(
        before.n_users(),
        after.n_users(),
        "consolidation never adds or removes users"
    );
    (0..before.n_users())
        .map(UserId::from_index)
        .filter(|&u| before.effective_permissions(u) != after.effective_permissions(u))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectionConfig;
    use crate::pipeline::Pipeline;

    fn figure1_plan() -> (TripartiteGraph, Report, MergePlan) {
        let graph = TripartiteGraph::figure1_example();
        let report = Pipeline::new(DetectionConfig::default()).run(&graph);
        let plan = MergePlan::from_report(&report, graph.n_roles(), true);
        (graph, report, plan)
    }

    #[test]
    fn figure1_plan_contents() {
        let (_, _, plan) = figure1_plan();
        // {R02, R04} same users → merge; {R04, R05} same perms, but R04 is
        // claimed → group shrinks below 2 and is dropped.
        assert_eq!(plan.merges.len(), 1);
        assert_eq!(plan.merges[0].keep, RoleId(1));
        assert_eq!(plan.merges[0].absorbed, vec![RoleId(3)]);
        assert_eq!(plan.merges[0].basis, MergeBasis::SameUsers);
        assert!(plan.drop_standalone.is_empty());
        assert_eq!(plan.roles_removed(), 1);
    }

    #[test]
    fn figure1_apply_preserves_access() {
        let (graph, _, plan) = figure1_plan();
        let outcome = plan.apply(&graph);
        assert_eq!(outcome.roles_removed, 1);
        assert_eq!(outcome.graph.n_roles(), 4);
        outcome.graph.validate().unwrap();
        assert!(verify_preserves_access(&graph, &outcome.graph).is_empty());
        // The merged role carries the union of permissions of R02 (none)
        // and R04 ({P05, P06}).
        let merged = outcome.role_map[1].expect("keeper survives");
        let perms: Vec<_> = outcome
            .graph
            .permissions_of(RoleId::from_index(merged))
            .collect();
        assert_eq!(perms.len(), 2);
        // R04 maps to the same new role as R02.
        assert_eq!(outcome.role_map[3], outcome.role_map[1]);
    }

    #[test]
    fn same_permission_merge_unions_users() {
        // Two roles with identical permissions, different users.
        let mut g = TripartiteGraph::with_counts(3, 2, 2);
        g.assign_user(RoleId(0), UserId(0)).unwrap();
        g.assign_user(RoleId(0), UserId(1)).unwrap();
        g.assign_user(RoleId(1), UserId(2)).unwrap();
        for r in 0..2 {
            for p in 0..2 {
                g.grant_permission(RoleId(r), rolediet_model::PermissionId(p))
                    .unwrap();
            }
        }
        let report = Pipeline::new(DetectionConfig::default()).run(&g);
        assert_eq!(report.same_permission_groups, vec![vec![0, 1]]);
        let plan = MergePlan::from_report(&report, 2, false);
        let outcome = plan.apply(&g);
        assert_eq!(outcome.graph.n_roles(), 1);
        assert_eq!(outcome.graph.users_of(RoleId(0)).count(), 3);
        assert!(verify_preserves_access(&g, &outcome.graph).is_empty());
    }

    #[test]
    fn standalone_roles_are_dropped_safely() {
        let mut g = TripartiteGraph::with_counts(1, 3, 1);
        g.assign_user(RoleId(0), UserId(0)).unwrap();
        g.grant_permission(RoleId(0), rolediet_model::PermissionId(0))
            .unwrap();
        // Roles 1 and 2 are standalone.
        let report = Pipeline::new(DetectionConfig::default()).run(&g);
        assert_eq!(report.standalone_roles, vec![1, 2]);
        let plan = MergePlan::from_report(&report, 3, true);
        assert_eq!(plan.drop_standalone.len(), 2);
        let outcome = plan.apply(&g);
        assert_eq!(outcome.graph.n_roles(), 1);
        assert_eq!(outcome.role_map, vec![Some(0), None, None]);
        assert!(verify_preserves_access(&g, &outcome.graph).is_empty());
    }

    #[test]
    fn empty_plan_is_identity() {
        let graph = TripartiteGraph::figure1_example();
        let outcome = MergePlan::default().apply(&graph);
        assert_eq!(outcome.roles_removed, 0);
        assert_eq!(outcome.graph, graph);
    }

    #[test]
    #[should_panic(expected = "two merges")]
    fn overlapping_merges_rejected() {
        let graph = TripartiteGraph::figure1_example();
        let plan = MergePlan {
            merges: vec![
                Merge {
                    keep: RoleId(0),
                    absorbed: vec![RoleId(1)],
                    basis: MergeBasis::SameUsers,
                },
                Merge {
                    keep: RoleId(1),
                    absorbed: vec![RoleId(2)],
                    basis: MergeBasis::SameUsers,
                },
            ],
            drop_standalone: vec![],
        };
        plan.apply(&graph);
    }

    #[test]
    fn verify_detects_access_change() {
        let g = TripartiteGraph::figure1_example();
        let mut broken = g.clone();
        broken
            .revoke_permission(RoleId(0), rolediet_model::PermissionId(1))
            .unwrap();
        let changed = verify_preserves_access(&g, &broken);
        // U01 (index 0) held P02 only through R01.
        assert_eq!(changed, vec![UserId(0)]);
    }

    #[test]
    fn unsafe_hand_edited_merge_is_caught_by_verification() {
        // Hand-merge two roles that do NOT share users or permissions:
        // access changes and verification reports it.
        let g = TripartiteGraph::figure1_example();
        let plan = MergePlan {
            merges: vec![Merge {
                keep: RoleId(0),              // R01: {U01} / {P02, P03}
                absorbed: vec![RoleId(4)],    // R05: {U04} / {P05, P06}
                basis: MergeBasis::SameUsers, // (claimed, but false)
            }],
            drop_standalone: vec![],
        };
        let outcome = plan.apply(&g);
        let changed = verify_preserves_access(&g, &outcome.graph);
        assert!(!changed.is_empty(), "U01 and U04 both gain permissions");
    }
}
