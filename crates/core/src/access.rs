//! Dual-side analysis: the *effective* user→permission view.
//!
//! RBAC indirection exists to manage the user→permission relation; the
//! same machinery that groups roles by their RUAM/RPAM rows groups
//! *users* by their effective access (the UPAM rows). Two users with
//! identical effective permissions are the user-side mirror of T4 — a
//! signal the access review can sample by equivalence class instead of
//! per-user — and a user whose access is a strict superset of a peer's
//! is a classic over-provisioning lead.

use serde::{Deserialize, Serialize};

use rolediet_matrix::{CsrMatrix, RowMatrix};
use rolediet_model::TripartiteGraph;

use crate::cooccur;
use crate::suggest::{subset_pairs, SubsetPair};

/// Summary of the effective-access analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessAnalysis {
    /// Groups of users (indices) with bit-identical effective permission
    /// sets — access-review equivalence classes. Excludes users with no
    /// permissions at all (they are T1-adjacent hygiene, not classes).
    pub identical_access_groups: Vec<Vec<usize>>,
    /// Users with zero effective permissions (either standalone or all
    /// their roles are permission-less).
    pub no_access_users: Vec<usize>,
    /// Strict containment pairs: `sub`'s access ⊂ `sup`'s access.
    /// Sorted; quadratic only in co-occurring users.
    pub containment_pairs: Vec<SubsetPair>,
    /// Number of access-review items after grouping (classes + loners)
    /// versus the naive per-user count.
    pub review_items: usize,
}

/// Runs the effective-access analysis over a graph.
///
/// # Examples
///
/// ```
/// use rolediet_core::access::analyze_access;
/// use rolediet_model::TripartiteGraph;
///
/// let g = TripartiteGraph::figure1_example();
/// let a = analyze_access(&g);
/// // U02, U03 (via R04) and U04 (via R05) all hold exactly {P05, P06}.
/// assert_eq!(a.identical_access_groups, vec![vec![1, 2, 3]]);
/// ```
pub fn analyze_access(graph: &TripartiteGraph) -> AccessAnalysis {
    analyze_access_matrix(&graph.upam_sparse())
}

/// The same analysis over a pre-built UPAM (users × permissions).
pub fn analyze_access_matrix(upam: &CsrMatrix) -> AccessAnalysis {
    let transpose = upam.transpose();
    let mut identical: Vec<Vec<usize>> = cooccur::same_groups(upam)
        .into_iter()
        .filter(|g| upam.row_norm(g[0]) > 0)
        .collect();
    identical.sort_unstable_by_key(|g| g[0]);
    let no_access: Vec<usize> = (0..upam.n_rows())
        .filter(|&u| upam.row_norm(u) == 0)
        .collect();
    let containment = subset_pairs(upam, &transpose);
    let grouped_users: usize = identical.iter().map(Vec::len).sum();
    let review_items = upam.n_rows() - grouped_users + identical.len();
    AccessAnalysis {
        identical_access_groups: identical,
        no_access_users: no_access,
        containment_pairs: containment,
        review_items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolediet_model::{PermissionId, RoleId, UserId};

    #[test]
    fn figure1_access_analysis() {
        let g = TripartiteGraph::figure1_example();
        let a = analyze_access(&g);
        // U02 = U03 = U04: the R04/R05 duplication makes three users'
        // effective access identical ({P05, P06}).
        assert_eq!(a.identical_access_groups, vec![vec![1, 2, 3]]);
        // Every user has some access in Figure 1.
        assert!(a.no_access_users.is_empty());
        // 4 users − 3 grouped + 1 class = 2 review items.
        assert_eq!(a.review_items, 2);
    }

    #[test]
    fn no_access_users_detected() {
        let mut g = TripartiteGraph::with_counts(3, 1, 1);
        g.assign_user(RoleId(0), UserId(0)).unwrap();
        g.grant_permission(RoleId(0), PermissionId(0)).unwrap();
        // User 1 has a permission-less role; user 2 is standalone.
        let r = g.add_role();
        g.assign_user(r, UserId(1)).unwrap();
        let a = analyze_access(&g);
        assert_eq!(a.no_access_users, vec![1, 2]);
        assert!(a.identical_access_groups.is_empty());
        assert_eq!(a.review_items, 3);
    }

    #[test]
    fn containment_pairs_on_access() {
        // User 0: {p0}; user 1: {p0, p1} → 0 ⊂ 1.
        let mut g = TripartiteGraph::with_counts(2, 2, 2);
        g.assign_user(RoleId(0), UserId(0)).unwrap();
        g.assign_user(RoleId(0), UserId(1)).unwrap();
        g.grant_permission(RoleId(0), PermissionId(0)).unwrap();
        g.assign_user(RoleId(1), UserId(1)).unwrap();
        g.grant_permission(RoleId(1), PermissionId(1)).unwrap();
        let a = analyze_access(&g);
        assert_eq!(a.containment_pairs, vec![SubsetPair { sub: 0, sup: 1 }]);
    }

    #[test]
    fn consolidation_leaves_access_analysis_invariant() {
        use crate::config::DetectionConfig;
        use crate::consolidate::MergePlan;
        use crate::pipeline::Pipeline;
        let g = TripartiteGraph::figure1_example();
        let report = Pipeline::new(DetectionConfig::default()).run(&g);
        let plan = MergePlan::from_report(&report, g.n_roles(), true);
        let outcome = plan.apply(&g);
        // UPAM is exactly preserved, so the analysis is too.
        assert_eq!(analyze_access(&g), analyze_access(&outcome.graph));
    }

    #[test]
    fn empty_graph() {
        let a = analyze_access(&TripartiteGraph::new());
        assert_eq!(a, AccessAnalysis::default());
    }
}
