//! Periodic-cleanup simulation.
//!
//! The paper justifies the approximate strategy's imperfect recall by
//! operational reality: "the task of cleaning the RBAC database is
//! expected to run periodically, not being able to identify all roles in
//! a group does not hurt, as they will be identified during the next
//! run". This module simulates exactly that loop — detect → consolidate →
//! repeat — and records how fast each strategy converges, turning the
//! paper's qualitative argument into a measurable one.

use serde::{Deserialize, Serialize};

use rolediet_model::TripartiteGraph;

use crate::config::DetectionConfig;
use crate::consolidate::{verify_preserves_access, MergePlan};
use crate::pipeline::Pipeline;

/// Record of one detect-and-consolidate round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// T4 groups found this round (both sides).
    pub groups_found: usize,
    /// Roles removed by this round's consolidation.
    pub roles_removed: usize,
    /// Roles remaining after the round.
    pub roles_remaining: usize,
}

/// Result of a full periodic-cleanup simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// Per-round records, in order.
    pub rounds: Vec<RoundRecord>,
    /// Roles in the initial graph.
    pub initial_roles: usize,
    /// `true` if the loop stopped because a round found nothing
    /// (converged), `false` if `max_rounds` was exhausted first.
    pub converged: bool,
}

impl ConvergenceTrace {
    /// Total roles removed across all rounds.
    pub fn total_removed(&self) -> usize {
        self.rounds.iter().map(|r| r.roles_removed).sum()
    }

    /// Number of rounds executed.
    pub fn n_rounds(&self) -> usize {
        self.rounds.len()
    }
}

/// Runs the periodic detect → consolidate loop until a round removes no
/// roles (converged) or `max_rounds` is reached. Every round's merge is
/// verified access-preserving; the consolidated graph of the final round
/// is returned with the trace.
///
/// With an exact strategy the loop typically converges in one or two
/// rounds (a second round can find *new* duplicates created by
/// permission-side merges unioning user sets); with an approximate
/// strategy missed groups surface in later rounds — the paper's
/// convergence argument.
///
/// # Panics
///
/// Panics if a round's consolidation would change any user's effective
/// permissions (this would be a bug, not a data condition).
pub fn simulate_periodic_cleanup(
    graph: &TripartiteGraph,
    config: DetectionConfig,
    max_rounds: usize,
) -> (ConvergenceTrace, TripartiteGraph) {
    let mut current = graph.clone();
    let mut rounds = Vec::new();
    let mut converged = false;
    // Similarity findings are not consolidated; skip them for speed.
    let config = DetectionConfig {
        skip_similarity: true,
        ..config
    };
    for round in 1..=max_rounds {
        // A real periodic job rebuilds its index from scratch every run;
        // reseeding the approximate strategies models that and is what
        // makes the paper's convergence argument work — a pair missed
        // under one index layout is found under another.
        let round_config = DetectionConfig {
            strategy: reseed(config.strategy, round as u64),
            ..config
        };
        let report = Pipeline::new(round_config).run(&current);
        let groups_found = report.same_user_groups.len() + report.same_permission_groups.len();
        let plan = MergePlan::from_report(&report, current.n_roles(), true);
        if plan.roles_removed() == 0 {
            converged = true;
            break;
        }
        let outcome = plan.apply(&current);
        assert!(
            verify_preserves_access(&current, &outcome.graph).is_empty(),
            "round {round}: consolidation changed access — bug"
        );
        rounds.push(RoundRecord {
            round,
            groups_found,
            roles_removed: outcome.roles_removed,
            roles_remaining: outcome.graph.n_roles(),
        });
        current = outcome.graph;
    }
    (
        ConvergenceTrace {
            rounds,
            initial_roles: graph.n_roles(),
            converged,
        },
        current,
    )
}

/// Derives a per-round variant of an approximate strategy by mixing the
/// round number into its seed; exact strategies are returned unchanged.
fn reseed(strategy: crate::config::Strategy, round: u64) -> crate::config::Strategy {
    use crate::config::Strategy;
    match strategy {
        Strategy::ApproxHnsw {
            mut params,
            probe_k,
        } => {
            params.seed = params.seed.wrapping_add(round.wrapping_mul(0x9E37_79B9));
            Strategy::ApproxHnsw { params, probe_k }
        }
        Strategy::MinHashLsh { mut params } => {
            params.seed = params.seed.wrapping_add(round.wrapping_mul(0x9E37_79B9));
            Strategy::MinHashLsh { params }
        }
        exact => exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use rolediet_synth::generate_org;
    use rolediet_synth::profiles::small_org;

    fn org_graph() -> TripartiteGraph {
        generate_org(small_org(21)).graph
    }

    #[test]
    fn exact_strategy_converges_and_strips_all_duplicates() {
        let graph = org_graph();
        let (trace, final_graph) =
            simulate_periodic_cleanup(&graph, DetectionConfig::default(), 10);
        assert!(trace.converged);
        assert!(trace.total_removed() > 0);
        assert_eq!(
            trace.initial_roles - trace.total_removed(),
            final_graph.n_roles()
        );
        // The converged graph has no non-empty duplicate groups left.
        let report = Pipeline::new(DetectionConfig::default()).run(&final_graph);
        assert!(report.same_user_groups.is_empty());
        assert!(report.same_permission_groups.is_empty());
        // End-to-end access preservation.
        for u in 0..graph.n_users() {
            let uid = rolediet_model::UserId::from_index(u);
            assert_eq!(
                graph.effective_permissions(uid),
                final_graph.effective_permissions(uid)
            );
        }
    }

    #[test]
    fn approximate_strategy_converges_to_the_exact_result() {
        let graph = org_graph();
        let (exact_trace, exact_final) =
            simulate_periodic_cleanup(&graph, DetectionConfig::default(), 10);
        let (approx_trace, approx_final) = simulate_periodic_cleanup(
            &graph,
            DetectionConfig::with_strategy(Strategy::hnsw_default()),
            25,
        );
        assert!(approx_trace.converged, "HNSW loop did not converge");
        // The paper's claim: periodic runs converge to the optimum. The
        // approximate loop must end with no duplicates detectable by the
        // exact method.
        let residual = Pipeline::new(DetectionConfig::default()).run(&approx_final);
        assert!(
            residual.same_user_groups.is_empty() && residual.same_permission_groups.is_empty(),
            "approximate periodic cleanup left duplicates behind"
        );
        assert_eq!(exact_final.n_roles(), approx_final.n_roles());
        // And typically needs at least as many rounds as the exact one.
        assert!(approx_trace.n_rounds() >= exact_trace.n_rounds());
    }

    #[test]
    fn max_rounds_caps_the_loop() {
        let graph = org_graph();
        let (trace, _) = simulate_periodic_cleanup(&graph, DetectionConfig::default(), 0);
        assert!(!trace.converged);
        assert!(trace.rounds.is_empty());
    }

    #[test]
    fn clean_graph_converges_immediately() {
        let mut g = TripartiteGraph::with_counts(2, 2, 2);
        for r in 0..2u32 {
            g.assign_user(rolediet_model::RoleId(r), rolediet_model::UserId(r))
                .unwrap();
            g.grant_permission(rolediet_model::RoleId(r), rolediet_model::PermissionId(r))
                .unwrap();
        }
        let (trace, final_graph) = simulate_periodic_cleanup(&g, DetectionConfig::default(), 5);
        assert!(trace.converged);
        assert_eq!(trace.n_rounds(), 0);
        assert_eq!(final_graph, g);
    }
}
