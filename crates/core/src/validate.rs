//! Cross-consistency validators for detection [`Report`]s.
//!
//! A report's fields encode one taxonomy over one dataset, so they are
//! heavily interdependent: a standalone role cannot also be userless, a
//! similar pair cannot join two members of the same duplicate group, and
//! every list carries documented sorting contracts. [`Report::validate`]
//! checks all of that structurally — from the report alone — while
//! [`validate_report_against_graph`] goes further and re-derives the
//! T1–T3 findings and T4/T5 distances from the graph itself. Property
//! tests run both after every pipeline strategy; the `repro` driver
//! exposes them behind `--validate`.

use rolediet_model::{RoleId, TripartiteGraph};

use crate::detector::detect_degrees;
use crate::report::{Report, SimilarPair};
use crate::taxonomy::Side;

/// Checks that `v` is strictly increasing with all entries below
/// `bound`.
fn check_sorted_unique_bounded(name: &str, v: &[usize], bound: usize) -> Result<(), String> {
    for pair in v.windows(2) {
        if pair[0] >= pair[1] {
            return Err(format!(
                "{name} not strictly increasing ({} then {})",
                pair[0], pair[1]
            ));
        }
    }
    if let Some(&last) = v.last() {
        if last >= bound {
            return Err(format!("{name} contains {last}, out of bounds ({bound})"));
        }
    }
    Ok(())
}

/// Checks that two sorted index lists share no element.
fn check_disjoint(name_a: &str, name_b: &str, a: &[usize], b: &[usize]) -> Result<(), String> {
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < a.len() && ib < b.len() {
        match a[ia].cmp(&b[ib]) {
            std::cmp::Ordering::Less => ia += 1,
            std::cmp::Ordering::Greater => ib += 1,
            std::cmp::Ordering::Equal => {
                return Err(format!(
                    "role {} is in both {name_a} and {name_b}, which are mutually exclusive",
                    a[ia]
                ));
            }
        }
    }
    Ok(())
}

/// Checks the T4 group-list contract and returns each role's group
/// index, or an error naming the broken invariant.
fn check_groups(
    name: &str,
    groups: &[Vec<usize>],
    n_roles: usize,
) -> Result<Vec<Option<usize>>, String> {
    let mut membership: Vec<Option<usize>> = vec![None; n_roles];
    let mut prev_first: Option<usize> = None;
    for (g, members) in groups.iter().enumerate() {
        if members.len() < 2 {
            return Err(format!("{name}[{g}] has {} members (< 2)", members.len()));
        }
        check_sorted_unique_bounded(&format!("{name}[{g}]"), members, n_roles)?;
        if let Some(prev) = prev_first {
            if members[0] <= prev {
                return Err(format!(
                    "{name} not ordered by first member ({prev} then {})",
                    members[0]
                ));
            }
        }
        prev_first = Some(members[0]);
        for &r in members {
            if let Some(other) = membership[r] {
                return Err(format!(
                    "role {r} is in both {name}[{other}] and {name}[{g}] — \
                     sharing identical sets is transitive, groups must be disjoint"
                ));
            }
            membership[r] = Some(g);
        }
    }
    Ok(membership)
}

/// Checks the T5 pair-list contract: `a < b`, both in bounds, distance in
/// `1..=threshold`, strictly increasing by `(distance, a, b)`, and no
/// `(a, b)` pair claimed twice. Returns nothing; pairs feed the T4/T5
/// contradiction check separately.
fn check_pairs(
    name: &str,
    pairs: &[SimilarPair],
    n_roles: usize,
    threshold: usize,
) -> Result<(), String> {
    for (i, p) in pairs.iter().enumerate() {
        if p.a >= p.b {
            return Err(format!("{name}[{i}] not normalized ({} >= {})", p.a, p.b));
        }
        if p.b >= n_roles {
            return Err(format!(
                "{name}[{i}] role {} out of bounds ({n_roles})",
                p.b
            ));
        }
        if p.distance < 1 || p.distance > threshold {
            return Err(format!(
                "{name}[{i}] distance {} outside 1..={threshold}",
                p.distance
            ));
        }
    }
    for (i, w) in pairs.windows(2).enumerate() {
        let (x, y) = (&w[0], &w[1]);
        if (x.distance, x.a, x.b) >= (y.distance, y.a, y.b) {
            return Err(format!(
                "{name} not strictly increasing by (distance, a, b) at index {i}"
            ));
        }
        if (x.a, x.b) == (y.a, y.b) {
            return Err(format!(
                "{name} claims pair ({}, {}) twice with different distances",
                x.a, x.b
            ));
        }
    }
    Ok(())
}

impl Report {
    /// Checks every structural and cross-field invariant of the report,
    /// given the dataset dimensions it describes.
    ///
    /// Verified:
    ///
    /// * all T1–T3 lists are strictly increasing and within bounds;
    /// * the mutually exclusive T1/T2 role classes are disjoint
    ///   (standalone means both sides empty; userless/permless exactly
    ///   one side; a single-link role has degree 1 on that side, so it
    ///   cannot be empty on the same side);
    /// * T4 groups have ≥ 2 sorted members, are ordered by first member,
    ///   and are pairwise disjoint per side (identical-set sharing is an
    ///   equivalence relation);
    /// * unless [`include_empty_duplicates`] is set, no T4 member on a
    ///   side has an empty set on that side (is standalone/disconnected);
    /// * T5 pairs are normalized (`a < b`), in bounds, with distance in
    ///   `1..=threshold`, sorted by `(distance, a, b)`, duplicate-free;
    /// * no T5 pair joins two members of the same T4 group on the same
    ///   side — members share identical sets (distance 0), pairs require
    ///   distance ≥ 1.
    ///
    /// [`include_empty_duplicates`]: crate::DetectionConfig::include_empty_duplicates
    ///
    /// # Errors
    ///
    /// Returns a message naming the first broken invariant.
    pub fn validate(
        &self,
        n_users: usize,
        n_roles: usize,
        n_permissions: usize,
    ) -> Result<(), String> {
        check_sorted_unique_bounded("standalone_users", &self.standalone_users, n_users)?;
        check_sorted_unique_bounded(
            "standalone_permissions",
            &self.standalone_permissions,
            n_permissions,
        )?;
        for (name, v) in [
            ("standalone_roles", &self.standalone_roles),
            ("userless_roles", &self.userless_roles),
            ("permless_roles", &self.permless_roles),
            ("single_user_roles", &self.single_user_roles),
            ("single_permission_roles", &self.single_permission_roles),
        ] {
            check_sorted_unique_bounded(name, v, n_roles)?;
        }
        for (a_name, b_name, a, b) in [
            (
                "standalone_roles",
                "userless_roles",
                &self.standalone_roles,
                &self.userless_roles,
            ),
            (
                "standalone_roles",
                "permless_roles",
                &self.standalone_roles,
                &self.permless_roles,
            ),
            (
                "standalone_roles",
                "single_user_roles",
                &self.standalone_roles,
                &self.single_user_roles,
            ),
            (
                "standalone_roles",
                "single_permission_roles",
                &self.standalone_roles,
                &self.single_permission_roles,
            ),
            (
                "userless_roles",
                "permless_roles",
                &self.userless_roles,
                &self.permless_roles,
            ),
            (
                "userless_roles",
                "single_user_roles",
                &self.userless_roles,
                &self.single_user_roles,
            ),
            (
                "permless_roles",
                "single_permission_roles",
                &self.permless_roles,
                &self.single_permission_roles,
            ),
        ] {
            check_disjoint(a_name, b_name, a, b)?;
        }
        let user_groups = check_groups("same_user_groups", &self.same_user_groups, n_roles)?;
        let perm_groups = check_groups(
            "same_permission_groups",
            &self.same_permission_groups,
            n_roles,
        )?;
        if !self.config.include_empty_duplicates {
            for (side, membership, empties) in [
                ("user", &user_groups, &self.userless_roles),
                ("permission", &perm_groups, &self.permless_roles),
            ] {
                for &r in self.standalone_roles.iter().chain(empties.iter()) {
                    if membership[r].is_some() {
                        return Err(format!(
                            "role {r} has an empty {side} set but appears in a same-{side} \
                             group, and include_empty_duplicates is off"
                        ));
                    }
                }
            }
        }
        let threshold = self.config.similarity.threshold;
        check_pairs(
            "similar_user_pairs",
            &self.similar_user_pairs,
            n_roles,
            threshold,
        )?;
        check_pairs(
            "similar_permission_pairs",
            &self.similar_permission_pairs,
            n_roles,
            threshold,
        )?;
        for (name, pairs, membership) in [
            ("user", &self.similar_user_pairs, &user_groups),
            ("permission", &self.similar_permission_pairs, &perm_groups),
        ] {
            for p in pairs.iter() {
                if let (Some(ga), Some(gb)) = (membership[p.a], membership[p.b]) {
                    if ga == gb {
                        return Err(format!(
                            "similar_{name}_pairs claims ({}, {}) at distance {} but both \
                             are in same_{name}_groups[{ga}] (identical sets, distance 0)",
                            p.a, p.b, p.distance
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Validates `report` against the graph that (supposedly) produced it:
/// runs [`Report::validate`] with the graph's dimensions, re-derives the
/// T1–T3 findings with the sequential detector and demands exact
/// equality, and re-checks the T4/T5 claims against the actual rows —
/// every T4 group's members must share identical sets on the group's
/// side, and every T5 pair's claimed distance must equal the true
/// Hamming distance.
///
/// Approximate strategies may *miss* findings, so no completeness check
/// is made for T4/T5 — but everything claimed must be true.
///
/// # Errors
///
/// Returns a message naming the first claim the graph contradicts.
pub fn validate_report_against_graph(
    report: &Report,
    graph: &TripartiteGraph,
) -> Result<(), String> {
    report.validate(graph.n_users(), graph.n_roles(), graph.n_permissions())?;
    let ruam = graph.ruam_sparse();
    let rpam = graph.rpam_sparse();
    let degrees = detect_degrees(&ruam, &rpam);
    for (name, claimed, actual) in [
        (
            "standalone_users",
            &report.standalone_users,
            &degrees.standalone_users,
        ),
        (
            "standalone_permissions",
            &report.standalone_permissions,
            &degrees.standalone_permissions,
        ),
        (
            "standalone_roles",
            &report.standalone_roles,
            &degrees.standalone_roles,
        ),
        (
            "userless_roles",
            &report.userless_roles,
            &degrees.userless_roles,
        ),
        (
            "permless_roles",
            &report.permless_roles,
            &degrees.permless_roles,
        ),
        (
            "single_user_roles",
            &report.single_user_roles,
            &degrees.single_user_roles,
        ),
        (
            "single_permission_roles",
            &report.single_permission_roles,
            &degrees.single_permission_roles,
        ),
    ] {
        if claimed != actual {
            return Err(format!(
                "{name} disagrees with the graph: report claims {claimed:?}, \
                 recomputation yields {actual:?}"
            ));
        }
    }
    for (side, groups, matrix) in [
        (Side::User, &report.same_user_groups, &ruam),
        (Side::Permission, &report.same_permission_groups, &rpam),
    ] {
        for (g, members) in groups.iter().enumerate() {
            let first = matrix.row(members[0]);
            for &r in &members[1..] {
                if matrix.row(r) != first {
                    return Err(format!(
                        "same-{side:?} group {g}: roles {} and {r} do not share \
                         identical {side:?} sets",
                        members[0]
                    ));
                }
            }
        }
    }
    for (side, pairs, matrix) in [
        (Side::User, &report.similar_user_pairs, &ruam),
        (Side::Permission, &report.similar_permission_pairs, &rpam),
    ] {
        for p in pairs.iter() {
            let actual = rolediet_matrix::RowMatrix::row_hamming(matrix, p.a, p.b);
            if actual != p.distance {
                return Err(format!(
                    "similar-{side:?} pair ({}, {}): claimed distance {} but the \
                     rows differ in {actual} positions",
                    p.a, p.b, p.distance
                ));
            }
        }
    }
    // Sanity anchor on the id types: the matrices above are indexed by
    // the same dense indices the graph hands out.
    debug_assert_eq!(RoleId::from_index(0).index(), 0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectionConfig;
    use crate::pipeline::Pipeline;

    fn figure1_report() -> (Report, TripartiteGraph) {
        let g = TripartiteGraph::figure1_example();
        let report = Pipeline::new(DetectionConfig::default()).run(&g);
        (report, g)
    }

    #[test]
    fn pipeline_reports_pass_both_validators() {
        let (report, g) = figure1_report();
        report
            .validate(g.n_users(), g.n_roles(), g.n_permissions())
            .expect("structural");
        validate_report_against_graph(&report, &g).expect("against graph");
    }

    #[test]
    fn default_report_passes_on_empty_dataset() {
        Report::default().validate(0, 0, 0).expect("empty");
    }

    #[test]
    fn unsorted_lists_are_caught() {
        let (mut report, g) = figure1_report();
        report.standalone_users = vec![3, 1];
        let err = report
            .validate(g.n_users(), g.n_roles(), g.n_permissions())
            .unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
    }

    #[test]
    fn exclusive_role_classes_are_caught() {
        let (mut report, g) = figure1_report();
        // Claim a role is simultaneously standalone and userless.
        report.standalone_roles = vec![2];
        let err = report
            .validate(g.n_users(), g.n_roles(), g.n_permissions())
            .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn overlapping_groups_are_caught() {
        let report = Report {
            same_user_groups: vec![vec![0, 1], vec![1, 2]],
            ..Default::default()
        };
        let err = report.validate(5, 5, 5).unwrap_err();
        assert!(err.contains("groups must be disjoint"), "{err}");
    }

    #[test]
    fn pair_inside_a_group_is_caught() {
        let report = Report {
            same_user_groups: vec![vec![0, 1]],
            similar_user_pairs: vec![SimilarPair::new(0, 1, 1)],
            ..Default::default()
        };
        let err = report.validate(5, 5, 5).unwrap_err();
        assert!(err.contains("identical sets, distance 0"), "{err}");
    }

    #[test]
    fn out_of_range_distance_is_caught() {
        let mut report = Report::default();
        let t = report.config.similarity.threshold;
        report.similar_user_pairs = vec![SimilarPair::new(0, 1, t + 1)];
        let err = report.validate(5, 5, 5).unwrap_err();
        assert!(err.contains("outside 1..="), "{err}");
    }

    #[test]
    fn graph_contradictions_are_caught() {
        let (mut report, g) = figure1_report();
        // Claim two roles with different (non-empty) user sets are
        // duplicates. (An empty-set member would trip the structural
        // include_empty_duplicates check before the graph comparison.)
        report.same_user_groups = vec![vec![0, 1]];
        let err = validate_report_against_graph(&report, &g).unwrap_err();
        assert!(err.contains("do not share identical"), "{err}");

        let (mut report, g) = figure1_report();
        // Misreport a pair's distance.
        if let Some(p) = report.similar_user_pairs.first().copied() {
            report.similar_user_pairs = vec![SimilarPair::new(p.a, p.b, p.distance + 1)];
            let err = validate_report_against_graph(&report, &g).unwrap_err();
            assert!(
                err.contains("positions") || err.contains("outside 1..="),
                "{err}"
            );
        }

        let (mut report, g) = figure1_report();
        // Drop a T1 finding the graph demands.
        report.standalone_permissions.clear();
        let err = validate_report_against_graph(&report, &g).unwrap_err();
        assert!(err.contains("disagrees with the graph"), "{err}");
    }
}
