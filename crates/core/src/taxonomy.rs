//! The five-type taxonomy of RBAC data inefficiencies (Section III-A).

use std::fmt;

use serde::{Deserialize, Serialize};

use rolediet_model::EntityKind;

/// Which side of a role an inefficiency concerns.
///
/// Every role has two incidence sets: its users (a RUAM row) and its
/// permissions (an RPAM row). Types T2–T5 come in a user-side and a
/// permission-side variant; the paper's detectors are literally the same
/// code fed RUAM or RPAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Side {
    /// The role–user incidence (RUAM).
    User,
    /// The role–permission incidence (RPAM).
    Permission,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::User => "user",
            Side::Permission => "permission",
        })
    }
}

/// One of the five inefficiency types of the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InefficiencyKind {
    /// T1 — a node with no edges at all: a user assigned to no role, a
    /// permission granted by no role, or a role with neither users nor
    /// permissions.
    StandaloneNode(EntityKind),
    /// T2 — a role missing one side entirely: connected only to
    /// permissions (`Side::User` variant: *no users*) or only to users
    /// (`Side::Permission` variant: *no permissions*).
    DisconnectedRole(Side),
    /// T3 — a role connected to exactly one user / one permission.
    SingleLinkRole(Side),
    /// T4 — a group of roles sharing exactly the same users /
    /// permissions.
    DuplicateRoles(Side),
    /// T5 — a pair of roles whose user / permission sets differ in at
    /// most `t` elements (Hamming distance ≤ t, t set by the
    /// administrator).
    SimilarRoles(Side),
}

impl InefficiencyKind {
    /// Short stable label, e.g. `"T4-user"`, for tables and logs.
    pub fn label(&self) -> String {
        match self {
            InefficiencyKind::StandaloneNode(k) => format!("T1-{k}"),
            InefficiencyKind::DisconnectedRole(s) => format!("T2-{s}"),
            InefficiencyKind::SingleLinkRole(s) => format!("T3-{s}"),
            InefficiencyKind::DuplicateRoles(s) => format!("T4-{s}"),
            InefficiencyKind::SimilarRoles(s) => format!("T5-{s}"),
        }
    }

    /// Human-readable description matching the paper's wording.
    pub fn description(&self) -> String {
        match self {
            InefficiencyKind::StandaloneNode(k) => {
                format!("standalone {k} node (no edges)")
            }
            InefficiencyKind::DisconnectedRole(Side::User) => {
                "role not connected to any user".into()
            }
            InefficiencyKind::DisconnectedRole(Side::Permission) => {
                "role not connected to any permission".into()
            }
            InefficiencyKind::SingleLinkRole(s) => {
                format!("role connected to a single {s}")
            }
            InefficiencyKind::DuplicateRoles(s) => {
                format!("roles sharing the same {s}s")
            }
            InefficiencyKind::SimilarRoles(s) => {
                format!("roles sharing a similar set of {s}s")
            }
        }
    }

    /// All ten concrete kind instances, in taxonomy order.
    pub fn all() -> Vec<InefficiencyKind> {
        use InefficiencyKind::*;
        vec![
            StandaloneNode(EntityKind::User),
            StandaloneNode(EntityKind::Role),
            StandaloneNode(EntityKind::Permission),
            DisconnectedRole(Side::User),
            DisconnectedRole(Side::Permission),
            SingleLinkRole(Side::User),
            SingleLinkRole(Side::Permission),
            DuplicateRoles(Side::User),
            DuplicateRoles(Side::Permission),
            SimilarRoles(Side::User),
            SimilarRoles(Side::Permission),
        ]
    }

    /// Whether detecting this kind is linear-time (T1–T3) or requires a
    /// grouping strategy (T4–T5).
    pub fn is_linear_time(&self) -> bool {
        !matches!(
            self,
            InefficiencyKind::DuplicateRoles(_) | InefficiencyKind::SimilarRoles(_)
        )
    }
}

impl fmt::Display for InefficiencyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.label(), self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            InefficiencyKind::StandaloneNode(EntityKind::Permission).label(),
            "T1-permission"
        );
        assert_eq!(
            InefficiencyKind::DuplicateRoles(Side::User).label(),
            "T4-user"
        );
        assert_eq!(
            InefficiencyKind::SimilarRoles(Side::Permission).label(),
            "T5-permission"
        );
    }

    #[test]
    fn descriptions_match_paper_wording() {
        assert_eq!(
            InefficiencyKind::DisconnectedRole(Side::User).description(),
            "role not connected to any user"
        );
        assert_eq!(
            InefficiencyKind::SingleLinkRole(Side::Permission).description(),
            "role connected to a single permission"
        );
    }

    #[test]
    fn all_enumerates_eleven_instances() {
        let all = InefficiencyKind::all();
        assert_eq!(all.len(), 11);
        let labels: std::collections::HashSet<String> = all.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 11, "labels are unique");
    }

    #[test]
    fn linear_time_split() {
        assert!(InefficiencyKind::StandaloneNode(EntityKind::User).is_linear_time());
        assert!(InefficiencyKind::SingleLinkRole(Side::User).is_linear_time());
        assert!(!InefficiencyKind::DuplicateRoles(Side::User).is_linear_time());
        assert!(!InefficiencyKind::SimilarRoles(Side::Permission).is_linear_time());
    }

    #[test]
    fn display_combines_label_and_description() {
        let k = InefficiencyKind::DuplicateRoles(Side::Permission);
        assert_eq!(
            k.to_string(),
            "T4-permission: roles sharing the same permissions"
        );
    }
}
