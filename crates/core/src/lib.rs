//! IAM Role Diet: detecting RBAC data inefficiencies.
//!
//! This crate is the paper's primary contribution: a taxonomy of five
//! inefficiency types that accumulate in manually managed RBAC data, a
//! detection framework covering all of them, and three interchangeable
//! strategies for the expensive types.
//!
//! # The taxonomy (Section III-A)
//!
//! | type | inefficiency | cost |
//! |---|---|---|
//! | T1 | standalone nodes (users/permissions/roles with no edges) | linear |
//! | T2 | roles not connected to users / to permissions | linear |
//! | T3 | roles connected to exactly one user / one permission | linear |
//! | T4 | roles sharing the *same* users / permissions | the hard part |
//! | T5 | roles sharing a *similar* set (within Hamming `t`) | the hard part |
//!
//! # The three strategies (Section III-C)
//!
//! * [`Strategy::Custom`] — the paper's co-occurrence algorithm
//!   ([`cooccur`]): exact, deterministic, and orders of magnitude faster
//!   than the baselines.
//! * [`Strategy::ExactDbscan`] — DBSCAN with Hamming distance, the exact
//!   clustering baseline.
//! * [`Strategy::ApproxHnsw`] — HNSW approximate nearest neighbours, the
//!   approximate clustering baseline (may miss pairs; converges over
//!   periodic runs).
//! * [`Strategy::MinHashLsh`] — a second approximate baseline used in the
//!   ablations.
//!
//! Findings are proposals for an administrator, never auto-applied
//! (Section III-A: a CEO-only role is legitimate); the
//! [`consolidate`] module turns *approved* duplicate groups into a
//! verified [`MergePlan`].
//!
//! # Examples
//!
//! ```
//! use rolediet_core::{DetectionConfig, Pipeline};
//! use rolediet_model::TripartiteGraph;
//!
//! let graph = TripartiteGraph::figure1_example();
//! let report = Pipeline::new(DetectionConfig::default()).run(&graph);
//! // R02 and R04 share the same users (ids 1 and 3)…
//! assert_eq!(report.same_user_groups, vec![vec![1, 3]]);
//! // …and R04, R05 share the same permissions.
//! assert_eq!(report.same_permission_groups, vec![vec![3, 4]]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod access;
pub mod audit;
pub mod config;
pub mod consolidate;
pub mod cooccur;
pub mod detector;
pub mod history;
pub mod incremental;
pub mod periodic;
pub mod pipeline;
pub mod render;
pub mod report;
pub mod strategy;
pub mod suggest;
pub mod taxonomy;
pub mod validate;

pub use config::{DetectionConfig, Parallelism, SimilarityConfig, Strategy};
pub use consolidate::{ConsolidationOutcome, Merge, MergeBasis, MergePlan};
pub use incremental::{FindingDelta, IncrementalDuplicates, IncrementalPipeline, ReportDelta};
pub use pipeline::Pipeline;
pub use report::{Report, SimilarPair, StageTimings};
pub use taxonomy::{InefficiencyKind, Side};
