//! Consolidation suggestions beyond exact duplicates.
//!
//! The paper stops at merging T4 groups and notes that "the approach for
//! consolidating roles related to [the single-user/single-permission]
//! inefficiency still needs to be developed". This module develops it,
//! staying inside the paper's safety rule — combine existing roles
//! *without granting extra permissions*:
//!
//! * [`subset_pairs`] — role-containment pairs (`users(a) ⊂ users(b)`,
//!   likewise for permissions): the raw material for role-hierarchy
//!   cleanups, found with the same streamed co-occurrence machinery as
//!   T4/T5 (`a ⊆ b ⇔ gᵃᵇ = |Rᵃ|`).
//! * [`redundant_roles`] — roles whose removal provably changes no
//!   user's effective permissions, because every (user, permission) pair
//!   they serve is also served by another role. A single-permission role
//!   whose users all hold that permission elsewhere is the paper's
//!   motivating case.
//! * [`merge_delta`] — for a proposed *similar*-role (T5) merge, the
//!   exact access change it would cause: which users would gain which
//!   permissions. A delta of zero means the merge is as safe as a T4
//!   merge; a non-zero delta is what the administrator must sign off on.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use rolediet_matrix::{CsrMatrix, RowMatrix};
use rolediet_model::{PermissionId, RoleId, TripartiteGraph, UserId};

use crate::taxonomy::Side;

/// A strict-containment pair on one side: every user (or permission) of
/// `sub` also belongs to `sup`, and `sup` has strictly more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubsetPair {
    /// The contained role (smaller row).
    pub sub: usize,
    /// The containing role (larger row).
    pub sup: usize,
}

/// Finds all strict containment pairs between non-empty rows.
///
/// Containment falls out of the co-occurrence stream: `a ⊆ b` iff
/// `gᵃᵇ = |Rᵃ|`. Equal rows (T4 groups) are excluded — they are already
/// reported as duplicates. Pairs are sorted by `(sub, sup)`.
///
/// # Examples
///
/// ```
/// use rolediet_core::suggest::{subset_pairs, SubsetPair};
/// use rolediet_matrix::CsrMatrix;
///
/// let m = CsrMatrix::from_rows_of_indices(3, 4, &[
///     vec![0, 1, 2], vec![0, 1], vec![3],
/// ]).unwrap();
/// let t = m.transpose();
/// assert_eq!(subset_pairs(&m, &t), vec![SubsetPair { sub: 1, sup: 0 }]);
/// ```
pub fn subset_pairs(matrix: &CsrMatrix, transpose: &CsrMatrix) -> Vec<SubsetPair> {
    let mut out = Vec::new();
    rolediet_matrix::ops::for_each_cooccurring_pair(matrix, transpose, |i, j, g| {
        let (ni, nj) = (matrix.row_norm(i), matrix.row_norm(j));
        if g == ni && g == nj {
            return; // identical — a T4 finding, not a subset
        }
        if g == ni {
            out.push(SubsetPair { sub: i, sup: j });
        } else if g == nj {
            out.push(SubsetPair { sub: j, sup: i });
        }
    });
    out.sort_unstable();
    out
}

/// A role whose deletion is provably access-preserving, with the
/// witnessing coverage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedundantRole {
    /// The removable role.
    pub role: RoleId,
    /// Number of (user, permission) pairs the role serves — all of them
    /// covered elsewhere.
    pub covered_pairs: usize,
}

/// Returns the subset of `candidates` that are *redundant*: every
/// (user, permission) pair they serve is also served by some other role,
/// so deleting them changes nobody's access.
///
/// Cost is `O(|users(r)| · |perms(r)| · r̄)` per candidate (`r̄` = mean
/// roles per user); restrict `candidates` to small roles — e.g. the T3
/// single-link findings, the paper's open case — on large datasets.
///
/// The check is per-role in isolation: deleting several redundant roles
/// at once can be unsafe if they covered each other. [`redundant_roles`]
/// therefore returns a set that is safe to delete *greedily in order*,
/// re-checking each role against the survivors of the previous
/// deletions.
pub fn redundant_roles(graph: &TripartiteGraph, candidates: &[RoleId]) -> Vec<RedundantRole> {
    let mut deleted: BTreeSet<RoleId> = BTreeSet::new();
    let mut out = Vec::new();
    for &r in candidates {
        if deleted.contains(&r) {
            continue;
        }
        let users: Vec<UserId> = graph.users_of(r).collect();
        let perms: Vec<PermissionId> = graph.permissions_of(r).collect();
        let covered = users.iter().all(|&u| {
            perms.iter().all(|&p| {
                graph.roles_of_user(u).any(|other| {
                    other != r && !deleted.contains(&other) && graph.has_permission(other, p)
                })
            })
        });
        if covered {
            out.push(RedundantRole {
                role: r,
                covered_pairs: users.len() * perms.len(),
            });
            deleted.insert(r);
        }
    }
    out
}

/// Convenience: the redundant roles among a report's T3 findings (the
/// paper's "role consolidation opportunity" for single-link roles).
pub fn redundant_single_link_roles(
    graph: &TripartiteGraph,
    report: &crate::report::Report,
) -> Vec<RedundantRole> {
    let mut candidates: Vec<RoleId> = report
        .single_user_roles
        .iter()
        .chain(report.single_permission_roles.iter())
        .map(|&r| RoleId::from_index(r))
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    redundant_roles(graph, &candidates)
}

/// The exact access change a two-role merge would cause.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeDelta {
    /// Users who would gain permissions, with exactly what they gain.
    pub user_gains: Vec<(UserId, Vec<PermissionId>)>,
}

impl MergeDelta {
    /// `true` when the merge changes nobody's access (equivalent to a T4
    /// merge).
    pub fn is_safe(&self) -> bool {
        self.user_gains.is_empty()
    }

    /// Total number of newly granted (user, permission) pairs.
    pub fn granted_pairs(&self) -> usize {
        self.user_gains.iter().map(|(_, ps)| ps.len()).sum()
    }
}

/// Computes the access delta of merging roles `a` and `b` into one role
/// carrying the union of their users and permissions (merges never
/// *revoke* anything, so the delta is gains-only).
///
/// For a T4 pair the delta is empty on the shared side by construction;
/// for a T5 pair ("all but one user/permission") it quantifies exactly
/// the risk the administrator accepts — the paper requires that approval
/// to be per-instance, and this is the evidence to attach to it.
///
/// # Panics
///
/// Panics if either role id is out of range.
pub fn merge_delta(graph: &TripartiteGraph, a: RoleId, b: RoleId) -> MergeDelta {
    let users: BTreeSet<UserId> = graph.users_of(a).chain(graph.users_of(b)).collect();
    let merged_perms: BTreeSet<PermissionId> = graph
        .permissions_of(a)
        .chain(graph.permissions_of(b))
        .collect();
    let mut user_gains = Vec::new();
    for &u in &users {
        let before = graph.effective_permissions(u);
        let gains: Vec<PermissionId> = merged_perms
            .iter()
            .copied()
            .filter(|p| !before.contains(p))
            .collect();
        if !gains.is_empty() {
            user_gains.push((u, gains));
        }
    }
    MergeDelta { user_gains }
}

/// Side-aware wrapper: evaluates [`merge_delta`] for every pair in a T5
/// finding list and returns `(pair index, delta)` for the unsafe ones.
///
/// Deterministic: pairs are evaluated in input order and the output
/// preserves that order (indices ascending), with no dependence on hash
/// state, thread count, or anything but `graph` and `pairs` — so two
/// runs over the same report always block the same merges.
pub fn unsafe_similar_merges(
    graph: &TripartiteGraph,
    pairs: &[crate::report::SimilarPair],
    _side: Side,
) -> Vec<(usize, MergeDelta)> {
    pairs
        .iter()
        .enumerate()
        .filter_map(|(idx, p)| {
            let delta = merge_delta(graph, RoleId::from_index(p.a), RoleId::from_index(p.b));
            if delta.is_safe() {
                None
            } else {
                Some((idx, delta))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectionConfig;
    use crate::pipeline::Pipeline;

    #[test]
    fn subset_pairs_on_crafted_matrix() {
        let m = CsrMatrix::from_rows_of_indices(
            5,
            6,
            &[
                vec![0, 1, 2, 3], // 0
                vec![0, 1],       // 1 ⊂ 0
                vec![1, 2],       // 2 ⊂ 0
                vec![0, 1],       // 3 == 1 (duplicate, not subset)
                vec![],           // 4 empty — ignored
            ],
        )
        .unwrap();
        let t = m.transpose();
        let pairs = subset_pairs(&m, &t);
        assert_eq!(
            pairs,
            vec![
                SubsetPair { sub: 1, sup: 0 },
                SubsetPair { sub: 2, sup: 0 },
                SubsetPair { sub: 3, sup: 0 },
            ]
        );
    }

    #[test]
    fn subset_pairs_empty_when_no_overlap() {
        let m = CsrMatrix::from_rows_of_indices(2, 4, &[vec![0], vec![1]]).unwrap();
        let t = m.transpose();
        assert!(subset_pairs(&m, &t).is_empty());
    }

    #[test]
    fn redundant_single_permission_role() {
        // Role 1 grants {p0} to user 0, but user 0 already has p0 via
        // role 0 → role 1 is redundant.
        let mut g = TripartiteGraph::with_counts(1, 2, 2);
        g.assign_user(RoleId(0), UserId(0)).unwrap();
        g.grant_permission(RoleId(0), PermissionId(0)).unwrap();
        g.grant_permission(RoleId(0), PermissionId(1)).unwrap();
        g.assign_user(RoleId(1), UserId(0)).unwrap();
        g.grant_permission(RoleId(1), PermissionId(0)).unwrap();
        let red = redundant_roles(&g, &[RoleId(0), RoleId(1)]);
        // Role 0 is NOT redundant (p1 only there); role 1 is.
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].role, RoleId(1));
        assert_eq!(red[0].covered_pairs, 1);
        // Deleting it is verified access-preserving.
        let map = vec![Some(0), None];
        let g2 = g.rebuild_with_role_map(&map, 1).unwrap();
        assert!(crate::consolidate::verify_preserves_access(&g, &g2).is_empty());
    }

    #[test]
    fn mutually_covering_roles_not_both_deleted() {
        // Roles 0 and 1 are identical: each covers the other, but
        // deleting both would strand the user. Greedy order deletes only
        // the first.
        let mut g = TripartiteGraph::with_counts(1, 2, 1);
        for r in 0..2 {
            g.assign_user(RoleId(r), UserId(0)).unwrap();
            g.grant_permission(RoleId(r), PermissionId(0)).unwrap();
        }
        let red = redundant_roles(&g, &[RoleId(0), RoleId(1)]);
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].role, RoleId(0));
    }

    #[test]
    fn redundant_single_link_from_figure1_report() {
        let g = TripartiteGraph::figure1_example();
        let report = Pipeline::new(DetectionConfig::default()).run(&g);
        // Figure 1's single-link roles (R01, R05, R03) are not redundant:
        // R01 is U01's only source of P02/P03, R05 duplicates R04's perms
        // but serves U04 who has no other role, R03 serves nobody but has
        // no users (vacuously redundant: zero pairs to cover).
        let red = redundant_single_link_roles(&g, &report);
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].role, RoleId(2)); // R03: no users → coverable
        assert_eq!(red[0].covered_pairs, 0);
    }

    #[test]
    fn merge_delta_zero_for_same_user_pair() {
        let g = TripartiteGraph::figure1_example();
        // R02 and R04 share users — merging them grants nothing new.
        let delta = merge_delta(&g, RoleId(1), RoleId(3));
        assert!(delta.is_safe());
        assert_eq!(delta.granted_pairs(), 0);
    }

    #[test]
    fn merge_delta_quantifies_gains() {
        let g = TripartiteGraph::figure1_example();
        // R01 ({U01}/{P02,P03}) + R05 ({U04}/{P05,P06}): U01 gains
        // P05,P06 and U04 gains P02,P03.
        let delta = merge_delta(&g, RoleId(0), RoleId(4));
        assert!(!delta.is_safe());
        assert_eq!(delta.granted_pairs(), 4);
        let gains: std::collections::HashMap<UserId, Vec<PermissionId>> =
            delta.user_gains.iter().cloned().collect();
        assert_eq!(gains[&UserId(0)], vec![PermissionId(4), PermissionId(5)]);
        assert_eq!(gains[&UserId(3)], vec![PermissionId(1), PermissionId(2)]);
    }

    #[test]
    fn unsafe_similar_merges_filters_safe_pairs() {
        // Two roles with same users, one extra perm difference → merging
        // grants the shared users the extra perm... unless they already
        // have it. Build both cases.
        let mut g = TripartiteGraph::with_counts(2, 3, 2);
        // Roles 0 and 1: same users {0,1}; role 0 grants {p0}, role 1
        // grants {p0,p1} → Hamming 1 on the perm side, but merging is
        // safe: the users already have p1 via role 1 itself.
        for r in [0u32, 1] {
            g.assign_user(RoleId(r), UserId(0)).unwrap();
            g.assign_user(RoleId(r), UserId(1)).unwrap();
            g.grant_permission(RoleId(r), PermissionId(0)).unwrap();
        }
        g.grant_permission(RoleId(1), PermissionId(1)).unwrap();
        // Role 2: user 0 only, perms {p0, p1}: merging 0 and 2 grants
        // user 1 nothing new?  user 1 is in role 0; merged role would
        // grant p1 to user 1 — which it already has via role 1. Safe too.
        g.assign_user(RoleId(2), UserId(0)).unwrap();
        g.grant_permission(RoleId(2), PermissionId(0)).unwrap();
        g.grant_permission(RoleId(2), PermissionId(1)).unwrap();
        let pairs = vec![
            crate::report::SimilarPair::new(0, 1, 1),
            crate::report::SimilarPair::new(0, 2, 2),
        ];
        let blocked = unsafe_similar_merges(&g, &pairs, Side::Permission);
        assert!(blocked.is_empty(), "{blocked:?}");
        // Now remove role 1 from user 1 — user 1 loses the alternate path
        // to p1, so both merges (each would hand user 1 a role granting
        // p1) become real grants.
        g.revoke_user(RoleId(1), UserId(1)).unwrap();
        let blocked = unsafe_similar_merges(&g, &pairs, Side::Permission);
        assert_eq!(blocked.len(), 2);
        for (_, delta) in &blocked {
            assert_eq!(delta.granted_pairs(), 1);
            assert_eq!(delta.user_gains[0].0, UserId(1));
        }
    }
}
